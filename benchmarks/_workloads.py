"""Shared workload builders for the benchmark suite.

Every benchmark runs a scaled-down version of the corresponding experiment
(a ~600-router map, tens-to-hundreds of peers) so the whole suite finishes in
a few minutes; the experiment functions themselves accept paper-scale
parameters when more fidelity is wanted (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.topology.internet_mapper import RouterMapConfig
from repro.workloads.scenarios import Scenario, ScenarioConfig, build_scenario

BENCH_MAP_KWARGS = dict(
    core_size=20,
    core_attachment=3,
    transit_size=100,
    transit_attachment=2,
    stub_size=480,
    stub_attachment=1,
)


def bench_map_config(seed: int = 5) -> RouterMapConfig:
    """The ~600-router map used by most benchmarks."""
    return RouterMapConfig(seed=seed, **BENCH_MAP_KWARGS)


def bench_scenario(
    peer_count: int = 120,
    landmark_count: int = 4,
    neighbor_set_size: int = 5,
    seed: int = 5,
    **kwargs,
) -> Scenario:
    """Build (but do not join) a benchmark-sized scenario."""
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=landmark_count,
        neighbor_set_size=neighbor_set_size,
        router_map_config=bench_map_config(seed),
        seed=seed,
        **kwargs,
    )
    return build_scenario(config)
