"""Fixtures for the benchmark suite.

Benchmarks attach their headline numbers (the ratios / errors the paper
reports) to ``benchmark.extra_info`` so they appear in pytest-benchmark's
JSON output alongside the timings.
"""

from __future__ import annotations

import pytest

from ._workloads import bench_scenario
from repro.workloads.scenarios import Scenario


@pytest.fixture(scope="session")
def joined_bench_scenario() -> Scenario:
    """One joined scenario shared by read-only benchmarks."""
    scenario = bench_scenario(peer_count=150, seed=7)
    scenario.join_all()
    return scenario
