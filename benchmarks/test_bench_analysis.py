"""Benchmark for the paper's wished-for graph-oriented analysis.

The paper's last sentence asks for "a formal proof based on a graph-oriented
analysis".  This benchmark regenerates the empirical chain such a proof would
formalise: betweenness is concentrated on a small core → branch routers fall
in that core → dtree is exact exactly when the branch router lies on a true
shortest path between the peers.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.analysis import branch_point_analysis


@pytest.mark.benchmark(group="analysis")
def test_branch_point_analysis(benchmark):
    """Empirical backbone of the dtree ≈ d argument."""
    table = benchmark.pedantic(
        lambda: branch_point_analysis(
            peer_count=120, landmark_count=4, pair_samples=300, seed=41
        ),
        rounds=1,
        iterations=1,
    )
    rows = {row["statement"]: row["value"] for row in table.rows}
    for statement, value in rows.items():
        if not math.isnan(value):
            benchmark.extra_info[statement] = round(value, 3)

    assert rows["core_betweenness_share"] > 0.5
    assert rows["branch_in_core_fraction"] > 0.4
    assert rows["exact_when_branch_on_true_path"] == pytest.approx(1.0)
