"""Benchmark for future-work item F2: faulty peers / churn.

The paper defers "managing both faulty peers and handover" to future work.
This benchmark regenerates the churn study: neighbour quality right after
every peer joined, after a wave of departures (stale lists), and after the
survivors refresh their lists from the management server.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import churn_study, traceroute_noise_sweep


@pytest.mark.benchmark(group="churn")
def test_churn_recovery(benchmark):
    """Neighbour quality before / during / after a departure wave."""
    table = benchmark.pedantic(
        lambda: churn_study(
            peer_count=120,
            landmark_count=4,
            neighbor_set_size=3,
            departure_fraction=0.3,
            seed=29,
        ),
        rounds=1,
        iterations=1,
    )
    rows = {row["phase"]: row for row in table.rows}
    for phase, row in rows.items():
        benchmark.extra_info[f"{phase}_ratio"] = round(row["scheme_ratio"], 3)

    assert rows["initial"]["scheme_ratio"] >= 1.0
    assert rows["after_departures"]["scheme_ratio"] >= 1.0
    assert rows["after_refresh"]["scheme_ratio"] >= 1.0
    # Refreshing from the server never leaves survivors worse off than the
    # stale state (small tolerance for ties broken differently).
    assert (
        rows["after_refresh"]["scheme_ratio"]
        <= rows["after_departures"]["scheme_ratio"] + 0.1
    )
    # Quality after recovery stays in the paper's "close to optimal" band.
    assert rows["after_refresh"]["scheme_ratio"] < 1.6


@pytest.mark.benchmark(group="churn")
def test_traceroute_noise_robustness(benchmark):
    """Robustness to the 'decreased' traceroute the paper envisions (noisy paths)."""
    table = benchmark.pedantic(
        lambda: traceroute_noise_sweep(
            anonymous_probabilities=(0.0, 0.1, 0.3),
            peer_count=120,
            landmark_count=4,
            neighbor_set_size=3,
            seed=23,
        ),
        rounds=1,
        iterations=1,
    )
    for row in table.rows:
        benchmark.extra_info[
            f"scheme_ratio_anon_{row['anonymous_probability']}"
        ] = round(row["scheme_ratio"], 3)
        # Even with noisy traceroutes the scheme keeps beating random selection.
        assert row["scheme_ratio"] < row["random_ratio"]

    ratios = [row["scheme_ratio"] for row in table.rows]
    # Quality degrades gracefully: 30% anonymous routers costs at most +0.5.
    assert ratios[-1] <= ratios[0] + 0.5
