"""Benchmarks for the paper's complexity claims (C1, C2 — plus departures).

The paper claims a newcomer insertion costs O(log n) — "the cost of inserting
a new element in an ordered list" — and a closest-peer lookup costs O(1) —
"accessing a data in a hash table".  These benchmarks measure both operations
at several population sizes and assert that the cost does not grow linearly
with the population.  Departures ride the reverse neighbour index, so their
cost is bounded by the number of cached lists referencing the departed peer
(O(k·c)), not by the population; the departure benchmark asserts that via
the server's ``departure_updates`` counter.
"""

from __future__ import annotations

import random

import pytest

from repro.core.management_server import ManagementServer
from repro.core.path import RouterPath
from repro.perf.workloads import synthetic_paths

from ._workloads import bench_scenario


def _populate_server(peer_count: int, seed: int = 3) -> ManagementServer:
    """A server with `peer_count` synthetic peers under one landmark.

    Synthetic paths over a three-level access hierarchy reproduce the shape
    of real landmark trees without paying for a full router-map build at
    every benchmark size.  Population happens through the batch
    ``register_peers`` arrival path.
    """
    server = ManagementServer(neighbor_set_size=5)
    server.register_landmark("lmk", "lmk")
    server.register_peers(synthetic_paths(peer_count, seed=seed))
    return server


def _fresh_paths(count: int, seed: int = 99):
    rng = random.Random(seed)
    paths = []
    for index in range(count):
        region = rng.randrange(12)
        pop = rng.randrange(30)
        routers = [
            f"newaccess-{index}",
            f"pop-{region}-{pop}",
            f"region-{region}",
            "core",
            "lmk",
        ]
        paths.append(RouterPath.from_routers(f"newcomer{index}", "lmk", routers))
    return paths


@pytest.mark.benchmark(group="complexity-insert")
@pytest.mark.parametrize("population", [200, 800, 3200])
def test_insertion_scaling(benchmark, population):
    """Claim C1: newcomer insertion cost is (nearly) independent of n."""
    server = _populate_server(population)
    paths = _fresh_paths(200, seed=population)
    state = {"next": 0}

    def insert_one():
        path = paths[state["next"] % len(paths)]
        state["next"] += 1
        # Re-registering replaces the previous entry, so repeated rounds stay
        # at a constant population.
        server.register_peer(path)

    benchmark(insert_one)
    benchmark.extra_info["population"] = population


@pytest.mark.benchmark(group="complexity-query")
@pytest.mark.parametrize("population", [200, 800, 3200])
def test_query_scaling(benchmark, population):
    """Claim C2: a cached closest-peer lookup costs O(1)."""
    server = _populate_server(population)
    peers = server.peers()
    rng = random.Random(1)
    sample = [rng.choice(peers) for _ in range(512)]
    state = {"next": 0}

    def query_one():
        peer = sample[state["next"] % len(sample)]
        state["next"] += 1
        return server.closest_peers(peer)

    benchmark(query_one)
    benchmark.extra_info["population"] = population
    benchmark.extra_info["cache_hit_fraction"] = round(
        server.stats.cache_hits / max(1, server.stats.queries), 3
    )


@pytest.mark.benchmark(group="complexity-departure")
@pytest.mark.parametrize("population", [200, 800, 3200])
def test_departure_scaling(benchmark, population):
    """Departure cost is bounded by referencing lists, not the population."""
    server = _populate_server(population)
    rng = random.Random(17)
    spares = synthetic_paths(population, seed=3)
    by_id = {path.peer_id: path for path in spares}
    victims = rng.sample(server.peers(), min(256, population - 1))
    state = {"next": 0}
    server.stats.reset()

    def depart_one():
        victim = victims[state["next"] % len(victims)]
        state["next"] += 1
        server.unregister_peer(victim)
        # Re-register so the population stays constant across rounds.
        server.register_peers([by_id[victim]])

    benchmark(depart_one)
    removals = max(1, server.stats.removals)
    per_departure_updates = server.stats.departure_updates / removals
    benchmark.extra_info["population"] = population
    benchmark.extra_info["per_departure_updates"] = round(per_departure_updates, 2)
    # O(k·c), not O(n): the average number of lists repaired per departure
    # must stay far below the population at every size.
    assert per_departure_updates < 10 * server.neighbor_set_size
    assert per_departure_updates < population / 4


@pytest.mark.benchmark(group="complexity-join")
@pytest.mark.parametrize("peer_count", [50, 150])
def test_full_join_cost(benchmark, peer_count):
    """End-to-end join cost (traceroute + registration) per newcomer."""

    def join_all():
        scenario = bench_scenario(peer_count=peer_count, seed=peer_count)
        scenario.join_all()
        return scenario

    scenario = benchmark.pedantic(join_all, rounds=1, iterations=1)
    benchmark.extra_info["peers"] = peer_count
    benchmark.extra_info["registrations"] = scenario.server.stats.registrations
