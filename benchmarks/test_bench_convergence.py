"""Benchmark for motivation M1: quicker than coordinate systems.

Regenerates the comparison between the path-tree scheme, Vivaldi (at several
gossip-round budgets), GNP, binning and random selection: neighbour quality
(``D/D_closest``) against the measurement effort and the modelled setup time.

Paper's claim: coordinate systems "require a substantial amount of time
before delivering accurate information", while the proposed scheme answers
after a single traceroute + one server round trip.  The benchmark asserts
that ordering: the path tree reaches better-than-early-Vivaldi quality with a
setup time orders of magnitude below a converged Vivaldi run.
"""

from __future__ import annotations

import pytest

from repro.experiments.convergence import run_convergence_study


@pytest.mark.benchmark(group="convergence")
def test_convergence_comparison(benchmark):
    """Neighbour quality vs measurement effort across proximity schemes."""
    table = benchmark.pedantic(
        lambda: run_convergence_study(
            peer_count=80,
            landmark_count=4,
            neighbor_set_size=3,
            vivaldi_round_schedule=(1, 4, 16),
            seed=31,
        ),
        rounds=1,
        iterations=1,
    )
    rows = {row["scheme"]: row for row in table.rows}

    for name, row in rows.items():
        benchmark.extra_info[f"{name}_ratio"] = round(row["scheme_ratio"], 3)
        benchmark.extra_info[f"{name}_setup_ms"] = round(row["setup_time_ms"], 1)

    path_tree = rows["path_tree"]
    # Better neighbour quality than Vivaldi after its first rounds...
    assert path_tree["scheme_ratio"] <= rows["vivaldi_r1"]["scheme_ratio"] + 0.05
    assert path_tree["scheme_ratio"] <= rows["vivaldi_r4"]["scheme_ratio"] + 0.05
    # ...and much quicker than a long Vivaldi convergence run.
    assert path_tree["setup_time_ms"] < rows["vivaldi_r16"]["setup_time_ms"] / 5
    # Clearly better than picking neighbours at random.
    assert path_tree["scheme_ratio"] < rows["random"]["scheme_ratio"]
