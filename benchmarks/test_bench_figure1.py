"""Benchmark reproducing the paper's Figure 1 (its only figure).

Regenerates the two curves — ``D/D_closest`` for the proposed scheme and
``D_random/D_closest`` for random selection — against the number of peers,
on a scaled-down router map, and records them in ``extra_info``.

Paper's reported shape: the scheme stays ≈1.1–1.4 and flat while random is
≈2.0–2.4 and grows with the population.  The reproduction must show the same
ordering and flatness (absolute values depend on the synthetic map).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import Figure1Config, run_figure1

from ._workloads import bench_map_config


def _figure1_table():
    config = Figure1Config(
        peer_counts=(60, 120, 180),
        landmark_count=4,
        neighbor_set_size=5,
        seeds=(11,),
        router_map_config=bench_map_config(11),
    )
    return run_figure1(config)


@pytest.mark.benchmark(group="figure1")
def test_figure1_curves(benchmark):
    """Figure 1: neighbour-quality ratios vs population size."""
    table = benchmark.pedantic(_figure1_table, rounds=1, iterations=1)

    scheme = table.column("scheme_ratio")
    random_ratio = table.column("random_ratio")
    peers = table.column("peers")

    # Record the regenerated series next to the timing.
    for population, scheme_value, random_value in zip(peers, scheme, random_ratio):
        benchmark.extra_info[f"scheme_ratio_n{population}"] = round(scheme_value, 3)
        benchmark.extra_info[f"random_ratio_n{population}"] = round(random_value, 3)

    # Shape checks mirroring the paper's figure.
    assert all(1.0 <= value < 1.6 for value in scheme), scheme
    assert all(s < r for s, r in zip(scheme, random_ratio))
    # Scheme is stable as the population grows (flat curve).
    assert max(scheme) - min(scheme) < 0.3
    # Random selection does not improve with population size.
    assert random_ratio[-1] >= random_ratio[0] - 0.15
