"""Benchmarks for future-work item F1: landmark count and placement.

The paper lists "various policies for the management of landmarks, including
the number and their placement in the network" as ongoing work.  These
benchmarks regenerate the two corresponding ablation tables and record every
row in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import landmark_count_sweep, landmark_placement_sweep


@pytest.mark.benchmark(group="landmarks")
def test_landmark_count_sweep(benchmark):
    """Neighbour quality vs the number of deployed landmarks."""
    table = benchmark.pedantic(
        lambda: landmark_count_sweep(
            landmark_counts=(1, 2, 4, 8), peer_count=120, neighbor_set_size=3, seed=11
        ),
        rounds=1,
        iterations=1,
    )
    ratios = {}
    for row in table.rows:
        ratios[row["landmarks"]] = row["scheme_ratio"]
        benchmark.extra_info[f"scheme_ratio_{row['landmarks']}_landmarks"] = round(
            row["scheme_ratio"], 3
        )

    # A handful of landmarks is enough ("few landmarks" in the paper): adding
    # more beyond 4 must not change the quality much.
    assert abs(ratios[8] - ratios[4]) < 0.25
    # Every configuration still beats random selection.
    for row in table.rows:
        assert row["scheme_ratio"] < row["random_ratio"]


@pytest.mark.benchmark(group="landmarks")
def test_landmark_placement_sweep(benchmark):
    """Neighbour quality vs the placement strategy."""
    table = benchmark.pedantic(
        lambda: landmark_placement_sweep(
            strategies=("medium_degree", "random", "high_degree", "betweenness"),
            peer_count=120,
            landmark_count=4,
            neighbor_set_size=3,
            seed=13,
        ),
        rounds=1,
        iterations=1,
    )
    for row in table.rows:
        benchmark.extra_info[f"scheme_ratio_{row['strategy']}"] = round(row["scheme_ratio"], 3)
        # Whatever the placement, the scheme beats random neighbour selection.
        assert row["scheme_ratio"] < row["random_ratio"]

    ratios = {row["strategy"]: row["scheme_ratio"] for row in table.rows}
    # The paper's medium-degree placement is competitive with the alternatives
    # (within 0.3 of the best strategy on this map).
    assert ratios["medium_degree"] <= min(ratios.values()) + 0.3
