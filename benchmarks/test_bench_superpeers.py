"""Benchmark for future-work item F3: super-peer sharding of the directory.

The paper mentions investigating "the opportunity to use some super-peers".
This benchmark regenerates the super-peer ablation: the same peer population
is registered into directories sharded over 1, 2, 4 and 8 super-peers, and the
table reports neighbour quality, load balance and cross-region traffic.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import superpeer_study


@pytest.mark.benchmark(group="superpeers")
def test_superpeer_sharding(benchmark):
    """Neighbour quality and load balance vs the number of super-peers."""
    table = benchmark.pedantic(
        lambda: superpeer_study(
            super_peer_counts=(1, 2, 4, 8),
            peer_count=120,
            landmark_count=8,
            neighbor_set_size=3,
            seed=37,
        ),
        rounds=1,
        iterations=1,
    )
    rows = {row["super_peers"]: row for row in table.rows}
    for count, row in rows.items():
        benchmark.extra_info[f"ratio_{count}_superpeers"] = round(row["scheme_ratio"], 3)
        benchmark.extra_info[f"max_load_{count}_superpeers"] = round(row["max_load_fraction"], 3)

    single = rows[1]
    # A single super-peer is exactly the centralised server.
    assert single["max_load_fraction"] == 1.0
    assert single["cross_region_queries"] == 0
    for count, row in rows.items():
        # Quality stays in the near-optimal band regardless of sharding.
        assert row["scheme_ratio"] < 1.5
        # Sharding never degrades quality by more than a small margin.
        assert row["scheme_ratio"] <= single["scheme_ratio"] + 0.15
        if count > 1:
            # The busiest super-peer carries strictly less than everything.
            assert row["max_load_fraction"] < 1.0
    # More super-peers means a flatter load distribution.
    assert rows[8]["max_load_fraction"] <= rows[2]["max_load_fraction"] + 1e-9
