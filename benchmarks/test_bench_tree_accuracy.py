"""Benchmark for claim C3: ``dtree ≈ d`` for most peer pairs.

The paper's correctness argument is that the heavy-tailed router graph routes
most shortest paths through the core, so the distance inferred from the
landmark tree matches the true distance for most pairs.  This benchmark
regenerates the accuracy distribution (exact fraction, mean stretch) over
random same-landmark pairs and records it in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import tree_accuracy_study


@pytest.mark.benchmark(group="tree-accuracy")
def test_tree_accuracy(benchmark):
    """Distribution of dtree vs the true hop distance."""
    table = benchmark.pedantic(
        lambda: tree_accuracy_study(peer_count=150, landmark_count=4, pair_samples=400, seed=19),
        rounds=1,
        iterations=1,
    )
    rows = {row["pair_type"]: row for row in table.rows}
    same = rows["same_landmark"]

    benchmark.extra_info["same_landmark_pairs"] = same["pairs"]
    benchmark.extra_info["exact_fraction"] = round(same["exact_fraction"], 3)
    benchmark.extra_info["mean_stretch"] = round(same["mean_stretch"], 3)
    benchmark.extra_info["p90_stretch"] = round(same["p90_stretch"], 3)
    if "cross_landmark" in rows:
        benchmark.extra_info["cross_landmark_mean_stretch"] = round(
            rows["cross_landmark"]["mean_stretch"], 3
        )

    # dtree follows a real route, so it never undershoots (stretch >= 1) ...
    assert same["mean_stretch"] >= 1.0
    # ... and the core-centrality argument keeps it tight for most pairs.
    assert same["exact_fraction"] > 0.3
    assert same["mean_stretch"] < 1.5
    assert same["p90_stretch"] < 2.0
