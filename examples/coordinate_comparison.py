#!/usr/bin/env python3
"""How quick is "quicker"?  Path tree vs Vivaldi, GNP and binning.

The paper's argument against coordinate systems is convergence time: a
newcomer should not have to wait for dozens of RTT samples before it can pick
good neighbours.  This example runs the convergence study and prints, for
every scheme, the number of measurements a newcomer performs, the modelled
wall-clock setup time, and the neighbour-quality ratio it achieves.
"""

from __future__ import annotations

from repro.experiments.convergence import run_convergence_study


def main() -> None:
    table = run_convergence_study(
        peer_count=80,
        landmark_count=4,
        neighbor_set_size=3,
        vivaldi_round_schedule=(1, 2, 4, 8, 16, 32),
        seed=31,
    )
    print(table.to_text())
    print()

    rows = {row["scheme"]: row for row in table.rows}
    path_tree = rows["path_tree"]
    vivaldi_rows = [row for name, row in rows.items() if name.startswith("vivaldi_")]
    good_enough = [
        row for row in vivaldi_rows if row["scheme_ratio"] <= path_tree["scheme_ratio"] * 1.05
    ]
    print(f"path tree: ratio {path_tree['scheme_ratio']:.2f} after "
          f"{path_tree['setup_time_ms']:.0f} ms of probing")
    if good_enough:
        first = min(good_enough, key=lambda row: row["measurements_per_peer"])
        print(f"Vivaldi needs ~{first['measurements_per_peer']:.0f} gossip rounds "
              f"({first['setup_time_ms']:.0f} ms) to reach comparable quality.")
    else:
        slowest = max(vivaldi_rows, key=lambda row: row["measurements_per_peer"])
        print("Vivaldi does not reach comparable quality even after "
              f"{slowest['measurements_per_peer']:.0f} rounds "
              f"({slowest['setup_time_ms']:.0f} ms) in this run.")
    print("GNP / binning answer after one landmark measurement phase but with "
          "coarser quality — see their rows above.")


if __name__ == "__main__":
    main()
