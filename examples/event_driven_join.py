#!/usr/bin/env python3
"""Event-driven join: measuring setup delay with the discrete-event simulator.

The other examples drive the management server in-process.  This one runs
the full message exchange over the simulated network (latencies computed on
the router map): newcomers send a ``JoinRequest``, receive the landmark list,
spend simulated time probing their landmark path, upload the ``PathReport``
and finally receive their ``NeighborResponse``.  The distribution of setup
delays (join start → neighbour list received) is the quantity the paper wants
to minimise.
"""

from __future__ import annotations

from repro import ScenarioConfig, build_scenario
from repro.metrics.latency_stats import DelaySummary
from repro.sim import Engine, PeerNode, ServerNode, SimulatedNetwork
from repro.topology import RouterMapConfig
from repro.workloads.arrivals import flash_crowd_arrivals


def main() -> None:
    config = ScenarioConfig(
        peer_count=50,
        landmark_count=4,
        neighbor_set_size=4,
        router_map_config=RouterMapConfig(
            core_size=20,
            core_attachment=3,
            transit_size=100,
            transit_attachment=2,
            stub_size=480,
            stub_attachment=1,
            seed=23,
        ),
        seed=23,
    )
    scenario = build_scenario(config)

    engine = Engine()
    network = SimulatedNetwork(
        engine,
        scenario.router_map.graph,
        processing_delay_ms=0.5,
        seed=23,
        distance_engine=scenario.distance_engine,
    )

    # The server host sits next to the first landmark's router.
    server_router = scenario.landmark_set.routers()[0]
    server_node = ServerNode("management-server", scenario.server, network)
    network.attach_host("management-server", server_router, server_node)

    # Peers arrive as a flash crowd over one minute of simulated time.
    peers = []
    arrivals = flash_crowd_arrivals(scenario.peer_ids, duration_s=60.0, seed=23)
    for arrival in arrivals:
        peer_id = arrival.peer_id
        router = scenario.peer_routers[peer_id]
        node = PeerNode(
            host_id=peer_id,
            access_router=router,
            server_host="management-server",
            engine=engine,
            network=network,
            traceroute=scenario.traceroute,
        )
        network.attach_host(peer_id, router, node)
        peers.append(node)
        engine.schedule_at(arrival.time_s * 1000.0, node.start_join, label=f"join:{peer_id}")

    engine.run()

    records = [node.record for node in peers if node.record is not None]
    completed = [record for record in records if record.completed]
    delays = [record.setup_delay for record in completed]

    print(f"peers joined          : {len(completed)}/{len(records)}")
    print(f"messages on the wire  : {network.sent_messages} (dropped: {network.dropped_messages})")
    print(f"simulated end time    : {engine.now / 1000.0:.1f} s")
    print()
    summary = DelaySummary.from_samples(delays)
    print("setup delay (ms) — join start to neighbour list received")
    print(f"  mean   : {summary.mean:8.1f}")
    print(f"  median : {summary.median:8.1f}")
    print(f"  p90    : {summary.p90:8.1f}")
    print(f"  max    : {summary.maximum:8.1f}")
    print()
    # Show a late joiner: early joiners legitimately receive few neighbours
    # because the population was still small when they arrived.
    sample = max(completed, key=lambda record: record.started_at)
    print(f"example ({sample.peer_id}): {len(sample.neighbors)} neighbours, "
          f"setup delay {sample.setup_delay:.1f} ms")


if __name__ == "__main__":
    main()
