#!/usr/bin/env python3
"""Reproduce the paper's Figure 1 (neighbour-quality ratios vs population size).

By default this runs the *quick* configuration (small map, three population
sizes, one seed) so it finishes in well under a minute.  Pass ``--full`` to
run the paper-scale sweep (600–1400 peers on the ~4000-router map, three
seeds), which takes a few minutes.

The printed table has one row per population size with the two curves of the
paper's figure: ``D/D_closest`` (the proposed scheme, expected to stay low
and flat) and ``D_random/D_closest`` (random selection, expected to be much
higher and to grow with the population).
"""

from __future__ import annotations

import argparse

from repro.experiments.figure1 import Figure1Config, quick_figure1_config, run_figure1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-scale sweep (600-1400 peers, 3 seeds); slower",
    )
    parser.add_argument("--seed", type=int, default=7, help="seed for the quick configuration")
    args = parser.parse_args()

    config = Figure1Config() if args.full else quick_figure1_config(seed=args.seed)
    print(f"population sizes: {list(config.peer_counts)}")
    print(f"landmarks: {config.landmark_count}, k = {config.neighbor_set_size}, "
          f"seeds: {list(config.seeds)}")
    print()

    table = run_figure1(config)
    print(table.to_text())
    print()

    scheme = table.column("scheme_ratio")
    random_ratio = table.column("random_ratio")
    print("Shape check against the paper:")
    print(f"  scheme ratio range : {min(scheme):.2f} – {max(scheme):.2f}   (paper: ~1.1 – 1.4, flat)")
    print(f"  random ratio range : {min(random_ratio):.2f} – {max(random_ratio):.2f}   (paper: ~2.0 – 2.4, growing)")
    print(f"  scheme beats random at every size: {all(s < r for s, r in zip(scheme, random_ratio))}")


if __name__ == "__main__":
    main()
