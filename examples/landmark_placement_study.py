#!/usr/bin/env python3
"""Landmark engineering study (the paper's stated future work).

The paper leaves open "various policies for the management of landmarks,
including the number and their placement in the network".  This example runs
the two corresponding ablations and prints their tables:

* neighbour quality vs the number of deployed landmarks;
* neighbour quality vs the placement strategy (the paper's medium-degree
  default, random, high-degree/core, highest-betweenness, greedy spread).
"""

from __future__ import annotations

from repro.experiments.ablations import landmark_count_sweep, landmark_placement_sweep


def main() -> None:
    print("How many landmarks are enough?")
    count_table = landmark_count_sweep(landmark_counts=(1, 2, 4, 8, 16))
    print(count_table.to_text())
    print()

    counts = count_table.column("landmarks")
    ratios = count_table.column("scheme_ratio")
    best = min(zip(ratios, counts))
    print(f"best ratio {best[0]:.3f} reached with {best[1]} landmarks; "
          "returns diminish quickly after a handful, matching the paper's 'few landmarks'.")
    print()

    print("Does placement matter?")
    placement_table = landmark_placement_sweep()
    print(placement_table.to_text())
    print()
    strategies = placement_table.column("strategy")
    ratios = placement_table.column("scheme_ratio")
    ranked = sorted(zip(ratios, strategies))
    print("strategies ranked best-to-worst by D/D_closest:")
    for ratio, strategy in ranked:
        print(f"  {strategy:<15} {ratio:.3f}")


if __name__ == "__main__":
    main()
