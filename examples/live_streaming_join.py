#!/usr/bin/env python3
"""Live-streaming scenario: why nearby neighbours matter.

This is the workload the paper's introduction motivates: a mesh-based live
streaming channel (PULSE-style) where chunks are pulled from overlay
neighbours.  The example builds the *same* peer population twice —

* once with neighbours chosen by the paper's path-tree scheme,
* once with uniformly random neighbours —

and streams the same channel over both overlays.  Proximity-aware neighbours
shorten chunk transfer delays, which shows up as lower startup delay and a
tighter playback-delay spread across peers.
"""

from __future__ import annotations

from repro import ScenarioConfig, build_scenario
from repro.streaming import MeshConfig, MeshStreamingSession, playback_delay_spread
from repro.topology import RouterMapConfig


def build_streaming_overlays(seed: int = 11, peer_count: int = 60):
    """Build one scenario and derive the two overlays to compare."""
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=4,
        neighbor_set_size=4,
        router_map_config=RouterMapConfig(
            core_size=20,
            core_attachment=3,
            transit_size=100,
            transit_attachment=2,
            stub_size=480,
            stub_attachment=1,
            seed=seed,
        ),
        seed=seed,
    )
    scenario = build_scenario(config)
    scenario.join_all()

    proximity_overlay = scenario.build_overlay(scenario.scheme_neighbor_sets())
    random_overlay = scenario.build_overlay(scenario.random_neighbor_sets())
    return scenario, proximity_overlay, random_overlay


def stream_over(overlay, scenario, label: str) -> None:
    """Run one streaming session and print its headline metrics."""
    source = scenario.peer_ids[0]
    session = MeshStreamingSession(
        overlay=overlay,
        source_id=source,
        distance=scenario.true_distance,
        config=MeshConfig(rounds=90, requests_per_round=4, uploads_per_round=6),
    )
    result = session.run()
    reports = list(result.playback_reports.values())
    link_cost = overlay.mean_neighbor_cost(scenario.true_distance) / max(
        1, scenario.config.neighbor_set_size
    )
    print(f"-- {label} --")
    print(f"  mean router hops per overlay link : {link_cost:.2f}")
    print(f"  chunks injected                   : {result.chunks_injected}")
    print(f"  chunk transfers                   : {result.total_transfers}")
    print(f"  mean delivery delay               : {result.mean_delivery_delay_s:.2f} s")
    print(f"  mean startup delay                : {result.mean_startup_delay():.2f} s")
    print(f"  mean continuity                   : {result.mean_continuity():.3f}")
    print(f"  playback delay spread             : {playback_delay_spread(reports):.2f} s")
    print()


def main() -> None:
    scenario, proximity_overlay, random_overlay = build_streaming_overlays()
    print(f"peers: {len(scenario.peer_ids)}, neighbour set size: "
          f"{scenario.config.neighbor_set_size}\n")
    stream_over(proximity_overlay, scenario, "path-tree neighbours (the paper's scheme)")
    stream_over(random_overlay, scenario, "random neighbours (baseline)")
    print("Proximity-selected neighbours exchange chunks over far fewer underlying")
    print("router hops (first metric above), which is exactly what the paper's scheme")
    print("optimises; deployed systems blend in a few random long links to also keep")
    print("the overlay's hop-diameter low.")


if __name__ == "__main__":
    main()
