#!/usr/bin/env python3
"""Mobility and handover (paper future work).

A moving peer re-attaches to a different access router; its recorded path to
the landmark — and therefore its place in the path tree — becomes stale.  The
handover procedure is simply the join protocol run again from the new
position: one traceroute, one path report, a fresh neighbour list.

This example joins a population, generates a synthetic movement trace for 30%
of the peers, executes every handover, and reports:

* how often the move changed the peer's closest landmark,
* how much of the old neighbour set survived the move,
* how much worse the *stale* neighbour set was from the new position, and how
  much the refresh recovered,
* the population-wide neighbour quality after all the churn.
"""

from __future__ import annotations

from repro import ScenarioConfig, build_scenario
from repro.metrics.proximity import compare_strategies
from repro.overlay.mobility import HandoverManager, MobilityModel
from repro.topology import RouterMapConfig


def main() -> None:
    scenario = build_scenario(ScenarioConfig(
        peer_count=80,
        landmark_count=4,
        neighbor_set_size=4,
        router_map_config=RouterMapConfig(
            core_size=20, core_attachment=3, transit_size=100, transit_attachment=2,
            stub_size=480, stub_attachment=1, seed=43,
        ),
        seed=43,
    ))
    scenario.join_all()

    stubs = scenario.router_map.stub_routers()
    model = MobilityModel(
        candidate_routers=stubs,
        mean_pause_s=60.0,
        seed=43,
        engine=scenario.distance_engine,
    )
    moves = model.trace(
        scenario.router_map.graph, scenario.peer_routers, horizon_s=300.0, mobile_fraction=0.3
    )
    print(f"peers: {len(scenario.peer_ids)}, moves to execute: {len(moves)}")

    manager = HandoverManager(scenario)
    reports = manager.run_trace(moves)

    landmark_changes = sum(1 for report in reports if report.landmark_changed)
    overlaps = [report.neighbor_overlap for report in reports if report.old_neighbors]
    gains = [report.refresh_gain for report in reports if report.stale_neighbor_cost > 0]

    print(f"handovers executed        : {len(reports)}")
    print(f"closest landmark changed  : {landmark_changes} ({landmark_changes / len(reports):.0%})")
    if overlaps:
        print(f"old neighbours kept       : {sum(overlaps) / len(overlaps):.0%} on average")
    if gains:
        print(f"refresh improved D by     : {sum(gains) / len(gains):.0%} on average "
              "(vs keeping the stale list)")

    comparison = compare_strategies(
        scenario.scheme_neighbor_sets(),
        scenario.oracle_neighbor_sets(),
        scenario.random_neighbor_sets(),
        scenario.true_distance,
        scenario.config.neighbor_set_size,
    )
    print()
    print("population after all handovers:")
    print(f"  D/D_closest        = {comparison.scheme_ratio:.3f}")
    print(f"  D_random/D_closest = {comparison.random_ratio:.3f}")
    print()
    print("Because a handover is just a cheap re-join (one traceroute + one report),")
    print("mobile peers regain near-optimal neighbour sets immediately after moving.")


if __name__ == "__main__":
    main()
