#!/usr/bin/env python3
"""Quickstart: build a scenario, join peers, ask for nearby peers.

Runs in a few seconds on a laptop.  It walks through the library's main
objects in the order a user would meet them:

1. generate a synthetic router-level Internet map;
2. place landmarks on medium-degree routers and peers on degree-1 routers;
3. let every peer run the two-round join protocol (traceroute to its closest
   landmark, upload the path, receive its estimated-closest peers);
4. compare the answer against the brute-force optimum for one peer.
"""

from __future__ import annotations

from repro import ScenarioConfig, build_scenario
from repro.topology import RouterMapConfig
from repro.topology.metrics import summarize


def main() -> None:
    # A small map (~600 routers) so the example is instant; drop the
    # router_map_config argument to use the full ~4000-router default.
    config = ScenarioConfig(
        peer_count=80,
        landmark_count=4,
        neighbor_set_size=5,
        router_map_config=RouterMapConfig(
            core_size=20,
            core_attachment=3,
            transit_size=100,
            transit_attachment=2,
            stub_size=480,
            stub_attachment=1,
            seed=7,
        ),
        seed=7,
    )
    scenario = build_scenario(config)

    print("== Router-level map ==")
    print(summarize(scenario.router_map.graph, seed=7))
    print(f"degree-1 routers (peer attachment points): {len(scenario.router_map.stub_routers())}")
    print(f"landmarks: {scenario.landmark_set.ids()}")
    print()

    print("== Joining all peers through the management server ==")
    scenario.join_all()
    print(f"registered peers: {scenario.server.peer_count}")
    print(f"server stats: {scenario.server.stats}")
    print()

    peer = "peer0"
    print(f"== Nearby peers for {peer} ==")
    recommended = scenario.server.closest_peers(peer, k=5)
    optimal = scenario.oracle.closest_peers(peer, k=5)
    print(f"{'recommended (dtree)':<30} {'optimal (true hops)':<30}")
    for (rec_peer, rec_distance), (opt_peer, opt_distance) in zip(recommended, optimal):
        print(f"{rec_peer:<12} dtree={rec_distance:<10.0f} {opt_peer:<12} d={opt_distance:<10.0f}")

    recommended_ids = [p for p, _ in recommended]
    cost_scheme = scenario.oracle.neighbor_cost(peer, recommended_ids)
    cost_optimal = scenario.oracle.neighbor_cost(peer, [p for p, _ in optimal])
    print()
    print(f"D (scheme)  = {cost_scheme:.0f} true hops")
    print(f"D (optimal) = {cost_optimal:.0f} true hops")
    print(f"ratio       = {cost_scheme / cost_optimal:.2f}  (1.0 would be perfect)")


if __name__ == "__main__":
    main()
