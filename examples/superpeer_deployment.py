#!/usr/bin/env python3
"""Sharding the management server across super-peers (paper future work).

The paper mentions "the opportunity to use some super-peers": a single
management server is a bottleneck, so this example splits the landmark set
across several super-peers, registers the same peer population in every
configuration, and compares

* neighbour quality (``D / D_closest`` priced with the brute-force oracle),
* load balance (fraction of peers on the busiest super-peer),
* how many cross-region lookups were needed to fill sparse regions.

The take-away: sharding barely costs any quality — peers under the same
landmark stay on the same super-peer, so the path-tree answers are identical;
only peers in sparse regions occasionally need cross-region padding.
"""

from __future__ import annotations

from repro.experiments.ablations import superpeer_study


def main() -> None:
    table = superpeer_study(
        super_peer_counts=(1, 2, 4, 8),
        peer_count=150,
        landmark_count=8,
        neighbor_set_size=3,
        seed=37,
    )
    print(table.to_text())
    print()

    rows = {row["super_peers"]: row for row in table.rows}
    single = rows[1]
    most = rows[max(rows)]
    print(f"quality with 1 super-peer : D/D_closest = {single['scheme_ratio']:.3f}")
    print(f"quality with {max(rows)} super-peers: D/D_closest = {most['scheme_ratio']:.3f} "
          f"(penalty {most['scheme_ratio'] - single['scheme_ratio']:+.3f})")
    print(f"busiest super-peer load   : {single['max_load_fraction']:.0%} -> "
          f"{most['max_load_fraction']:.0%} of all peers")
    print()
    print("Sharding the directory spreads registrations across super-peers with a")
    print("negligible effect on neighbour quality, because proximity information is")
    print("regional by construction (one path tree per landmark).")


if __name__ == "__main__":
    main()
