"""repro — reproduction of "A Quicker Way to Discover Nearby Peers" (CoNEXT 2007).

The package implements the paper's landmark path-tree proximity-discovery
scheme together with every substrate its evaluation needs:

* :mod:`repro.topology` — synthetic router-level Internet maps;
* :mod:`repro.routing` — shortest-path routing and simulated traceroute;
* :mod:`repro.core` — the path tree, management server and join protocol
  (the paper's contribution);
* :mod:`repro.landmarks` — landmark placement and management;
* :mod:`repro.baselines` — random, brute-force oracle, Vivaldi, GNP, binning;
* :mod:`repro.overlay`, :mod:`repro.streaming` — the P2P overlay and the
  mesh live-streaming workload that motivates the paper;
* :mod:`repro.sim` — a deterministic discrete-event simulator;
* :mod:`repro.metrics`, :mod:`repro.workloads`, :mod:`repro.experiments` —
  the evaluation harness reproducing the paper's figure and claims.

Quickstart
----------
>>> from repro import build_scenario, ScenarioConfig
>>> scenario = build_scenario(ScenarioConfig(peer_count=50, landmark_count=3,
...                                          neighbor_set_size=3, seed=1))
>>> results = scenario.join_all()
>>> neighbors = scenario.server.closest_peers("peer0", k=3)
>>> len(neighbors) <= 3
True
"""

from .core import (
    ManagementServer,
    NewcomerClient,
    PathTree,
    RouterPath,
    ShardedManagementServer,
    join_population,
)
from .landmarks import LandmarkSet, place_landmarks
from .topology import Graph, RouterMap, RouterMapConfig, generate_router_map
from .workloads import Scenario, ScenarioConfig, build_scenario, small_scenario
from .experiments import run_experiment, run_figure1

__version__ = "1.0.0"

__all__ = [
    "ManagementServer",
    "NewcomerClient",
    "ShardedManagementServer",
    "PathTree",
    "RouterPath",
    "join_population",
    "LandmarkSet",
    "place_landmarks",
    "Graph",
    "RouterMap",
    "RouterMapConfig",
    "generate_router_map",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "small_scenario",
    "run_experiment",
    "run_figure1",
    "__version__",
]
