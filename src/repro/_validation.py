"""Small validation helpers shared across the library.

These helpers keep argument checking terse and consistent: every public
constructor or function that accepts sizes, probabilities or identifiers uses
them, so error messages look the same everywhere.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, TypeVar

from .exceptions import ConfigurationError

T = TypeVar("T")


def require_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a positive integer, else raise."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is a non-negative integer, else raise."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def require_positive_float(value: float, name: str) -> float:
    """Return ``value`` as float if it is strictly positive, else raise."""
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if as_float <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return as_float


def require_non_negative_float(value: float, name: str) -> float:
    """Return ``value`` as float if it is >= 0, else raise."""
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if as_float < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return as_float


def require_probability(value: float, name: str) -> float:
    """Return ``value`` as float if it lies in [0, 1], else raise."""
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if not 0.0 <= as_float <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return as_float


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise."""
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if not low <= as_float <= high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return as_float


def require_non_empty(sequence: Sequence[T], name: str) -> Sequence[T]:
    """Return ``sequence`` if it has at least one element, else raise."""
    if len(sequence) == 0:
        raise ConfigurationError(f"{name} must not be empty")
    return sequence


def require_one_of(value: T, allowed: Iterable[T], name: str) -> T:
    """Return ``value`` if it is one of ``allowed``, else raise."""
    allowed_list = list(allowed)
    if value not in allowed_list:
        raise ConfigurationError(f"{name} must be one of {allowed_list!r}, got {value!r}")
    return value


def coerce_seed(seed: Optional[int]) -> Optional[int]:
    """Validate an RNG seed: ``None`` or a non-negative integer."""
    if seed is None:
        return None
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ConfigurationError(f"seed must be None or a non-negative integer, got {seed!r}")
    return seed
