"""Baselines and comparators.

* :class:`~repro.baselines.random_selection.RandomSelection` and
  :class:`~repro.baselines.brute_force.BruteForceOracle` are the two
  references the paper's figure uses (``D_random`` and ``D_closest``).
* :class:`~repro.baselines.vivaldi.VivaldiSystem`,
  :class:`~repro.baselines.gnp.GnpSystem` and
  :class:`~repro.baselines.binning.BinningSystem` are the coordinate /
  binning approaches the paper positions itself against ("quicker than
  network coordinate systems").
"""

from .random_selection import RandomSelection
from .brute_force import BruteForceOracle
from .vivaldi import VivaldiCoordinate, VivaldiNode, VivaldiSystem
from .gnp import GnpSystem
from .binning import Bin, BinningSystem, DEFAULT_LEVEL_BOUNDARIES

__all__ = [
    "RandomSelection",
    "BruteForceOracle",
    "VivaldiCoordinate",
    "VivaldiNode",
    "VivaldiSystem",
    "GnpSystem",
    "Bin",
    "BinningSystem",
    "DEFAULT_LEVEL_BOUNDARIES",
]
