"""Distributed binning (Ratnasamy et al., INFOCOM 2002).

The paper's related-work anchor for "topologically-aware overlay
construction": every host measures its RTT to a small set of landmarks,
orders the landmarks from closest to farthest, and discretises each RTT into
a small number of levels.  The resulting *bin* (landmark order + level
vector) is the host's coarse position; hosts falling in the same bin are
considered topologically close.

Neighbour selection then prefers peers with an identical bin, then peers
whose bin differs in the fewest positions — far cheaper than coordinates but
also much coarser, which is exactly the trade-off the comparison benchmarks
illustrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .._validation import require_positive_int
from ..exceptions import ConfigurationError

PeerId = Hashable
LandmarkId = Hashable
RttToLandmark = Callable[[PeerId, LandmarkId], float]

DEFAULT_LEVEL_BOUNDARIES = (20.0, 80.0)
"""Default RTT boundaries (ms) separating level 0 / 1 / 2, as in the paper."""


@dataclass(frozen=True)
class Bin:
    """A peer's bin: landmark ordering plus per-landmark RTT level."""

    ordering: Tuple[LandmarkId, ...]
    levels: Tuple[int, ...]

    def similarity_to(self, other: "Bin") -> int:
        """Number of positions at which the two bins agree (higher = closer)."""
        matches = 0
        for a, b in zip(self.ordering, other.ordering):
            if a == b:
                matches += 1
        for a, b in zip(self.levels, other.levels):
            if a == b:
                matches += 1
        return matches


class BinningSystem:
    """Landmark-order binning for a peer population.

    Parameters
    ----------
    landmark_ids:
        The deployed landmarks.
    rtt_to_landmark:
        Callable giving a peer's measured RTT to one landmark.
    level_boundaries:
        Increasing RTT thresholds splitting measurements into levels
        (``len(boundaries) + 1`` levels).
    """

    name = "binning"

    def __init__(
        self,
        landmark_ids: Sequence[LandmarkId],
        rtt_to_landmark: RttToLandmark,
        level_boundaries: Sequence[float] = DEFAULT_LEVEL_BOUNDARIES,
    ) -> None:
        if not landmark_ids:
            raise ConfigurationError("binning needs at least one landmark")
        boundaries = [float(b) for b in level_boundaries]
        if boundaries != sorted(boundaries):
            raise ConfigurationError("level_boundaries must be increasing")
        self.landmark_ids = list(landmark_ids)
        self.rtt_to_landmark = rtt_to_landmark
        self.level_boundaries = boundaries
        self.bins: Dict[PeerId, Bin] = {}
        self.measurements_per_peer = len(self.landmark_ids)

    def _level(self, rtt: float) -> int:
        for level, boundary in enumerate(self.level_boundaries):
            if rtt < boundary:
                return level
        return len(self.level_boundaries)

    def compute_bin(self, peer_id: PeerId) -> Bin:
        """Measure the peer's landmark RTTs and compute its bin."""
        measurements = [
            (float(self.rtt_to_landmark(peer_id, lid)), repr(lid), lid)
            for lid in self.landmark_ids
        ]
        measurements.sort()
        ordering = tuple(lid for _, _, lid in measurements)
        levels = tuple(self._level(rtt) for rtt, _, _ in measurements)
        return Bin(ordering=ordering, levels=levels)

    def add_peer(self, peer_id: PeerId) -> Bin:
        """Bin a (new) peer and remember the result."""
        peer_bin = self.compute_bin(peer_id)
        self.bins[peer_id] = peer_bin
        return peer_bin

    def remove_peer(self, peer_id: PeerId) -> None:
        """Forget a departed peer."""
        self.bins.pop(peer_id, None)

    def peers(self) -> List[PeerId]:
        """All binned peers."""
        return list(self.bins)

    # ---------------------------------------------------------------- queries

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Coarse distance: maximum similarity minus actual similarity.

        Peers in identical bins get distance 0; every disagreeing position
        adds 1.  This is only an ordinal quantity (good for ranking, not for
        absolute prediction), which is all binning claims to provide.
        """
        if peer_a == peer_b:
            return 0.0
        if peer_a not in self.bins or peer_b not in self.bins:
            raise ConfigurationError("both peers must be binned before estimating a distance")
        bin_a = self.bins[peer_a]
        bin_b = self.bins[peer_b]
        maximum = 2 * len(self.landmark_ids)
        return float(maximum - bin_a.similarity_to(bin_b))

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Optional[Sequence[PeerId]] = None,
        k: int = 5,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Return the ``k`` peers whose bins match the peer's bin best."""
        require_positive_int(k, "k")
        excluded = {peer_id}
        if exclude:
            excluded |= set(exclude)
        candidates = population if population is not None else self.peers()
        ranked = sorted(
            (
                (self.estimate_distance(peer_id, candidate), repr(candidate), candidate)
                for candidate in candidates
                if candidate not in excluded and candidate in self.bins
            )
        )
        return [candidate for _, _, candidate in ranked[:k]]

    def bin_population_histogram(self) -> Dict[Bin, int]:
        """How many peers fall in each distinct bin (diagnostic)."""
        histogram: Dict[Bin, int] = {}
        for peer_bin in self.bins.values():
            histogram[peer_bin] = histogram.get(peer_bin, 0) + 1
        return histogram
