"""Brute-force oracle — the paper's "best set of neighbours" reference.

The oracle knows the full router topology and every peer's attachment router,
so it can compute the genuinely closest ``k`` peers for anyone.  The paper
uses exactly this as the denominator of its figure (``D_closest``); it is not
deployable (it needs global knowledge and O(n) work per query) but it bounds
what any proximity scheme can achieve.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .._validation import require_positive_int
from ..exceptions import ConfigurationError
from ..routing.distance_engine import HopDistanceEngine
from ..routing.shortest_path import AllPairsHopDistances
from ..topology.graph import Graph

PeerId = Hashable
NodeId = Hashable


class BruteForceOracle:
    """Exact closest-peer selection using full topology knowledge.

    Parameters
    ----------
    graph:
        The router topology.
    attachment:
        Maps every peer to the router its host hangs off.
    host_hops:
        Hops charged for the host-to-router link on each side (1 by default,
        consistent with how the tree distance counts).
    engine:
        Optional shared :class:`HopDistanceEngine`; the scenario builder
        passes its own so the oracle's BFS work rides the same CSR snapshot
        as every other distance consumer.
    """

    name = "brute_force"

    def __init__(
        self,
        graph: Graph,
        attachment: Dict[PeerId, NodeId],
        host_hops: int = 1,
        engine: Optional[HopDistanceEngine] = None,
    ) -> None:
        if host_hops < 0:
            raise ConfigurationError(f"host_hops must be >= 0, got {host_hops}")
        self.graph = graph
        self.attachment = dict(attachment)
        self.host_hops = host_hops
        self._oracle = AllPairsHopDistances(graph, engine=engine)

    def add_peer(self, peer_id: PeerId, router: NodeId) -> None:
        """Register a (new) peer's attachment router."""
        if not self.graph.has_node(router):
            raise ConfigurationError(f"router {router!r} is not part of the topology")
        self.attachment[peer_id] = router

    def remove_peer(self, peer_id: PeerId) -> None:
        """Forget a departed peer."""
        self.attachment.pop(peer_id, None)

    def peer_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """True hop distance between two peers (host links included)."""
        if peer_a == peer_b:
            return 0.0
        router_a = self.attachment[peer_a]
        router_b = self.attachment[peer_b]
        router_distance = 0 if router_a == router_b else self._oracle.distance(router_a, router_b)
        return float(router_distance + 2 * self.host_hops)

    # Alias so the oracle satisfies the DistanceEstimator protocol.
    estimate_distance = peer_distance

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Optional[Sequence[PeerId]] = None,
        k: int = 5,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Return the truly closest ``k`` peers of ``peer_id``."""
        return [peer for peer, _ in self.closest_peers(peer_id, k, population=population, exclude=exclude)]

    def closest_peers(
        self,
        peer_id: PeerId,
        k: int,
        population: Optional[Sequence[PeerId]] = None,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[Tuple[PeerId, float]]:
        """Return the ``k`` closest peers with their true distances."""
        require_positive_int(k, "k")
        if peer_id not in self.attachment:
            raise ConfigurationError(f"peer {peer_id!r} has no known attachment router")
        excluded = {peer_id}
        if exclude:
            excluded |= set(exclude)
        candidates = population if population is not None else list(self.attachment)
        origin_router = self.attachment[peer_id]
        distances = self._oracle.distances_from(origin_router)

        ranked: List[Tuple[float, str, PeerId]] = []
        for candidate in candidates:
            if candidate in excluded or candidate not in self.attachment:
                continue
            router = self.attachment[candidate]
            router_distance = 0 if router == origin_router else distances.get(router)
            if router_distance is None:
                continue
            total = float(router_distance + 2 * self.host_hops)
            ranked.append((total, repr(candidate), candidate))
        ranked.sort()
        return [(candidate, distance) for distance, _, candidate in ranked[:k]]

    def neighbor_cost(self, peer_id: PeerId, neighbors: Sequence[PeerId]) -> float:
        """Sum of true hop distances from ``peer_id`` to ``neighbors`` (the paper's D)."""
        return sum(self.peer_distance(peer_id, neighbor) for neighbor in neighbors)
