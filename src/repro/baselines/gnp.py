"""GNP-style landmark coordinates (Ng & Zhang, INFOCOM 2002).

GNP is the other coordinate approach the paper cites: every host measures its
RTT to a fixed set of landmarks and solves a small optimisation problem to
place itself in a Euclidean space in which inter-host RTTs are approximated
by coordinate distances.

The reproduction implements the two standard phases:

1. **Landmark embedding** — the landmarks' own coordinates are found by
   minimising the pairwise embedding error over all landmark pairs.
2. **Host embedding** — each peer independently minimises the error between
   its measured landmark RTTs and its coordinate distances to the (fixed)
   landmark coordinates.

Both minimisations use a simple multi-restart coordinate-descent / gradient
scheme built on numpy, which is accurate enough for ranking peers by
proximity (the only use the evaluation makes of it) and keeps the library
free of a hard scipy dependency.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .._validation import coerce_seed, require_positive_int
from ..exceptions import ConfigurationError

PeerId = Hashable
LandmarkId = Hashable
RttToLandmark = Callable[[PeerId, LandmarkId], float]


def _embedding_error(
    coordinates: np.ndarray, targets: np.ndarray, anchors: np.ndarray
) -> float:
    """Sum of squared relative errors between coordinate and target distances."""
    distances = np.linalg.norm(anchors - coordinates, axis=1)
    safe_targets = np.where(targets <= 0, 1e-9, targets)
    relative = (distances - targets) / safe_targets
    return float(np.sum(relative ** 2))


def _minimize_point(
    targets: np.ndarray,
    anchors: np.ndarray,
    dimensions: int,
    rng: random.Random,
    iterations: int = 200,
    restarts: int = 3,
) -> np.ndarray:
    """Find a point whose distances to ``anchors`` best match ``targets``.

    Gradient descent with adaptive step and a few random restarts; good
    enough for the small (5–20 landmark) systems GNP uses.
    """
    best_point: Optional[np.ndarray] = None
    best_error = float("inf")
    scale = float(np.mean(targets)) if targets.size else 1.0
    for _ in range(restarts):
        point = np.array(
            [rng.uniform(-scale, scale) for _ in range(dimensions)], dtype=float
        )
        step = scale / 10.0 if scale > 0 else 0.1
        error = _embedding_error(point, targets, anchors)
        for _ in range(iterations):
            gradient = np.zeros(dimensions)
            distances = np.linalg.norm(anchors - point, axis=1)
            safe_distances = np.where(distances < 1e-9, 1e-9, distances)
            safe_targets = np.where(targets <= 0, 1e-9, targets)
            # d/dp of ((|a-p| - t)/t)^2 = 2 (|a-p| - t)/t^2 * (p - a)/|a-p|
            coefficients = 2.0 * (distances - targets) / (safe_targets ** 2)
            gradient = np.sum(
                (coefficients / safe_distances)[:, None] * (point - anchors), axis=0
            )
            candidate = point - step * gradient
            candidate_error = _embedding_error(candidate, targets, anchors)
            if candidate_error < error:
                point = candidate
                error = candidate_error
                step *= 1.1
            else:
                step *= 0.5
                if step < 1e-9:
                    break
        if error < best_error:
            best_error = error
            best_point = point
    assert best_point is not None
    return best_point


class GnpSystem:
    """Landmark-based coordinate embedding for a peer population.

    Parameters
    ----------
    landmark_ids:
        The fixed landmark identifiers.
    landmark_rtts:
        ``{(landmark_a, landmark_b): rtt}`` for every landmark pair (any
        order); used to embed the landmarks themselves.
    rtt_to_landmark:
        Callable giving a peer's measured RTT to one landmark.
    dimensions:
        Embedding dimensionality (the original paper uses 5–7 for the full
        Internet; 3 is plenty for the simulated maps).
    """

    name = "gnp"

    def __init__(
        self,
        landmark_ids: Sequence[LandmarkId],
        landmark_rtts: Dict[Tuple[LandmarkId, LandmarkId], float],
        rtt_to_landmark: RttToLandmark,
        dimensions: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        if len(landmark_ids) < 2:
            raise ConfigurationError("GNP needs at least two landmarks")
        self.landmark_ids = list(landmark_ids)
        self.dimensions = require_positive_int(dimensions, "dimensions")
        self.rtt_to_landmark = rtt_to_landmark
        self._rng = random.Random(coerce_seed(seed))
        self._landmark_rtts = self._symmetrize(landmark_rtts)
        self.landmark_coordinates: Dict[LandmarkId, np.ndarray] = {}
        self.peer_coordinates: Dict[PeerId, np.ndarray] = {}
        self.measurements_per_peer = len(self.landmark_ids)
        self._embed_landmarks()

    def _symmetrize(
        self, rtts: Dict[Tuple[LandmarkId, LandmarkId], float]
    ) -> Dict[Tuple[LandmarkId, LandmarkId], float]:
        table: Dict[Tuple[LandmarkId, LandmarkId], float] = {}
        for (a, b), value in rtts.items():
            table[(a, b)] = float(value)
            table[(b, a)] = float(value)
        for a in self.landmark_ids:
            for b in self.landmark_ids:
                if a == b:
                    table[(a, b)] = 0.0
                elif (a, b) not in table:
                    raise ConfigurationError(f"missing landmark RTT between {a!r} and {b!r}")
        return table

    # ------------------------------------------------------------- embeddings

    def _embed_landmarks(self) -> None:
        """Iteratively place the landmarks to fit their pairwise RTTs."""
        count = len(self.landmark_ids)
        scale = max(self._landmark_rtts.values()) or 1.0
        coordinates = {
            lid: np.array(
                [self._rng.uniform(-scale / 2, scale / 2) for _ in range(self.dimensions)]
            )
            for lid in self.landmark_ids
        }
        # A few sweeps of per-landmark refinement against the others.
        for _ in range(5):
            for lid in self.landmark_ids:
                others = [o for o in self.landmark_ids if o != lid]
                anchors = np.array([coordinates[o] for o in others])
                targets = np.array([self._landmark_rtts[(lid, o)] for o in others])
                coordinates[lid] = _minimize_point(
                    targets, anchors, self.dimensions, self._rng, iterations=100, restarts=2
                )
        self.landmark_coordinates = coordinates

    def add_peer(self, peer_id: PeerId) -> np.ndarray:
        """Measure the peer's landmark RTTs and embed it."""
        anchors = np.array([self.landmark_coordinates[lid] for lid in self.landmark_ids])
        targets = np.array(
            [float(self.rtt_to_landmark(peer_id, lid)) for lid in self.landmark_ids]
        )
        coordinate = _minimize_point(targets, anchors, self.dimensions, self._rng)
        self.peer_coordinates[peer_id] = coordinate
        return coordinate

    def remove_peer(self, peer_id: PeerId) -> None:
        """Forget a departed peer."""
        self.peer_coordinates.pop(peer_id, None)

    def peers(self) -> List[PeerId]:
        """All embedded peers."""
        return list(self.peer_coordinates)

    # ---------------------------------------------------------------- queries

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Predicted RTT between two embedded peers."""
        if peer_a == peer_b:
            return 0.0
        if peer_a not in self.peer_coordinates or peer_b not in self.peer_coordinates:
            raise ConfigurationError("both peers must be embedded before estimating a distance")
        return float(
            np.linalg.norm(self.peer_coordinates[peer_a] - self.peer_coordinates[peer_b])
        )

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Optional[Sequence[PeerId]] = None,
        k: int = 5,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Rank embedded peers by coordinate distance and return the closest ``k``."""
        require_positive_int(k, "k")
        excluded = {peer_id}
        if exclude:
            excluded |= set(exclude)
        candidates = population if population is not None else self.peers()
        ranked = sorted(
            (
                (self.estimate_distance(peer_id, candidate), repr(candidate), candidate)
                for candidate in candidates
                if candidate not in excluded and candidate in self.peer_coordinates
            )
        )
        return [candidate for _, _, candidate in ranked[:k]]
