"""Random neighbour selection — the paper's "basic approach" baseline.

A newcomer that knows nothing about network proximity simply picks ``k``
peers uniformly at random among the current population.  The paper's figure
shows this baseline at roughly twice the optimal neighbour cost
(``D_random / D_closest`` around 2), growing slowly with the population.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence, Set

from .._validation import coerce_seed, require_positive_int
from ..exceptions import ConfigurationError

PeerId = Hashable


class RandomSelection:
    """Uniformly random neighbour selection.

    Parameters
    ----------
    seed:
        RNG seed; experiments pass one so the random baseline is reproducible.
    """

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(coerce_seed(seed))

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Sequence[PeerId],
        k: int,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Pick up to ``k`` distinct peers uniformly at random.

        The joining peer itself and any peer in ``exclude`` are never
        returned.  If fewer than ``k`` candidates exist, all of them are
        returned (shuffled).
        """
        require_positive_int(k, "k")
        excluded = {peer_id}
        if exclude:
            excluded |= set(exclude)
        candidates = [candidate for candidate in population if candidate not in excluded]
        if not candidates:
            raise ConfigurationError(
                f"no candidates available for random selection around peer {peer_id!r}"
            )
        if k >= len(candidates):
            shuffled = list(candidates)
            self._rng.shuffle(shuffled)
            return shuffled
        return self._rng.sample(candidates, k)
