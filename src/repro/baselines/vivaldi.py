"""Vivaldi decentralised network coordinates (Dabek et al., SIGCOMM 2004).

Vivaldi is the coordinate system the paper cites as accurate but *slow to
converge* — a newcomer needs many RTT samples before its coordinate is good
enough to rank peers by proximity.  The reproduction implements the standard
height-vector variant so the convergence benchmark (motivation M1) can show
how many samples Vivaldi needs to match the path-tree scheme's immediate
answer.

The implementation is intentionally faithful to the published algorithm:
each node keeps a Euclidean coordinate plus a height, an error estimate, and
applies the adaptive-timestep update rule on every RTT observation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .._validation import (
    coerce_seed,
    require_positive_float,
    require_positive_int,
    require_probability,
)
from ..exceptions import ConfigurationError

PeerId = Hashable
RttFunction = Callable[[PeerId, PeerId], float]


@dataclass
class VivaldiCoordinate:
    """A Euclidean coordinate with a height component."""

    vector: Tuple[float, ...]
    height: float = 0.0

    def distance_to(self, other: "VivaldiCoordinate") -> float:
        """Predicted RTT between two coordinates (Euclidean part + heights)."""
        euclidean = math.sqrt(
            sum((a - b) ** 2 for a, b in zip(self.vector, other.vector))
        )
        return euclidean + self.height + other.height

    def displaced(self, direction: Sequence[float], magnitude: float, height_delta: float) -> "VivaldiCoordinate":
        """Return a new coordinate moved by ``magnitude`` along ``direction``."""
        new_vector = tuple(a + magnitude * d for a, d in zip(self.vector, direction))
        new_height = max(0.0, self.height + height_delta)
        return VivaldiCoordinate(vector=new_vector, height=new_height)


@dataclass
class VivaldiNode:
    """Per-peer Vivaldi state."""

    peer_id: PeerId
    coordinate: VivaldiCoordinate
    error: float = 1.0
    samples_observed: int = 0


class VivaldiSystem:
    """A population of Vivaldi nodes updated from pairwise RTT observations.

    Parameters
    ----------
    rtt:
        Callable returning the measured RTT (any consistent distance unit)
        between two peers; in the reproduction this is backed by the router
        topology's latency- or hop-distances.
    dimensions:
        Dimensionality of the Euclidean part (the paper-recommended 2 or 3).
    ce, cc:
        The adaptive-timestep constants (error weight and movement weight).
    use_height:
        Whether to use the height-vector variant (recommended).
    """

    name = "vivaldi"

    def __init__(
        self,
        rtt: RttFunction,
        dimensions: int = 2,
        ce: float = 0.25,
        cc: float = 0.25,
        use_height: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        self.rtt = rtt
        self.dimensions = require_positive_int(dimensions, "dimensions")
        self.ce = require_probability(ce, "ce")
        self.cc = require_probability(cc, "cc")
        self.use_height = use_height
        self._rng = random.Random(coerce_seed(seed))
        self.nodes: Dict[PeerId, VivaldiNode] = {}

    # ------------------------------------------------------------------ nodes

    def add_peer(self, peer_id: PeerId) -> VivaldiNode:
        """Add a peer at the origin (with a tiny random offset to break symmetry)."""
        if peer_id in self.nodes:
            return self.nodes[peer_id]
        vector = tuple(self._rng.uniform(-0.01, 0.01) for _ in range(self.dimensions))
        node = VivaldiNode(
            peer_id=peer_id,
            coordinate=VivaldiCoordinate(vector=vector, height=0.0 if not self.use_height else 0.1),
        )
        self.nodes[peer_id] = node
        return node

    def remove_peer(self, peer_id: PeerId) -> None:
        """Forget a departed peer."""
        self.nodes.pop(peer_id, None)

    def peers(self) -> List[PeerId]:
        """All peers currently in the system."""
        return list(self.nodes)

    # ---------------------------------------------------------------- updates

    def observe(self, peer_id: PeerId, other_id: PeerId) -> None:
        """Apply one Vivaldi update at ``peer_id`` using a measurement to ``other_id``."""
        if peer_id == other_id:
            return
        node = self.nodes.get(peer_id)
        other = self.nodes.get(other_id)
        if node is None or other is None:
            raise ConfigurationError("both peers must be added before observing an RTT")

        measured = float(self.rtt(peer_id, other_id))
        predicted = node.coordinate.distance_to(other.coordinate)

        # Relative error of this sample.
        if measured <= 0:
            measured = 1e-6
        sample_error = abs(predicted - measured) / measured

        # Weight of this sample based on the two nodes' confidence.
        total_error = node.error + other.error
        weight = node.error / total_error if total_error > 0 else 0.5

        # Update the local error estimate (exponentially weighted).
        node.error = sample_error * self.ce * weight + node.error * (1.0 - self.ce * weight)
        node.error = min(max(node.error, 0.0), 2.0)

        # Move towards/away from the other coordinate.
        delta = self.cc * weight
        direction = self._unit_vector(node.coordinate, other.coordinate)
        displacement = delta * (measured - predicted)
        height_delta = 0.0
        if self.use_height:
            height_delta = delta * (measured - predicted) * 0.1
        node.coordinate = node.coordinate.displaced(direction, displacement, height_delta)
        node.samples_observed += 1

    def _unit_vector(
        self, origin: VivaldiCoordinate, target: VivaldiCoordinate
    ) -> Tuple[float, ...]:
        """Unit vector from ``target`` towards ``origin`` (push-away direction)."""
        difference = [a - b for a, b in zip(origin.vector, target.vector)]
        norm = math.sqrt(sum(d * d for d in difference))
        if norm < 1e-12:
            # Coincident points: pick a random direction.
            random_direction = [self._rng.gauss(0.0, 1.0) for _ in range(self.dimensions)]
            norm = math.sqrt(sum(d * d for d in random_direction)) or 1.0
            return tuple(d / norm for d in random_direction)
        return tuple(d / norm for d in difference)

    def run_round(self, samples_per_peer: int = 1) -> None:
        """One gossip round: every peer measures ``samples_per_peer`` random others."""
        require_positive_int(samples_per_peer, "samples_per_peer")
        peer_list = self.peers()
        if len(peer_list) < 2:
            return
        for peer_id in peer_list:
            for _ in range(samples_per_peer):
                other_id = peer_id
                while other_id == peer_id:
                    other_id = self._rng.choice(peer_list)
                self.observe(peer_id, other_id)

    def run(self, rounds: int, samples_per_peer: int = 1) -> None:
        """Run ``rounds`` gossip rounds."""
        require_positive_int(rounds, "rounds")
        for _ in range(rounds):
            self.run_round(samples_per_peer=samples_per_peer)

    # ---------------------------------------------------------------- queries

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Predicted RTT between two peers from their coordinates."""
        if peer_a == peer_b:
            return 0.0
        node_a = self.nodes.get(peer_a)
        node_b = self.nodes.get(peer_b)
        if node_a is None or node_b is None:
            raise ConfigurationError("both peers must be in the system to estimate a distance")
        return node_a.coordinate.distance_to(node_b.coordinate)

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Optional[Sequence[PeerId]] = None,
        k: int = 5,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Rank peers by coordinate distance and return the closest ``k``."""
        require_positive_int(k, "k")
        excluded = {peer_id}
        if exclude:
            excluded |= set(exclude)
        candidates = population if population is not None else self.peers()
        ranked = sorted(
            (
                (self.estimate_distance(peer_id, candidate), repr(candidate), candidate)
                for candidate in candidates
                if candidate not in excluded and candidate in self.nodes
            ),
        )
        return [candidate for _, _, candidate in ranked[:k]]

    def mean_error(self) -> float:
        """Average per-node error estimate (a convergence indicator)."""
        if not self.nodes:
            return 0.0
        return sum(node.error for node in self.nodes.values()) / len(self.nodes)

    def total_samples(self) -> int:
        """Total number of RTT observations applied so far."""
        return sum(node.samples_observed for node in self.nodes.values())
