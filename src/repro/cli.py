"""Command-line entry point: ``repro-experiments``.

Examples
--------
List the available experiments::

    repro-experiments --list

Run the quick Figure 1 reproduction and print the table::

    repro-experiments figure1-quick

Run several experiments and save their tables as JSON::

    repro-experiments figure1-quick landmark-count --output results/

Run the discovery perf harness and write ``BENCH_discovery.json``::

    repro-experiments perf
    repro-experiments perf --populations 200 800 --ops 50 --output /tmp/bench.json

Measure the sharded management plane and gate on an earlier report::

    repro-experiments perf --shards 1,4
    repro-experiments perf --compare BENCH_discovery.json

Measure the multi-process shard backend (one worker process per shard),
alone or alongside the inline cells so ``--compare`` can gate the inline
ones against an older baseline while the process cells join as new cells::

    repro-experiments perf --shards 2 --backend process
    repro-experiments perf --shards 2 --backend inline,process --compare BENCH_discovery.json

Measure flash-crowd arrivals at specific co-arriving batch sizes (the
``arrival`` workload runs once per listed size)::

    repro-experiments perf --arrival-batch-sizes 1,64

Sweep the lock-free serving plane's concurrent-clients dimension (the
``serving`` workload runs once per listed reader count, inline cells only)::

    repro-experiments perf --readers 1,2,4

Measure the beaconing discovery protocol over the event sim's lossy wire
(the ``protocol`` workload runs once per listed loss probability,
inline-only; skipped without the flag)::

    repro-experiments perf --protocol-loss 0,0.1,0.3

Measure worker restart+replay with and without journal compaction (the
``recovery`` / ``recovery-compacted`` cells; remote backends only)::

    repro-experiments perf --shards 2 --backend process --recovery-ops 5000

Measure the socket backend (connection-scoped shards behind a loopback
asyncio shard server), or record a complete baseline — classic
single-server cells plus every backend's sharded cells — in one run::

    repro-experiments perf --shards 2 --backend socket
    repro-experiments perf --shards none,2 --backend inline,process,socket

Serve shards to remote coordinators over TCP and/or Unix-domain sockets
(each client connection gets its own shard; stop with Ctrl-C)::

    repro-experiments shard-serve --tcp 0.0.0.0:7421
    repro-experiments shard-serve --unix /tmp/shard.sock --tcp 127.0.0.1:0
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .experiments.runner import available_experiments, run_experiment, save_table


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Run the experiments reproducing 'A Quicker Way to Discover Nearby Peers' "
            "(CoNEXT 2007)."
        ),
        epilog=(
            "Subcommands (as the first argument): 'repro-experiments perf' runs the "
            "discovery perf harness and writes BENCH_discovery.json; "
            "'repro-experiments shard-serve' serves discovery shards over TCP / "
            "Unix-domain sockets. See each subcommand's --help."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names to run (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiments and exit",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory to write result tables (JSON) into",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="print tables as CSV instead of aligned text",
    )
    return parser


def _parse_positive_int_list(value: str, what: str) -> List[int]:
    """Parse a comma-separated list of positive integers (shared validator)."""
    try:
        values = [int(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid {what} list {value!r}")
    if not values:
        raise argparse.ArgumentTypeError(f"at least one {what} is required")
    if any(item < 1 for item in values):
        raise argparse.ArgumentTypeError(f"{what}s must all be >= 1, got {values}")
    return values


def _parse_shard_counts(value: str) -> List[Optional[int]]:
    """Parse the ``--shards`` spec: positive counts and/or ``none``.

    ``none`` is the classic single-server plane, so ``--shards none,2``
    records the unsharded baseline cells and the 2-shard cells in one
    report (remote backends skip the ``none`` entry — their shards only
    exist on a sharded plane).
    """
    parts = [part.strip() for part in value.split(",") if part.strip()]
    if not parts:
        raise argparse.ArgumentTypeError("at least one shard count is required")
    counts: List[Optional[int]] = []
    for part in parts:
        if part.lower() == "none":
            counts.append(None)
            continue
        try:
            count = int(part)
        except ValueError:
            raise argparse.ArgumentTypeError(f"invalid shard count list {value!r}")
        if count < 1:
            raise argparse.ArgumentTypeError(
                f"shard counts must all be >= 1 (or 'none'), got {part!r}"
            )
        counts.append(count)
    return counts


def _parse_batch_sizes(value: str) -> List[int]:
    """Parse the ``--arrival-batch-sizes`` spec: comma-separated sizes."""
    return _parse_positive_int_list(value, "batch size")


def _parse_reader_counts(value: str) -> List[int]:
    """Parse the ``--readers`` spec: comma-separated reader counts."""
    return _parse_positive_int_list(value, "reader count")


def _parse_loss_rates(value: str) -> List[float]:
    """Parse the ``--protocol-loss`` spec: comma-separated probabilities."""
    try:
        rates = [float(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid loss-rate list {value!r}")
    if not rates:
        raise argparse.ArgumentTypeError("at least one loss rate is required")
    if any(not 0.0 <= rate < 1.0 for rate in rates):
        raise argparse.ArgumentTypeError(f"loss rates must be in [0, 1), got {rates}")
    return rates


def _parse_backends(value: str) -> List[str]:
    """Parse the ``--backend`` spec: comma-separated backend names."""
    from .core.remote import BACKENDS

    backends = [part.strip() for part in value.split(",") if part.strip()]
    if not backends:
        raise argparse.ArgumentTypeError("at least one backend is required")
    unknown = [backend for backend in backends if backend not in BACKENDS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"backends must be one of {BACKENDS}, got {unknown}"
        )
    return backends


def build_perf_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``perf`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments perf",
        description=(
            "Measure the discovery hot path (insert / query / departure / churn / "
            "arrival) and the scenario distance-plane build (build) at several "
            "population sizes and write a JSON perf report."
        ),
    )
    parser.add_argument(
        "--populations",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="population sizes to measure (default: 200 800 3200 12800)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=None,
        metavar="COUNT",
        help="operations per workload (default: per-workload; use a small value for smoke runs)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=3,
        help="seed for the synthetic populations (default: 3)",
    )
    parser.add_argument(
        "--neighbor-set-size",
        type=int,
        default=5,
        metavar="K",
        help="neighbour set size k (default: 5)",
    )
    parser.add_argument(
        "--shards",
        type=_parse_shard_counts,
        default=None,
        metavar="N[,N...]",
        help=(
            "run the workloads on a sharded management plane at these shard "
            "counts (e.g. '1,4'); 'none' is the classic single server, so "
            "'none,2' records both in one report; default runs the classic "
            "single server only"
        ),
    )
    parser.add_argument(
        "--backend",
        type=_parse_backends,
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "where sharded cells' shards live: 'inline' (in-process, the "
            "default), 'process' (one worker process per shard), 'socket' "
            "(connection-scoped shards on a loopback asyncio server), or any "
            "comma-separated mix; 'process'/'socket' require --shards"
        ),
    )
    parser.add_argument(
        "--arrival-batch-sizes",
        type=_parse_batch_sizes,
        default=None,
        metavar="N[,N...]",
        help=(
            "co-arriving batch sizes the arrival workload measures (one cell "
            "per size; default: 1,32,256)"
        ),
    )
    parser.add_argument(
        "--readers",
        type=_parse_reader_counts,
        default=None,
        metavar="N[,N...]",
        help=(
            "concurrent reader counts the serving workload sweeps (one cell "
            "per count, inline cells only; default: 1,2,4)"
        ),
    )
    parser.add_argument(
        "--protocol-loss",
        type=_parse_loss_rates,
        default=None,
        metavar="P[,P...]",
        help=(
            "run the beaconing-protocol workload over the event sim's lossy "
            "wire at these loss probabilities (one cell per rate, e.g. "
            "'0,0.1,0.3'; default: skipped)"
        ),
    )
    parser.add_argument(
        "--recovery-ops",
        type=int,
        default=None,
        metavar="COUNT",
        help=(
            "churn cycles the recovery workload journals before measuring "
            "restart+replay (process backend only; default: --ops, else the "
            "workload default)"
        ),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_discovery.json"),
        metavar="FILE",
        help="where to write the JSON report (default: BENCH_discovery.json)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE",
        help=(
            "compare against a previous JSON report and exit non-zero when any "
            "(workload, population, shards) cell regressed beyond the threshold"
        ),
    )
    parser.add_argument(
        "--compare-threshold",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="allowed per-op slowdown before --compare fails (default: 0.25)",
    )
    return parser


def run_perf(argv: Optional[Sequence[str]] = None) -> int:
    """Run the ``perf`` subcommand; returns the process exit code."""
    import json

    from .perf.compare import compare_reports
    from .perf.report import PerfReport
    from .perf.workloads import (
        DEFAULT_ARRIVAL_BATCH_SIZES,
        DEFAULT_POPULATIONS,
        DEFAULT_READER_COUNTS,
        run_discovery_suite,
    )

    parser = build_perf_parser()
    args = parser.parse_args(argv)
    populations = args.populations or list(DEFAULT_POPULATIONS)
    if any(population < 2 for population in populations):
        parser.error(f"--populations must all be >= 2, got {populations}")
    if args.ops is not None and args.ops < 1:
        parser.error(f"--ops must be >= 1, got {args.ops}")
    if args.recovery_ops is not None and args.recovery_ops < 1:
        parser.error(f"--recovery-ops must be >= 1, got {args.recovery_ops}")
    if args.neighbor_set_size < 1:
        parser.error(f"--neighbor-set-size must be >= 1, got {args.neighbor_set_size}")
    if args.compare_threshold < 0:
        parser.error(f"--compare-threshold must be >= 0, got {args.compare_threshold}")
    backends = args.backend or ["inline"]
    remote = [backend for backend in backends if backend in ("process", "socket")]
    if remote and not any(count is not None for count in (args.shards or [])):
        parser.error(
            f"--backend {','.join(remote)} requires --shards with at least one "
            "real count (remote shards only exist on a sharded plane)"
        )

    baseline = None
    if args.compare is not None:
        try:
            baseline = PerfReport.from_dict(json.loads(args.compare.read_text()))
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot read baseline {args.compare}: {error}", file=sys.stderr)
            return 1

    report = run_discovery_suite(
        populations=populations,
        ops=args.ops,
        seed=args.seed,
        neighbor_set_size=args.neighbor_set_size,
        shard_counts=args.shards,
        backends=backends,
        arrival_batch_sizes=args.arrival_batch_sizes or list(DEFAULT_ARRIVAL_BATCH_SIZES),
        recovery_ops=args.recovery_ops,
        reader_counts=args.readers or list(DEFAULT_READER_COUNTS),
        protocol_loss_rates=args.protocol_loss,
    )
    print(report.to_text())
    try:
        path = report.write(args.output)
    except OSError as error:
        print(f"error: cannot write {args.output}: {error}", file=sys.stderr)
        return 1
    print(f"saved {path}", file=sys.stderr)

    if baseline is not None:
        result = compare_reports(baseline, report, threshold=args.compare_threshold)
        print(result.to_text())
        if not result.deltas:
            print(
                f"error: no comparable cells between {args.compare} and this run "
                "(check --populations/--ops/--shards match the baseline)",
                file=sys.stderr,
            )
            return 1
        if not result.ok:
            print(
                f"error: perf regression vs {args.compare} "
                f"({len(result.regressions)} cell(s) beyond {args.compare_threshold:.0%})",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "perf":
        return run_perf(list(argv[1:]))
    if argv and argv[0] == "shard-serve":
        from .core.socket_backend import run_serve

        return run_serve(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in available_experiments():
            print(name)
        return 0

    if not args.experiments:
        parser.print_usage()
        print("error: no experiment given (use --list to see the available ones)", file=sys.stderr)
        return 2

    unknown = [name for name in args.experiments if name not in available_experiments()]
    if unknown:
        print(
            f"error: unknown experiment(s) {unknown}; available: {available_experiments()}",
            file=sys.stderr,
        )
        return 2

    for name in args.experiments:
        table = run_experiment(name)
        if args.csv:
            print(table.to_csv())
        else:
            print(table.to_text())
        print()
        if args.output is not None:
            path = save_table(table, args.output, stem=name)
            print(f"saved {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
