"""Command-line entry point: ``repro-experiments``.

Examples
--------
List the available experiments::

    repro-experiments --list

Run the quick Figure 1 reproduction and print the table::

    repro-experiments figure1-quick

Run several experiments and save their tables as JSON::

    repro-experiments figure1-quick landmark-count --output results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .experiments.runner import available_experiments, run_experiment, save_table


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Run the experiments reproducing 'A Quicker Way to Discover Nearby Peers' "
            "(CoNEXT 2007)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names to run (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiments and exit",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory to write result tables (JSON) into",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="print tables as CSV instead of aligned text",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in available_experiments():
            print(name)
        return 0

    if not args.experiments:
        parser.print_usage()
        print("error: no experiment given (use --list to see the available ones)", file=sys.stderr)
        return 2

    unknown = [name for name in args.experiments if name not in available_experiments()]
    if unknown:
        print(
            f"error: unknown experiment(s) {unknown}; available: {available_experiments()}",
            file=sys.stderr,
        )
        return 2

    for name in args.experiments:
        table = run_experiment(name)
        if args.csv:
            print(table.to_csv())
        else:
            print(table.to_text())
        print()
        if args.output is not None:
            path = save_table(table, args.output, stem=name)
            print(f"saved {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
