"""The paper's primary contribution: landmark path trees + management server.

The pieces fit together as follows:

* a peer records a :class:`~repro.core.path.RouterPath` towards its closest
  landmark (client side: :class:`~repro.core.newcomer.NewcomerClient`);
* the :class:`~repro.core.management_server.ManagementServer` inserts the
  path into the landmark's :class:`~repro.core.path_tree.PathTree` and
  answers with the estimated-closest peers;
* :mod:`~repro.core.distance` provides the tooling to compare the inferred
  ``dtree`` distances against true network distances.
"""

from .path import (
    LandmarkId,
    NodeId,
    PeerId,
    RouterPath,
    shared_suffix_length,
    tree_distance,
)
from .interning import PeerKeyInterner
from .path_tree import PathTree, PathTreeNode
from .management_plane import DegradedResult, PlaneHealth, ShardHealth
from .management_server import ManagementServer, NeighborEntry, ServerStats
from .neighbor_cache import NeighborCache
from .sharded import ConsistentHashRing, ShardBackend, ShardedManagementServer
from .remote import (
    ProcessShardBackend,
    RecoveryPolicy,
    ShardSupervisor,
    process_shard_factory,
    shard_factory_for,
)
from .chaos import ChaosShardBackend, Fault, FaultPlan
from .serving import DiscoverySnapshot, FlatTrie, SnapshotPublisher, SnapshotReader
from .distance import (
    AccuracyReport,
    DistanceEstimator,
    PairAccuracy,
    evaluate_estimator,
    sample_peer_pairs,
    true_hop_distances,
)
from .protocol import (
    JoinRequest,
    JoinResponse,
    JoinTranscript,
    LandmarkDescriptor,
    LeaveNotice,
    NeighborRecommendation,
    NeighborResponse,
    PathReport,
)
from .newcomer import (
    LANDMARK_SELECTION_POLICIES,
    SELECT_CLOSEST_RTT,
    SELECT_FEWEST_HOPS,
    SELECT_FIRST,
    JoinResult,
    NewcomerClient,
    join_population,
)
from .superpeers import (
    PARTITION_CONTIGUOUS,
    PARTITION_POLICIES,
    PARTITION_ROUND_ROBIN,
    SuperPeer,
    SuperPeerDirectory,
    partition_landmarks,
)

__all__ = [
    "LandmarkId",
    "NodeId",
    "PeerId",
    "RouterPath",
    "shared_suffix_length",
    "tree_distance",
    "PathTree",
    "PathTreeNode",
    "PeerKeyInterner",
    "ManagementServer",
    "NeighborCache",
    "NeighborEntry",
    "ServerStats",
    "ConsistentHashRing",
    "ShardBackend",
    "ShardedManagementServer",
    "DegradedResult",
    "PlaneHealth",
    "ShardHealth",
    "ProcessShardBackend",
    "RecoveryPolicy",
    "ShardSupervisor",
    "process_shard_factory",
    "shard_factory_for",
    "ChaosShardBackend",
    "Fault",
    "FaultPlan",
    "DiscoverySnapshot",
    "FlatTrie",
    "SnapshotPublisher",
    "SnapshotReader",
    "AccuracyReport",
    "DistanceEstimator",
    "PairAccuracy",
    "evaluate_estimator",
    "sample_peer_pairs",
    "true_hop_distances",
    "JoinRequest",
    "JoinResponse",
    "JoinTranscript",
    "LandmarkDescriptor",
    "LeaveNotice",
    "NeighborRecommendation",
    "NeighborResponse",
    "PathReport",
    "LANDMARK_SELECTION_POLICIES",
    "SELECT_CLOSEST_RTT",
    "SELECT_FEWEST_HOPS",
    "SELECT_FIRST",
    "JoinResult",
    "NewcomerClient",
    "join_population",
    "PARTITION_CONTIGUOUS",
    "PARTITION_POLICIES",
    "PARTITION_ROUND_ROBIN",
    "SuperPeer",
    "SuperPeerDirectory",
    "partition_landmarks",
]
