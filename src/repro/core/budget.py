"""Single monotonic deadline budgets for multi-phase round trips.

A remote round trip is several blocking phases — probe the channel for
writability, send the frame, wait for the reply header, read the body — and
giving each phase its own full timeout multiplies the worst case: a
slow-draining pipe plus a slow worker used to take up to *2x* the per-op
deadline before failing typed.  A :class:`DeadlineBudget` fixes the bug at
the root: one monotonic deadline is computed when the round trip starts and
**every** phase draws its timeout from the remaining budget, so the whole
round trip is bounded by exactly one ``request_timeout`` no matter how many
phases it has or how the slowness is distributed between them.

The clock is injectable so regression tests can script pathological timing
(phase one consumes 90% of the budget; phase two must only get the rest)
without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["DeadlineBudget"]


class DeadlineBudget:
    """One shared monotonic deadline for every phase of a round trip.

    Parameters
    ----------
    seconds:
        Total budget for the round trip.  Must be non-negative.
    clock:
        Monotonic clock returning seconds; injectable for tests.
    """

    __slots__ = ("seconds", "_clock", "_started", "_deadline")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic) -> None:
        if seconds < 0:
            raise ValueError(f"budget seconds must be >= 0, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock
        self._started = clock()
        self._deadline = self._started + self.seconds

    def remaining(self) -> float:
        """Seconds left in the budget (never negative).

        Pass this as the timeout of the *next* blocking phase: phases that
        start after the deadline get ``0.0`` — a non-blocking probe — so an
        exhausted budget fails typed instead of blocking at all.
        """
        return max(0.0, self._deadline - self._clock())

    def elapsed(self) -> float:
        """Seconds consumed since the budget started."""
        return self._clock() - self._started

    @property
    def expired(self) -> bool:
        """True once the deadline has passed."""
        return self._clock() >= self._deadline

    def __repr__(self) -> str:
        return (
            f"DeadlineBudget(seconds={self.seconds!r}, "
            f"remaining={self.remaining():.6f})"
        )
