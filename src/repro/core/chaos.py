"""Deterministic fault injection for shard backends.

Robustness claims need *scripted* failures: a :class:`FaultPlan` describes
exactly which backend operation fails and how, a :class:`ChaosShardBackend`
wraps any :class:`~repro.core.sharded.ShardBackend` and executes the plan,
and the equivalence oracle in ``tests/core/test_sharded_equivalence.py``
then proves the plane converges byte-identical to the single server
*through* the scripted crash/recover sequence.  Nothing here is random:
faults fire on a per-backend operation counter, so a failing case replays
identically.

Fault kinds
-----------
``crash_before``
    Kill the worker process before forwarding the call — the inner backend
    sees a dead worker and (with a
    :class:`~repro.core.remote.RecoveryPolicy`) self-heals via
    restart+replay+re-issue.  The operation itself is never lost.
``crash_after``
    Forward the call, then kill the worker.  The operation was acknowledged
    (and journaled, if mutating), so recovery replays it — this is the
    "crash between ops" case.
``drop_reply``
    Forward the call, discard its result and raise
    :class:`~repro.exceptions.ShardUnavailableError` instead.  The worker
    *did* apply (and journal) the operation while the caller sees a
    failure — the one fault whose recovery needs caller-level convergence
    (re-register the batch), which is why the byte-identity oracle scripts
    only crash faults and ``drop_reply`` is covered by dedicated tests.
``delay``
    Sleep ``delay_s`` (via the injectable ``sleep``) before forwarding —
    models a slow shard without killing anything.
``error``
    Raise :class:`~repro.exceptions.ShardUnavailableError` without touching
    the worker at all — a pure transport flake; a bare retry would succeed.

Network-shaped fault kinds
--------------------------
The socket transport (:mod:`repro.core.socket_backend`) fails in ways a
pipe cannot, so three kinds target its
``SocketShardSupervisor.sever``/``rewind_generation`` hooks (they raise
typed on a backend whose supervisor lacks the hooks):

``partial_frame``
    Before forwarding, send a frame whose length header promises more
    bytes than follow, then close — the truncated-write corruption the
    length prefix exists to catch.  The forwarded call fails typed and
    (with recovery) heals by reconnect+replay+re-issue.
``conn_reset``
    Before forwarding, close the connection abortively (``SO_LINGER(0)``,
    TCP RST) — the mid-operation connection-reset case.  Same recovery
    story as ``partial_frame``.
``reconnect_stale_epoch``
    Before forwarding, advance the supervisor's expected server generation
    *past* the server's next hello and kill the connection: the first
    recovery reconnect lands on a stale epoch and fails typed, and only
    the attempt after it succeeds — exercising the stale-epoch guard under
    an otherwise-converging plan (``max_restarts`` must be >= 2).

Wire-shaped fault kinds
-----------------------
The event-sim discovery protocol (:mod:`repro.protocol`) and the shard
backends share one *lossy-wire* failure vocabulary, so the same
:class:`FaultPlan` can script both the simulated network (via
:class:`repro.sim.network.NetworkFaultPlan`) and a
:class:`ChaosShardBackend`:

``drop``
    The request/message is lost in transit.  On the sim: the message is
    silently dropped (counted in ``dropped_messages``).  On a backend: the
    call is never forwarded and raises
    :class:`~repro.exceptions.ShardUnavailableError` (the request never
    reached the worker — contrast ``drop_reply``, where it did).
``duplicate``
    At-least-once delivery gone wrong: the message arrives twice.  On the
    sim: the delivery is scheduled twice (independent latency samples).  On
    a backend: the operation is forwarded twice and the first result is
    returned — safe only if the receiver dedups or the op is idempotent,
    which is exactly what it exercises.
``reorder``
    The message is delivered late, *after* the next message to the same
    recipient.  On the sim: delivery is held until the next delivery to
    that recipient completes.  On a backend calls are synchronous, so only
    one-way (``None``-returning) operations can be reordered: the call is
    deferred and executed after the next forwarded operation.  A reorder
    fault therefore requires ``op_name`` (enforced at construction); firing
    it on a value-returning operation raises typed at the call site.
``partition``
    A connectivity window: every matching operation in
    ``[at_op, at_op + window_ops)`` fails.  On the sim: messages in the
    window are dropped.  On a backend: calls in the window raise
    :class:`~repro.exceptions.ShardUnavailableError` without forwarding.
    Requires ``window_ops >= 1`` (enforced at construction).

``delay`` belongs to both vocabularies: on a backend it sleeps
``delay_s`` wall seconds; on the sim it adds ``delay_s * 1000`` simulated
milliseconds to the delivery.

One-time vs persistent
----------------------
A fault fires at the first counted operation ``>= at_op`` (whose name
matches ``op_name``, when given).  One-time faults (default) are consumed
by firing; ``persistent=True`` faults keep firing on every matching
operation from ``at_op`` on.  ``partition`` faults stay live for their
whole window (one-time means one *window*, not one operation);
``persistent=True`` re-opens the window at every matching op from
``at_op`` on, i.e. the partition never heals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ShardUnavailableError
from .path import LandmarkId, NodeId, PeerId, RouterPath
from .path_tree import PathTree

__all__ = [
    "Fault",
    "FaultPlan",
    "ChaosShardBackend",
    "FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "WIRE_FAULT_KINDS",
]

FAULT_KINDS = (
    "crash_before",
    "crash_after",
    "drop_reply",
    "delay",
    "error",
    "partial_frame",
    "conn_reset",
    "reconnect_stale_epoch",
    "drop",
    "duplicate",
    "reorder",
    "partition",
)

#: Kinds that need the socket transport's ``sever``/``rewind_generation``
#: chaos hooks (process-backed shards cannot fail these ways).
NETWORK_FAULT_KINDS = ("partial_frame", "conn_reset", "reconnect_stale_epoch")

#: The lossy-wire vocabulary shared by the event sim
#: (:class:`repro.sim.network.NetworkFaultPlan`) and the shard backends —
#: one :class:`FaultPlan` scripts both planes.
WIRE_FAULT_KINDS = ("drop", "delay", "duplicate", "reorder", "partition")

#: Backend operations with no return value; the only ones a synchronous
#: backend can reorder (the caller never waits on a reply, so delivering
#: the effect late is observable yet well-defined).
_ONE_WAY_OPS = frozenset(
    {"register_landmark", "validate_registrable", "insert_paths", "unregister_peer"}
)


@dataclass(frozen=True)
class Fault:
    """One scripted fault: *what* goes wrong at *which* counted operation.

    Kind/option mismatches are rejected here, at construction — a plan that
    would misfire must fail when it is written, not when it fires:

    * ``delay_s`` is only meaningful for ``kind="delay"`` (and a delay of
      zero would be a no-op, so it must be positive there);
    * ``window_ops`` is only meaningful for ``kind="partition"`` (where it
      is required, ``>= 1``);
    * ``kind="reorder"`` requires ``op_name`` — reordering is only defined
      relative to a named message/operation stream.
    """

    at_op: int
    kind: str
    op_name: Optional[str] = None
    delay_s: float = 0.0
    persistent: bool = False
    window_ops: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.at_op < 1:
            raise ValueError(f"at_op must be >= 1, got {self.at_op}")
        if self.kind == "delay":
            if self.delay_s <= 0.0:
                raise ValueError(
                    f"kind='delay' requires delay_s > 0, got {self.delay_s!r}"
                )
        elif self.delay_s != 0.0:
            raise ValueError(
                f"delay_s is only valid for kind='delay', got delay_s={self.delay_s!r} "
                f"with kind={self.kind!r}"
            )
        if self.kind == "partition":
            if self.window_ops < 1:
                raise ValueError(
                    f"kind='partition' requires window_ops >= 1, got {self.window_ops!r}"
                )
        elif self.window_ops != 0:
            raise ValueError(
                f"window_ops is only valid for kind='partition', got "
                f"window_ops={self.window_ops!r} with kind={self.kind!r}"
            )
        if self.kind == "reorder" and self.op_name is None:
            raise ValueError("kind='reorder' requires op_name (the stream to reorder within)")

    @property
    def window_end(self) -> int:
        """First counted op *past* the fault's active window."""
        if self.kind == "partition":
            return self.at_op + self.window_ops
        return self.at_op + 1


class FaultPlan:
    """A deterministic schedule of :class:`Fault` objects for one backend.

    The plan counts every operation the wrapping :class:`ChaosShardBackend`
    forwards (`ops_seen`) and yields the faults due at each count.  Fired
    faults are recorded in :attr:`fired` as ``(op_count, kind, op_name)``
    so tests can assert the scripted failures actually happened.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._pending: List[Fault] = list(faults)
        self.ops_seen = 0
        self.fired: List[Tuple[int, str, str]] = []

    @property
    def pending(self) -> Tuple[Fault, ...]:
        """Faults that have not fired yet (immutable view)."""
        return tuple(self._pending)

    def faults_for(self, op_name: str) -> List[Fault]:
        """Count one operation and return the faults due for it."""
        self.ops_seen += 1
        due: List[Fault] = []
        kept: List[Fault] = []
        for fault in self._pending:
            name_ok = fault.op_name is None or fault.op_name == op_name
            if fault.kind == "partition":
                # Partitions are positional: the window covers counted ops
                # [at_op, at_op + window_ops), matching or not.
                in_window = self.ops_seen >= fault.at_op and (
                    fault.persistent or self.ops_seen < fault.window_end
                )
            else:
                # Point faults fire at the first *matching* op at or after
                # at_op — an op-name filter can make the exact at_op pass by.
                in_window = self.ops_seen >= fault.at_op
            fired = in_window and name_ok
            if fired:
                due.append(fault)
                self.fired.append((self.ops_seen, fault.kind, op_name))
            if fault.persistent:
                kept.append(fault)
            elif fault.kind == "partition":
                # A partition stays live for its whole window (it fires on
                # *every* matching op inside it) and heals when it closes.
                if self.ops_seen + 1 < fault.window_end:
                    kept.append(fault)
            elif not fired:
                kept.append(fault)
        self._pending = kept
        return due

    def __repr__(self) -> str:
        return (
            f"FaultPlan(pending={len(self._pending)}, fired={len(self.fired)}, "
            f"ops_seen={self.ops_seen})"
        )


class ChaosShardBackend:
    """A :class:`~repro.core.sharded.ShardBackend` that executes a FaultPlan.

    Wraps any backend; crash faults additionally require the inner backend
    to expose ``supervisor.process`` (i.e.
    :class:`~repro.core.remote.ProcessShardBackend`) so there is a real
    worker to kill.  Lifecycle calls (``close``, ``restart``,
    ``health_check``) and attribute access pass through unfaulted — chaos
    targets the data plane, not the harness's cleanup.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._sleep = sleep
        # One-way operations deferred by a ``reorder`` fault, executed (in
        # held order) after the next forwarded operation completes.
        self._reordered: List[Tuple[str, Callable[[], object]]] = []

    @property
    def name(self) -> str:
        return str(getattr(self.inner, "name", "chaos-shard"))

    # ------------------------------------------------------------- injection

    def _kill_worker(self) -> None:
        # Every supervised backend exposes a transport-appropriate abrupt
        # kill (process: SIGKILL the worker; socket: sever the connection),
        # so crash faults work on any transport.  The legacy process-handle
        # path is kept for inner backends that predate the generic hook.
        supervisor = getattr(self.inner, "supervisor", None)
        kill = getattr(supervisor, "kill", None)
        if callable(kill):
            kill()
            return
        process = getattr(supervisor, "process", None)
        if process is None:
            raise ShardUnavailableError(
                self.name, "chaos: crash fault needs a supervised shard backend"
            )
        if process.is_alive():
            process.kill()
            process.join()

    def _sever(self, mode: str) -> None:
        supervisor = getattr(self.inner, "supervisor", None)
        sever = getattr(supervisor, "sever", None)
        if not callable(sever):
            raise ShardUnavailableError(
                self.name, f"chaos: {mode!r} fault needs a socket-backed shard"
            )
        sever(mode)

    def _rewind_generation(self) -> None:
        supervisor = getattr(self.inner, "supervisor", None)
        rewind = getattr(supervisor, "rewind_generation", None)
        if not callable(rewind):
            raise ShardUnavailableError(
                self.name, "chaos: stale-epoch fault needs a socket-backed shard"
            )
        rewind()

    def _call(self, op_name: str, func, *args, **kwargs):
        faults = self.plan.faults_for(op_name)
        duplicated = False
        for fault in faults:
            if fault.kind == "delay":
                self._sleep(fault.delay_s)
            elif fault.kind == "crash_before":
                self._kill_worker()
            elif fault.kind == "partial_frame":
                self._sever("partial_frame")
            elif fault.kind == "conn_reset":
                self._sever("reset")
            elif fault.kind == "reconnect_stale_epoch":
                self._rewind_generation()
                self._sever("close")
            elif fault.kind == "error":
                raise ShardUnavailableError(
                    self.name, f"chaos: scripted error at op {self.plan.ops_seen}"
                )
            elif fault.kind in ("drop", "partition"):
                raise ShardUnavailableError(
                    self.name,
                    f"chaos: {fault.kind} — request {op_name!r} lost at op "
                    f"{self.plan.ops_seen}",
                )
            elif fault.kind == "duplicate":
                duplicated = True
            elif fault.kind == "reorder":
                if op_name not in _ONE_WAY_OPS:
                    raise ShardUnavailableError(
                        self.name,
                        f"chaos: reorder targets one-way ops {sorted(_ONE_WAY_OPS)}, "
                        f"not {op_name!r}",
                    )
                self._reordered.append((op_name, lambda: func(*args, **kwargs)))
                return None
        result = func(*args, **kwargs)
        if duplicated:
            # The wire delivered the same request twice: apply it again and
            # keep the first result (both applications must agree for
            # idempotent/deduplicated receivers, which is what this probes).
            func(*args, **kwargs)
        self._flush_reordered()
        for fault in faults:
            if fault.kind == "crash_after":
                self._kill_worker()
            elif fault.kind == "drop_reply":
                raise ShardUnavailableError(
                    self.name,
                    f"chaos: reply to {op_name!r} dropped at op {self.plan.ops_seen}",
                )
        return result

    def _flush_reordered(self) -> None:
        """Deliver reorder-held one-way operations (late arrivals)."""
        while self._reordered:
            _name, thunk = self._reordered.pop(0)
            thunk()

    # ---------------------------------------------------------- shard surface

    def register_landmark(self, landmark_id: LandmarkId, router: NodeId) -> None:
        return self._call("register_landmark", self.inner.register_landmark, landmark_id, router)

    def validate_registrable(self, path: RouterPath) -> None:
        return self._call("validate_registrable", self.inner.validate_registrable, path)

    def first_rejected_path(
        self, paths: Sequence[RouterPath]
    ) -> Optional[Tuple[int, BaseException]]:
        return self._call("first_rejected_path", self.inner.first_rejected_path, paths)

    def insert_paths(self, paths: Sequence[RouterPath], validate: bool = True) -> None:
        return self._call("insert_paths", self.inner.insert_paths, paths, validate=validate)

    def unregister_peer(self, peer_id: PeerId) -> None:
        return self._call("unregister_peer", self.inner.unregister_peer, peer_id)

    def local_closest(self, peer_id: PeerId, k: int) -> List[Tuple[PeerId, float]]:
        return self._call("local_closest", self.inner.local_closest, peer_id, k)

    def fill_candidates(
        self,
        bases: Mapping[LandmarkId, float],
        exclude_peer: Optional[PeerId] = None,
    ) -> Iterator[Tuple[float, str, PeerId]]:
        # The fault applies to creating the stream (the backend-level op);
        # per-chunk wire traffic below it is the inner backend's business.
        return self._call(
            "fill_candidates", self.inner.fill_candidates, bases, exclude_peer=exclude_peer
        )

    def tree(self, landmark_id: LandmarkId) -> PathTree:
        return self._call("tree", self.inner.tree, landmark_id)

    def tree_distance(self, landmark_id: LandmarkId, peer_a: PeerId, peer_b: PeerId) -> float:
        return self._call("tree_distance", self.inner.tree_distance, landmark_id, peer_a, peer_b)

    def total_tree_visits(self) -> int:
        return self._call("total_tree_visits", self.inner.total_tree_visits)

    def total_insert_work(self) -> Tuple[int, int]:
        return self._call("total_insert_work", self.inner.total_insert_work)

    # -------------------------------------------------------------- lifecycle

    def health_check(self, timeout: float = 5.0) -> bool:
        return bool(self.inner.health_check(timeout=timeout))

    def restart(self) -> None:
        self.inner.restart()

    def close(self) -> None:
        # Reordered means late, not lost: deliver held one-way ops before
        # the backend goes away.
        self._flush_reordered()
        self.inner.close()

    def __enter__(self) -> "ChaosShardBackend":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __getattr__(self, attribute: str):
        # Diagnostics (supervisor, worker_stats, ...) reach the inner
        # backend directly; only the explicit methods above are faulted.
        return getattr(self.inner, attribute)

    def __repr__(self) -> str:
        return f"ChaosShardBackend(inner={self.inner!r}, plan={self.plan!r})"
