"""Typed wire codec shared by the remote shard backend and state snapshots.

Extracted from :mod:`repro.core.remote` so that
:class:`~repro.core.management_server.ManagementServer` can serialise its
own state (``snapshot_state`` / ``restore_state``) with the very same
tagged-tuple path encoding the wire protocol uses, without importing the
transport layer (which imports the server back — the codec sits below
both).

Frames
------
A message is one **length-prefixed frame**::

    frame   = header body
    header  = !I big-endian byte length of body
    body    = serialised message tuple

The header is redundant with the pipe's own message boundaries on purpose:
a frame whose declared length disagrees with its byte count means the
channel is corrupt (truncated write, desynchronised reply), and the client
turns it into a typed error instead of a pickle traceback.

Paths
-----
:class:`~repro.core.path.RouterPath` crosses every serialisation boundary
(wire requests, journals, state snapshots) as a tagged plain-data tuple, so
the formats are independent of repro class layout and a crash mid-write can
never surface as a half-unpickled domain object.
"""

from __future__ import annotations

import pickle
import struct
from typing import Sequence, Tuple

from ..exceptions import WireProtocolError
from .path import RouterPath

__all__ = ["decode_frame", "decode_path", "encode_frame", "encode_path"]

_HEADER = struct.Struct("!I")

_PATH_TAG = "path"


def encode_path(path: RouterPath) -> Tuple[object, ...]:
    """Flatten a :class:`RouterPath` into a tagged plain-data tuple."""
    return (_PATH_TAG, path.peer_id, path.landmark_id, tuple(path.routers), path.rtt_ms)


def decode_path(data: Sequence[object]) -> RouterPath:
    """Rebuild a :class:`RouterPath` from :func:`encode_path` output."""
    if len(data) != 5 or data[0] != _PATH_TAG:
        raise WireProtocolError(f"malformed path frame: {data!r}")
    _, peer_id, landmark_id, routers, rtt_ms = data
    return RouterPath(
        peer_id=peer_id,
        landmark_id=landmark_id,
        routers=tuple(routers),  # type: ignore[arg-type]
        rtt_ms=rtt_ms,  # type: ignore[arg-type]
    )


def encode_frame(message: Tuple[object, ...]) -> bytes:
    """Serialise one message tuple into a length-prefixed frame."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(body)) + body


def decode_frame(frame: bytes) -> Tuple[object, ...]:
    """Parse one frame; raise :class:`WireProtocolError` on any inconsistency."""
    if len(frame) < _HEADER.size:
        raise WireProtocolError(f"frame shorter than its header: {len(frame)} bytes")
    (declared,) = _HEADER.unpack_from(frame)
    if declared != len(frame) - _HEADER.size:
        raise WireProtocolError(
            f"frame declares {declared} body bytes but carries {len(frame) - _HEADER.size}"
        )
    message = pickle.loads(frame[_HEADER.size :])
    if not isinstance(message, tuple) or len(message) < 2:
        raise WireProtocolError(f"malformed message: {message!r}")
    return message
