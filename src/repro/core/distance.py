"""Comparing inferred tree distances against true network distances.

The paper's correctness argument is statistical: because most shortest paths
traverse the high-centrality core, the route inferred through the landmark
tree (``dtree``) is usually equal — or very close — to the true shortest-path
distance ``d``.  This module provides the estimator interface the rest of the
library consumes and the accuracy report used by the C3 benchmark
(`benchmarks/test_bench_tree_accuracy.py`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

from .._validation import coerce_seed, require_positive_int
from ..exceptions import MetricError
from ..routing.shortest_path import AllPairsHopDistances
from ..topology.graph import Graph
from .path import PeerId


class DistanceEstimator(Protocol):
    """Anything that can estimate the network distance between two peers.

    Implemented by the management server (tree distance), the Vivaldi and GNP
    baselines (coordinate distance) and the oracle (true distance), so the
    evaluation code can treat them uniformly.
    """

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Return the estimated distance between two peers."""
        ...


@dataclass
class PairAccuracy:
    """Accuracy record for one peer pair."""

    peer_a: PeerId
    peer_b: PeerId
    true_distance: float
    estimated_distance: float

    @property
    def absolute_error(self) -> float:
        """``|estimate - true|``."""
        return abs(self.estimated_distance - self.true_distance)

    @property
    def stretch(self) -> float:
        """``estimate / true`` (1.0 means exact; > 1 means over-estimate)."""
        if self.true_distance == 0:
            return 1.0 if self.estimated_distance == 0 else float("inf")
        return self.estimated_distance / self.true_distance


@dataclass
class AccuracyReport:
    """Aggregate accuracy of an estimator over a set of peer pairs."""

    pairs: int
    exact_fraction: float
    mean_absolute_error: float
    median_absolute_error: float
    mean_stretch: float
    p90_stretch: float
    max_absolute_error: float

    @classmethod
    def from_records(cls, records: Sequence[PairAccuracy]) -> "AccuracyReport":
        """Build the aggregate report from per-pair records."""
        if not records:
            raise MetricError("cannot build an accuracy report from zero pairs")
        errors = sorted(record.absolute_error for record in records)
        stretches = sorted(record.stretch for record in records)
        count = len(records)
        exact = sum(1 for record in records if record.absolute_error == 0)
        return cls(
            pairs=count,
            exact_fraction=exact / count,
            mean_absolute_error=sum(errors) / count,
            median_absolute_error=errors[count // 2],
            mean_stretch=sum(stretches) / count,
            p90_stretch=stretches[min(count - 1, int(count * 0.9))],
            max_absolute_error=errors[-1],
        )


def evaluate_estimator(
    estimator: DistanceEstimator,
    true_distances: Dict[Tuple[PeerId, PeerId], float],
) -> AccuracyReport:
    """Compare an estimator against a dict of true pairwise distances."""
    records = [
        PairAccuracy(
            peer_a=peer_a,
            peer_b=peer_b,
            true_distance=true,
            estimated_distance=float(estimator.estimate_distance(peer_a, peer_b)),
        )
        for (peer_a, peer_b), true in true_distances.items()
    ]
    return AccuracyReport.from_records(records)


def sample_peer_pairs(
    peers: Sequence[PeerId],
    samples: int,
    seed: Optional[int] = None,
) -> List[Tuple[PeerId, PeerId]]:
    """Sample ``samples`` distinct unordered peer pairs (without replacement if possible)."""
    require_positive_int(samples, "samples")
    if len(peers) < 2:
        raise MetricError("need at least two peers to sample pairs")
    rng = random.Random(coerce_seed(seed))
    pool = list(peers)
    count = len(pool)
    seen = set()
    pairs: List[Tuple[PeerId, PeerId]] = []
    max_pairs = count * (count - 1) // 2
    target = min(samples, max_pairs)
    attempts = 0
    # Rejection sampling over index pairs: the pool is materialised once, and
    # drawing two distinct indices (rather than two members) keeps the retry
    # loop from spinning when the input contains long duplicate-id streaks.
    while len(pairs) < target and attempts < 50 * target + 100:
        attempts += 1
        first = rng.randrange(count)
        second = rng.randrange(count - 1)
        if second >= first:
            second += 1
        peer_a, peer_b = pool[first], pool[second]
        if peer_a == peer_b:  # duplicate ids at distinct indices
            continue
        key = (peer_a, peer_b) if repr(peer_a) <= repr(peer_b) else (peer_b, peer_a)
        if key in seen:
            continue
        seen.add(key)
        pairs.append(key)
    return pairs


def true_hop_distances(
    graph: Graph,
    attachment: Dict[PeerId, Hashable],
    pairs: Sequence[Tuple[PeerId, PeerId]],
    oracle: Optional[AllPairsHopDistances] = None,
    host_hops: int = 1,
) -> Dict[Tuple[PeerId, PeerId], float]:
    """True hop distances between peers attached to routers of ``graph``.

    ``attachment`` maps each peer to its access router.  ``host_hops`` extra
    hops are charged per endpoint for the host-to-router link (1 by default,
    matching how ``dtree`` counts); peers on the same router are therefore at
    distance ``2 * host_hops``.
    """
    oracle = oracle or AllPairsHopDistances(graph)
    result: Dict[Tuple[PeerId, PeerId], float] = {}
    for peer_a, peer_b in pairs:
        router_a = attachment[peer_a]
        router_b = attachment[peer_b]
        router_distance = 0 if router_a == router_b else oracle.distance(router_a, router_b)
        result[(peer_a, peer_b)] = float(router_distance + 2 * host_hops)
    return result
