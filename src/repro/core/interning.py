"""Interned peer sort keys shared across one management plane.

Every total ordering on the discovery hot path tie-breaks on the textual
form of the peer identifier — ``closest_peers`` result order, the cached
neighbour lists' bisect keys, the per-landmark min-hop orderings, and the
cross-landmark candidate streams all sort by ``(measure, repr(peer_id))``.
Before this module each comparison recomputed ``repr(peer_id)`` on the fly:
per candidate in the query sort, per bisect probe in
``propagate_newcomer``, per insert in the min-hop orderings.

A :class:`PeerKeyInterner` computes the key **once per peer** and hands the
same immutable ``(sort_text, compact_index)`` tuple to every consumer:

* ``sort_text`` is exactly ``repr(peer_id)`` — the orderings produced from
  interned keys are byte-identical to the historic repr-based orderings,
  which is what keeps the sharded/process equivalence oracles green;
* ``compact_index`` is a dense, monotonically increasing integer assigned
  at first sight, usable as an always-comparable final tie-break or as an
  index into array-backed bookkeeping (peers whose reprs collide still get
  distinct indexes).

One interner is owned by each management plane (single server, sharded
coordinator, shard worker) and shared by its :class:`~repro.core.path_tree.
PathTree` instances and its :class:`~repro.core.neighbor_cache.
NeighborCache`, so a peer is interned exactly once per plane, at
registration time.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .path import PeerId

__all__ = ["PeerKeyInterner"]


class PeerKeyInterner:
    """Process-local table of precomputed peer sort keys (see module doc).

    The table is bounded by the **live** population, not by cumulative
    arrivals: planes :meth:`discard` a peer's key on departure, so an
    open-world churn workload (every join a fresh identifier) does not grow
    the table without bound.  A peer that re-registers after departing is
    simply re-interned — same sort text, a fresh compact index (indexes come
    from a monotonic counter and are never reused).
    """

    __slots__ = ("_keys", "_next_index")

    def __init__(self) -> None:
        self._keys: Dict[PeerId, Tuple[str, int]] = {}
        self._next_index = 0

    def key(self, peer_id: PeerId) -> Tuple[str, int]:
        """The peer's ``(sort_text, compact_index)``, interning on first use."""
        key = self._keys.get(peer_id)
        if key is None:
            key = (repr(peer_id), self._next_index)
            self._next_index += 1
            self._keys[peer_id] = key
        return key

    def discard(self, peer_id: PeerId) -> None:
        """Forget a departed peer's key (keeps the table ~ live population).

        Safe to call for never-interned peers.  Keys already embedded in
        live orderings (cached-list entries, min-hop tuples) stay valid —
        they hold their own reference to the sort text.
        """
        self._keys.pop(peer_id, None)

    def export_state(self) -> Tuple[Tuple[Tuple[PeerId, str, int], ...], int]:
        """Plain-data ``(assignments, next_index)`` for state snapshots.

        ``assignments`` is ``(peer_id, sort_text, compact_index)`` per live
        peer, in interning order.  Restoring through :meth:`import_state`
        preserves every compact index *and* the monotonic counter, so
        array-backed structures keyed by compact indices (the serving-plane
        snapshots) stay valid across a snapshot/restore cycle — re-interning
        from scratch would silently renumber peers after any churn.
        """
        assignments = tuple(
            (peer_id, text, index) for peer_id, (text, index) in self._keys.items()
        )
        return (assignments, self._next_index)

    def import_state(self, state: Tuple[object, object]) -> None:
        """Replace the table with an :meth:`export_state` payload."""
        assignments, next_index = state
        self._keys = {
            peer_id: (str(text), int(index))
            for peer_id, text, index in assignments  # type: ignore[union-attr]
        }
        self._next_index = int(next_index)  # type: ignore[call-overload]

    def sort_text(self, peer_id: PeerId) -> str:
        """The peer's interned textual sort key (``repr(peer_id)``)."""
        return self.key(peer_id)[0]

    def index(self, peer_id: PeerId) -> int:
        """The peer's dense compact index (assigned at first sight)."""
        return self.key(peer_id)[1]

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._keys

    def __repr__(self) -> str:
        return f"PeerKeyInterner(peers={len(self._keys)})"
