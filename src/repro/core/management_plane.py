"""Shared peer-facing logic of the management plane.

:class:`ManagementPlaneBase` holds everything that must behave *identically*
on the single :class:`~repro.core.management_server.ManagementServer` and on
the sharded coordinator
(:class:`~repro.core.sharded.ShardedManagementServer`): the registration
skeleton, the cache-hit/refill policy of ``closest_peers``, the distance
estimator, the landmark-distance map and the peer read accessors.  Keeping
one copy makes the sharded plane's byte-identical-results guarantee hold *by
construction* for these paths — only the data-plane hooks below differ per
plane.

Subclass contract
-----------------
``__init__`` must set ``neighbor_set_size``, ``maintain_cache``, ``stats``,
``_cache`` (a :class:`~repro.core.neighbor_cache.NeighborCache`),
``_peer_landmark``, ``_paths``, ``_landmark_routers`` and
``_landmark_distances``; the subclass implements the data-plane hooks
``_validate_path``, ``_insert_path``, ``_compute_neighbors``,
``unregister_peer`` and ``tree``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..exceptions import LandmarkError, ShardUnavailableError, UnknownPeerError
from .neighbor_cache import NeighborCache, NeighborEntry
from .path import LandmarkId, NodeId, PeerId, RouterPath
from .path_tree import PathTree

__all__ = [
    "DegradedResult",
    "ManagementPlaneBase",
    "PlaneHealth",
    "ServerStats",
    "ShardHealth",
]


@dataclass
class ServerStats:
    """Operation counters, used by the complexity benchmarks and perf harness."""

    registrations: int = 0
    removals: int = 0
    queries: int = 0
    cache_hits: int = 0
    tree_queries: int = 0
    cache_updates: int = 0
    cache_refills: int = 0
    departure_updates: int = 0
    degraded_queries: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        for spec in fields(self):
            setattr(self, spec.name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counter values keyed by name (for perf reports)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


class DegradedResult(List[Tuple[PeerId, float]]):
    """A ``closest_peers`` answer served while part of the plane was down.

    Behaves exactly like the normal ``[(peer_id, distance), ...]`` list
    (equality and iteration compare content only), but is typed so callers
    that care can detect — ``isinstance(result, DegradedResult)`` — that the
    answer was assembled from the coordinator's cache and the *healthy*
    shards while ``shard`` was unavailable, and may therefore be missing
    candidates that only the failed shard knew.  Degraded answers are never
    written back to the cache.
    """

    __slots__ = ("shard", "reason")

    def __init__(
        self,
        pairs: Iterable[Tuple[PeerId, float]] = (),
        *,
        shard: object = None,
        reason: str = "",
    ) -> None:
        super().__init__(pairs)
        self.shard = shard
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"DegradedResult({list(self)!r}, shard={self.shard!r}, reason={self.reason!r})"


@dataclass(frozen=True)
class ShardHealth:
    """Liveness of one shard, as reported by :meth:`ManagementPlaneBase.health`."""

    index: int
    name: str
    alive: bool


@dataclass(frozen=True)
class PlaneHealth:
    """Plane-level health summary: per-shard liveness + degradation counter."""

    shards: Tuple[ShardHealth, ...]
    degraded_queries: int

    @property
    def healthy(self) -> bool:
        """True when every shard (if any) is alive."""
        return all(shard.alive for shard in self.shards)


class ManagementPlaneBase:
    """Plane-independent half of the management-server API (see module doc)."""

    neighbor_set_size: int
    maintain_cache: bool
    stats: ServerStats
    _cache: NeighborCache
    _peer_landmark: Dict[PeerId, LandmarkId]
    _paths: Dict[PeerId, RouterPath]
    _landmark_routers: Dict[LandmarkId, NodeId]
    _landmark_distances: Dict[Tuple[LandmarkId, LandmarkId], float]

    # -------------------------------------------------------- data-plane hooks

    def _validate_path(self, path: RouterPath) -> None:
        """Raise if ``path`` cannot be inserted (plane-specific routing)."""
        raise NotImplementedError

    def _insert_path(self, path: RouterPath) -> None:
        """Insert one validated path into the plane's trees and indexes."""
        raise NotImplementedError

    def _compute_neighbors(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Tree-walk computation of a peer's closest peers (plus fill)."""
        raise NotImplementedError

    def _compute_neighbors_batch(
        self, pending: Dict[PeerId, RouterPath]
    ) -> Dict[PeerId, List[Tuple[PeerId, float]]]:
        """Neighbour lists for a whole co-arriving batch (default: per peer).

        Planes that can exploit batch structure override this — the single
        server groups co-arriving peers by attachment trie node and runs one
        shared frontier per cluster (see ``ManagementServer``).  Whatever the
        strategy, the returned lists must be byte-identical to calling
        :meth:`_compute_neighbors` per peer: the batch is only allowed to
        change *work*, never results.
        """
        return {peer_id: self._compute_neighbors(peer_id) for peer_id in pending}

    def unregister_peer(self, peer_id: PeerId) -> None:
        """Remove a departing peer from the plane."""
        raise NotImplementedError

    def tree(self, landmark_id: LandmarkId) -> PathTree:
        """The path tree of one landmark."""
        raise NotImplementedError

    def _degraded_neighbors(
        self, peer_id: PeerId, k: int, error: ShardUnavailableError
    ) -> Optional["DegradedResult"]:
        """Best-effort answer when :meth:`_compute_neighbors` lost a shard.

        Returns ``None`` to decline (the original
        :class:`~repro.exceptions.ShardUnavailableError` is re-raised) — the
        default for planes with no partial data sources.  The sharded
        coordinator overrides this to assemble an answer from its neighbour
        cache and the healthy shards' fill streams.  Only the
        ``closest_peers`` read path consults this hook: mutations must stay
        typed and atomic, never silently partial.
        """
        return None

    def health(self) -> "PlaneHealth":
        """Liveness summary of the plane (per-shard for sharded planes).

        A plane without independent failure domains reports no shards and is
        trivially healthy; the sharded coordinator reports one
        :class:`ShardHealth` per shard backend.
        """
        return PlaneHealth(shards=(), degraded_queries=self.stats.degraded_queries)

    def _same_landmark_distance(
        self, landmark_id: LandmarkId, peer_a: PeerId, peer_b: PeerId
    ) -> float:
        """``dtree`` between two peers under one landmark (plane-specific).

        The default asks the local tree; the sharded coordinator routes to
        the landmark's shard instead, so a remote backend answers with one
        scalar round trip rather than shipping a whole tree snapshot.
        """
        return float(self.tree(landmark_id).tree_distance(peer_a, peer_b))

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release plane-owned resources (worker processes, pipes).

        A no-op for purely in-process planes; the sharded coordinator closes
        its shard backends.  Always safe to call more than once, so callers
        can ``finally: server.close()`` regardless of the backend in use.
        """

    def __enter__(self) -> "ManagementPlaneBase":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- cache views

    @property
    def _neighbor_cache(self) -> Dict[PeerId, List[NeighborEntry]]:
        """The cached neighbour lists (owned by :class:`NeighborCache`)."""
        return self._cache.lists

    @property
    def _referenced_by(self) -> Dict[PeerId, Set[PeerId]]:
        """The reverse neighbour index (owned by :class:`NeighborCache`)."""
        return self._cache.referenced_by

    # -------------------------------------------------------------- landmarks

    def landmark_router(self, landmark_id: LandmarkId) -> NodeId:
        """Router a landmark is attached to."""
        if landmark_id not in self._landmark_routers:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._landmark_routers[landmark_id]

    def set_landmark_distance(self, a: LandmarkId, b: LandmarkId, distance: float) -> None:
        """Record the (symmetric) distance between two landmarks.

        A new inter-landmark distance can make foreign-tree peers reachable,
        so it invalidates the cache's short-list completeness marks (see
        :meth:`NeighborCache.note_membership_change`).
        """
        if distance < 0:
            raise LandmarkError(f"landmark distance must be >= 0, got {distance}")
        self._landmark_distances[(a, b)] = float(distance)
        self._landmark_distances[(b, a)] = float(distance)
        self._cache.note_membership_change()

    def landmark_distance(self, a: LandmarkId, b: LandmarkId) -> Optional[float]:
        """Distance between two landmarks, or None if unknown."""
        if a == b:
            return 0.0
        return self._landmark_distances.get((a, b))

    # ------------------------------------------------------------------ peers

    @property
    def peer_count(self) -> int:
        """Number of currently registered peers."""
        return len(self._peer_landmark)

    def peers(self) -> List[PeerId]:
        """Identifiers of all registered peers (registration order)."""
        return list(self._peer_landmark)

    def has_peer(self, peer_id: PeerId) -> bool:
        """True if the peer is registered."""
        return peer_id in self._peer_landmark

    def peer_path(self, peer_id: PeerId) -> RouterPath:
        """The path a peer registered with."""
        if peer_id not in self._paths:
            raise UnknownPeerError(peer_id)
        return self._paths[peer_id]

    def peer_landmark(self, peer_id: PeerId) -> LandmarkId:
        """The landmark a peer registered under."""
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        return self._peer_landmark[peer_id]

    def neighbor_list(self, peer_id: PeerId) -> List[Tuple[PeerId, float]]:
        """The peer's cached neighbour list as ``(peer_id, distance)`` pairs.

        A pure read of the cache — no tree walk, no refill: a registered
        peer without a stored list (cache disabled, or eroded away) yields
        ``[]``.  This is the accessor the serving-plane snapshot mirrors
        byte-identically, so it is the cheapest "who does the plane think is
        near me right now" view on both the live planes and the snapshots.
        """
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        entries = self._cache.get(peer_id) or []
        return [(entry.peer_id, entry.distance) for entry in entries]

    def referencing_peers(self, peer_id: PeerId) -> Set[PeerId]:
        """Peers whose cached neighbour list currently contains ``peer_id``.

        Exposed for churn diagnostics and tests; the returned set is a copy.
        """
        return self._cache.referencing(peer_id)

    # -------------------------------------------------------------- register

    def register_peer(self, path: RouterPath) -> List[Tuple[PeerId, float]]:
        """Round 2 of the join protocol: insert the path, return closest peers.

        Returns the newcomer's neighbour list (up to ``neighbor_set_size``
        entries of ``(peer_id, estimated_distance)``), which is also what the
        plane caches for subsequent O(1) queries.
        """
        self._validate_path(path)
        if path.peer_id in self._peer_landmark:
            self.unregister_peer(path.peer_id)
        self._insert_path(path)

        neighbors = self._compute_neighbors(path.peer_id)
        if self.maintain_cache:
            self._cache.store(
                path.peer_id, neighbors, complete=len(neighbors) < self.neighbor_set_size
            )
            self._cache.propagate_newcomer(path.peer_id, neighbors)
        return neighbors

    def _neighbor_phase(
        self, pending: Dict[PeerId, RouterPath]
    ) -> Dict[PeerId, List[Tuple[PeerId, float]]]:
        """Phase 2 of a batch arrival: neighbour lists + cache propagation.

        Runs after every batch path has landed in the trees, so each
        newcomer's list (and each propagated update) already sees the whole
        batch.  The lists are computed first — in one
        :meth:`_compute_neighbors_batch` call, so a plane can share work
        across the batch; the trees are static during the phase, so batching
        the computation cannot change any list — and then stored/propagated
        in input order, exactly like sequential arrivals would.
        """
        results = self._compute_neighbors_batch(pending)
        if self.maintain_cache:
            for peer_id in pending:
                neighbors = results[peer_id]
                self._cache.store(
                    peer_id, neighbors, complete=len(neighbors) < self.neighbor_set_size
                )
                self._cache.propagate_newcomer(peer_id, neighbors)
        return results

    def _fill_bases(
        self, landmarks: Iterable[LandmarkId], home_landmark: LandmarkId, own_hops: int
    ) -> Dict[LandmarkId, float]:
        """Detour-estimate bases for a cross-landmark fill over ``landmarks``.

        One shared implementation for both planes: the base of each foreign
        landmark with a known distance to the querying peer's home landmark
        is ``own_hops + d(home, other)``.  Both the single server and the
        sharded coordinator feed these bases to ``fill_candidates``, so the
        fill order is identical by construction.
        """
        bases: Dict[LandmarkId, float] = {}
        for other_landmark in landmarks:
            if other_landmark == home_landmark:
                continue
            between = self.landmark_distance(home_landmark, other_landmark)
            if between is None:
                continue
            bases[other_landmark] = float(own_hops + between)
        return bases

    # ---------------------------------------------------------------- queries

    def closest_peers(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Return up to ``k`` closest peers for a registered peer.

        With the cache enabled and ``k <= neighbor_set_size`` this is a single
        dictionary access (plus slicing); otherwise the landmark trees are
        queried directly, lazily refilling the cache.

        A cached list is served when it holds enough entries for ``k`` (or
        for the whole population), **or** when it is marked complete — it
        was computed from an exhaustive walk that returned every reachable
        candidate and no membership change has happened since.  Without the
        completeness mark, a peer whose list is legitimately short
        (unreachable foreign-landmark peers, no landmark distances) would
        miss the cache forever and pay a tree walk per query.
        """
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        k = k or self.neighbor_set_size
        self.stats.queries += 1
        if self.maintain_cache and k <= self.neighbor_set_size:
            entries = self._cache.get(peer_id) or []
            if len(entries) >= min(k, self.peer_count - 1) or self._cache.is_complete(peer_id):
                self.stats.cache_hits += 1
                return [(entry.peer_id, entry.distance) for entry in entries[:k]]
        try:
            neighbors = self._compute_neighbors(peer_id, k=k)
        except ShardUnavailableError as error:
            # Reads may degrade while a shard is mid-recovery: the hook
            # assembles a best-effort answer from partial sources, tagged as
            # DegradedResult and never cached.  Planes without partial
            # sources (and mutations, always) keep the typed failure.
            degraded = self._degraded_neighbors(peer_id, k, error)
            if degraded is None:
                raise
            self.stats.degraded_queries += 1
            return degraded
        if self.maintain_cache and k >= self.neighbor_set_size:
            self._cache.store(
                peer_id,
                neighbors[: self.neighbor_set_size],
                complete=len(neighbors) < self.neighbor_set_size,
            )
            self.stats.cache_refills += 1
        return neighbors

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Estimated hop distance between two registered peers.

        Implements the :class:`~repro.core.distance.DistanceEstimator`
        protocol: same-landmark pairs use the tree distance, cross-landmark
        pairs use the landmark-detour estimate (requires landmark distances),
        and unknown cross-landmark distances raise :class:`LandmarkError`.
        """
        if peer_a == peer_b:
            return 0.0
        landmark_a = self.peer_landmark(peer_a)
        landmark_b = self.peer_landmark(peer_b)
        if landmark_a == landmark_b:
            return self._same_landmark_distance(landmark_a, peer_a, peer_b)
        between = self.landmark_distance(landmark_a, landmark_b)
        if between is None:
            raise LandmarkError(
                f"no inter-landmark distance between {landmark_a!r} and {landmark_b!r}"
            )
        return float(self._paths[peer_a].hop_count + between + self._paths[peer_b].hop_count)
