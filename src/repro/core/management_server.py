"""The management server: registers peer paths, answers closest-peer queries.

This is the paper's central component.  It maintains one
:class:`~repro.core.path_tree.PathTree` per landmark, plus (optionally) a
per-peer **cached neighbour list** so that answering a closest-peer query is
a single hash-table access — the O(1) lookup the paper claims — while each
newcomer insertion only touches the peers close to the newcomer and performs
ordered-list insertions into their cached lists — the O(log n) insertion the
paper claims.

Hot-path complexity guarantees
------------------------------
With ``n`` registered peers, ``k = neighbor_set_size``, ``d`` the network
diameter (path length, ~15–30 hops) and ``b`` the trie branching factor:

* **Insertion** (:meth:`ManagementServer.register_peer`): O(d) trie insert +
  a count-guided tree query (O(k + d·b), see below) + at most ``k``
  ordered-list insertions of O(log k) each — the paper's O(log n) claim.
  (When cross-landmark fills are in use, maintaining the per-landmark
  min-hop ordering adds one sorted-list insert; the ordering is built
  lazily, so single-landmark deployments never pay it.)
* **Query** (:meth:`ManagementServer.closest_peers`): one dictionary access
  when the cache is warm — O(1).  A cache miss falls back to the tree query:
  a best-first walk over the landmark trie guided by ``subtree_peer_count``
  that visits O(k + d·b) nodes instead of scanning whole sibling subtrees.
* **Departure** (:meth:`ManagementServer.unregister_peer`): O(d) trie removal
  + O(r) cached-list repairs where ``r`` is the number of lists that actually
  reference the departed peer (bounded by the reverse neighbour index, not by
  ``n``).  Lists that run dry are refilled lazily from the tree on their next
  query.
* **Batch arrival** (:meth:`ManagementServer.register_peers`): inserts all
  paths first, then computes neighbour lists and propagates cache updates in
  one pass, so co-arriving peers see each other immediately.

Cross-landmark estimates
------------------------
Peers registered under different landmarks share no path, so their tree
distance is undefined.  When inter-landmark distances are provided (the
landmarks can measure them once, offline), the server falls back to::

    d_cross(p1, p2) = hops(p1 -> landmark(p1)) + d(landmark(p1), landmark(p2))
                      + hops(landmark(p2) -> p2)

which is an upper bound on the true distance.  Cross-landmark candidates are
only used to fill a neighbour list when the peer's own tree cannot provide
``k`` candidates; the server keeps a per-landmark min-hop ordering of its
peers so that filling the last one or two slots is a bounded merge, not a
scan over every foreign-tree peer.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, fields
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from .._validation import require_positive_int
from ..exceptions import LandmarkError, RegistrationError, UnknownPeerError
from .path import LandmarkId, NodeId, PeerId, RouterPath
from .path_tree import PathTree


@dataclass
class ServerStats:
    """Operation counters, used by the complexity benchmarks and perf harness."""

    registrations: int = 0
    removals: int = 0
    queries: int = 0
    cache_hits: int = 0
    tree_queries: int = 0
    cache_updates: int = 0
    cache_refills: int = 0
    departure_updates: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        for spec in fields(self):
            setattr(self, spec.name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counter values keyed by name (for perf reports)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


@dataclass
class NeighborEntry:
    """One entry of a cached neighbour list."""

    distance: float
    peer_id: PeerId

    def as_tuple(self) -> Tuple[float, str, PeerId]:
        """Sort key: distance first, then a stable textual tiebreak."""
        return (self.distance, repr(self.peer_id), self.peer_id)


class ManagementServer:
    """Central server implementing the paper's two-round discovery scheme.

    Parameters
    ----------
    neighbor_set_size:
        Number of neighbours (``k``) returned to a newcomer and kept in each
        peer's cached list.
    maintain_cache:
        Keep per-peer neighbour lists up to date on every registration so
        queries are O(1).  Disabling it makes every query walk the tree
        (useful for the complexity ablation).
    landmark_distances:
        Optional ``{(landmark_a, landmark_b): hop_distance}`` map (symmetric
        entries are filled in automatically) enabling cross-landmark
        estimates.
    """

    def __init__(
        self,
        neighbor_set_size: int = 5,
        maintain_cache: bool = True,
        landmark_distances: Optional[Dict[Tuple[LandmarkId, LandmarkId], float]] = None,
    ) -> None:
        self.neighbor_set_size = require_positive_int(neighbor_set_size, "neighbor_set_size")
        self.maintain_cache = maintain_cache
        self._trees: Dict[LandmarkId, PathTree] = {}
        self._landmark_routers: Dict[LandmarkId, NodeId] = {}
        self._peer_landmark: Dict[PeerId, LandmarkId] = {}
        self._paths: Dict[PeerId, RouterPath] = {}
        self._neighbor_cache: Dict[PeerId, List[NeighborEntry]] = {}
        # Reverse neighbour index: peer -> peers whose cached list contains
        # it.  Kept exactly in sync with _neighbor_cache so a departure only
        # touches the lists that actually reference the departed peer.
        self._referenced_by: Dict[PeerId, Set[PeerId]] = {}
        # Per-landmark (hop_count, repr(peer), peer) orderings, kept sorted so
        # cross-landmark fills can merge the few best candidates lazily.
        # Built on first use per landmark and maintained incrementally after
        # that, so purely single-landmark workloads never pay for it.
        self._peers_by_hops: Dict[LandmarkId, List[Tuple[int, str, PeerId]]] = {}
        self._landmark_distances: Dict[Tuple[LandmarkId, LandmarkId], float] = {}
        if landmark_distances:
            for (a, b), distance in landmark_distances.items():
                self.set_landmark_distance(a, b, distance)
        self.stats = ServerStats()

    # -------------------------------------------------------------- landmarks

    def register_landmark(self, landmark_id: LandmarkId, router: NodeId) -> None:
        """Declare a landmark and the router it is attached to."""
        if landmark_id in self._trees:
            raise LandmarkError(f"landmark {landmark_id!r} is already registered")
        self._landmark_routers[landmark_id] = router
        self._trees[landmark_id] = PathTree(landmark_id=landmark_id, landmark_router=router)

    def landmarks(self) -> List[LandmarkId]:
        """Identifiers of all registered landmarks."""
        return list(self._trees)

    def landmark_router(self, landmark_id: LandmarkId) -> NodeId:
        """Router a landmark is attached to."""
        if landmark_id not in self._landmark_routers:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._landmark_routers[landmark_id]

    def tree(self, landmark_id: LandmarkId) -> PathTree:
        """The path tree of one landmark."""
        if landmark_id not in self._trees:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._trees[landmark_id]

    def set_landmark_distance(self, a: LandmarkId, b: LandmarkId, distance: float) -> None:
        """Record the (symmetric) distance between two landmarks."""
        if distance < 0:
            raise LandmarkError(f"landmark distance must be >= 0, got {distance}")
        self._landmark_distances[(a, b)] = float(distance)
        self._landmark_distances[(b, a)] = float(distance)

    def landmark_distance(self, a: LandmarkId, b: LandmarkId) -> Optional[float]:
        """Distance between two landmarks, or None if unknown."""
        if a == b:
            return 0.0
        return self._landmark_distances.get((a, b))

    # ------------------------------------------------------------------ peers

    @property
    def peer_count(self) -> int:
        """Number of currently registered peers."""
        return len(self._peer_landmark)

    def peers(self) -> List[PeerId]:
        """Identifiers of all registered peers."""
        return list(self._peer_landmark)

    def has_peer(self, peer_id: PeerId) -> bool:
        """True if the peer is registered."""
        return peer_id in self._peer_landmark

    def peer_path(self, peer_id: PeerId) -> RouterPath:
        """The path a peer registered with."""
        if peer_id not in self._paths:
            raise UnknownPeerError(peer_id)
        return self._paths[peer_id]

    def peer_landmark(self, peer_id: PeerId) -> LandmarkId:
        """The landmark a peer registered under."""
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        return self._peer_landmark[peer_id]

    def referencing_peers(self, peer_id: PeerId) -> Set[PeerId]:
        """Peers whose cached neighbour list currently contains ``peer_id``.

        Exposed for churn diagnostics and tests; the returned set is a copy.
        """
        return set(self._referenced_by.get(peer_id, ()))

    # -------------------------------------------------------------- register

    def register_peer(self, path: RouterPath) -> List[Tuple[PeerId, float]]:
        """Round 2 of the join protocol: insert the path, return closest peers.

        Returns the newcomer's neighbour list (up to ``neighbor_set_size``
        entries of ``(peer_id, estimated_distance)``), which is also what the
        server caches for subsequent O(1) queries.
        """
        self._require_registrable(path)
        if path.peer_id in self._peer_landmark:
            self.unregister_peer(path.peer_id)
        self._insert_path(path)

        neighbors = self._compute_neighbors(path.peer_id)
        if self.maintain_cache:
            self._cache_store(path.peer_id, neighbors)
            self._propagate_newcomer(path.peer_id, neighbors)
        return neighbors

    def register_peers(
        self, paths: Sequence[RouterPath]
    ) -> Dict[PeerId, List[Tuple[PeerId, float]]]:
        """Batch arrival: insert every path first, then update caches once.

        This is the entry point churn and arrival workloads should use for
        co-arriving peers: all paths land in the landmark trees before any
        neighbour list is computed, so every newcomer's list (and every
        propagated cache update) already sees the whole batch instead of only
        the peers that happened to register earlier.

        Returns ``{peer_id: neighbour list}`` in input order (a peer repeated
        in the batch keeps its last path).
        """
        for path in paths:
            self._require_registrable(path)

        pending: Dict[PeerId, RouterPath] = {}
        for path in paths:
            if path.peer_id in self._peer_landmark:
                self.unregister_peer(path.peer_id)
            self._insert_path(path)
            pending[path.peer_id] = path

        results: Dict[PeerId, List[Tuple[PeerId, float]]] = {}
        for peer_id in pending:
            neighbors = self._compute_neighbors(peer_id)
            results[peer_id] = neighbors
            if self.maintain_cache:
                self._cache_store(peer_id, neighbors)
                self._propagate_newcomer(peer_id, neighbors)
        return results

    def unregister_peer(self, peer_id: PeerId) -> None:
        """Remove a departing peer from its tree and from the cached lists.

        The reverse neighbour index pinpoints the (at most ``r``) lists that
        reference the departed peer, so the cost is O(r·k), not O(n): no
        other cached list is touched.  A list that runs dry is refilled from
        the tree on its owner's next query.
        """
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        landmark_id = self._peer_landmark.pop(peer_id)
        path = self._paths.pop(peer_id)
        self._trees[landmark_id].remove(peer_id)
        self._hops_discard(landmark_id, path)
        self.stats.removals += 1
        if not self.maintain_cache:
            return

        own_entries = self._neighbor_cache.pop(peer_id, None)
        if own_entries:
            for entry in own_entries:
                self._reverse_discard(entry.peer_id, peer_id)
        for referrer in self._referenced_by.pop(peer_id, ()):
            entries = self._neighbor_cache.get(referrer)
            if entries is None:
                continue
            entries[:] = [entry for entry in entries if entry.peer_id != peer_id]
            self.stats.departure_updates += 1

    # ---------------------------------------------------------------- queries

    def closest_peers(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Return up to ``k`` closest peers for a registered peer.

        With the cache enabled and ``k <= neighbor_set_size`` this is a single
        dictionary access (plus slicing); otherwise the landmark tree is
        queried directly.
        """
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        k = k or self.neighbor_set_size
        self.stats.queries += 1
        if self.maintain_cache and k <= self.neighbor_set_size:
            entries = self._neighbor_cache.get(peer_id, [])
            if len(entries) >= min(k, self.peer_count - 1):
                self.stats.cache_hits += 1
                return [(entry.peer_id, entry.distance) for entry in entries[:k]]
        neighbors = self._compute_neighbors(peer_id, k=k)
        if self.maintain_cache and k >= self.neighbor_set_size:
            self._cache_store(peer_id, neighbors[: self.neighbor_set_size])
            self.stats.cache_refills += 1
        return neighbors

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Estimated hop distance between two registered peers.

        Implements the :class:`~repro.core.distance.DistanceEstimator`
        protocol: same-landmark pairs use the tree distance, cross-landmark
        pairs use the landmark-detour estimate (requires landmark distances),
        and unknown cross-landmark distances raise :class:`LandmarkError`.
        """
        if peer_a == peer_b:
            return 0.0
        landmark_a = self.peer_landmark(peer_a)
        landmark_b = self.peer_landmark(peer_b)
        if landmark_a == landmark_b:
            return float(self._trees[landmark_a].tree_distance(peer_a, peer_b))
        between = self.landmark_distance(landmark_a, landmark_b)
        if between is None:
            raise LandmarkError(
                f"no inter-landmark distance between {landmark_a!r} and {landmark_b!r}"
            )
        return float(self._paths[peer_a].hop_count + between + self._paths[peer_b].hop_count)

    # -------------------------------------------------------------- internals

    def _require_registrable(self, path: RouterPath) -> None:
        """Raise if ``path`` cannot be inserted (unknown landmark / wrong root).

        Checks everything :meth:`PathTree.insert` would reject, so a batch
        can validate all paths up front and then insert without partial
        failure.
        """
        if path.landmark_id not in self._trees:
            raise RegistrationError(
                f"peer {path.peer_id!r} reported a path to unknown landmark "
                f"{path.landmark_id!r}"
            )
        root = self._trees[path.landmark_id].root
        landmark_side = path.from_landmark()[0]
        if root is not None and root.router != landmark_side:
            raise RegistrationError(
                f"path of peer {path.peer_id!r} ends at router {landmark_side!r}, "
                f"but the tree of landmark {path.landmark_id!r} is rooted at "
                f"{root.router!r}"
            )

    def _insert_path(self, path: RouterPath) -> None:
        """Insert one validated path into the tree and the server indexes."""
        self._trees[path.landmark_id].insert(path)
        self._peer_landmark[path.peer_id] = path.landmark_id
        self._paths[path.peer_id] = path
        ordering = self._peers_by_hops.get(path.landmark_id)
        if ordering is not None:
            bisect.insort(ordering, (path.hop_count, repr(path.peer_id), path.peer_id))
        self.stats.registrations += 1

    def _hops_ordering(self, landmark_id: LandmarkId) -> List[Tuple[int, str, PeerId]]:
        """The landmark's min-hop peer ordering, built on first use."""
        ordering = self._peers_by_hops.get(landmark_id)
        if ordering is None:
            ordering = sorted(
                (self._paths[peer].hop_count, repr(peer), peer)
                for peer in self._trees[landmark_id].peers()
            )
            self._peers_by_hops[landmark_id] = ordering
        return ordering

    def _hops_discard(self, landmark_id: LandmarkId, path: RouterPath) -> None:
        """Drop a departed peer from the per-landmark min-hop ordering."""
        ordering = self._peers_by_hops.get(landmark_id)
        if not ordering:
            return
        key = (path.hop_count, repr(path.peer_id))
        index = bisect.bisect_left(ordering, key)
        while index < len(ordering) and ordering[index][:2] == key:
            if ordering[index][2] == path.peer_id:
                del ordering[index]
                return
            index += 1

    def _reverse_discard(self, target: PeerId, referrer: PeerId) -> None:
        """Remove one ``referrer -> target`` edge from the reverse index."""
        refs = self._referenced_by.get(target)
        if refs is None:
            return
        refs.discard(referrer)
        if not refs:
            del self._referenced_by[target]

    def _cache_store(self, peer_id: PeerId, pairs: Sequence[Tuple[PeerId, float]]) -> None:
        """Replace a peer's cached list, keeping the reverse index in sync."""
        old_entries = self._neighbor_cache.get(peer_id)
        if old_entries:
            for entry in old_entries:
                self._reverse_discard(entry.peer_id, peer_id)
        entries = [NeighborEntry(distance=distance, peer_id=peer) for peer, distance in pairs]
        self._neighbor_cache[peer_id] = entries
        for entry in entries:
            self._referenced_by.setdefault(entry.peer_id, set()).add(peer_id)

    def _cross_landmark_candidates(
        self, peer_id: PeerId, landmark_id: LandmarkId, own_hops: int
    ) -> Iterator[Tuple[float, str, PeerId]]:
        """Foreign-tree candidates in non-decreasing estimate order (lazy).

        One sorted stream per foreign landmark (its min-hop ordering shifted
        by the constant ``own_hops + landmark distance``), merged lazily so a
        consumer that only needs one or two fill candidates stops early.
        """
        def shifted(
            ordering: List[Tuple[int, str, PeerId]], base: float
        ) -> Iterator[Tuple[float, str, PeerId]]:
            for hops, text, peer in ordering:
                if peer != peer_id:
                    yield (base + hops, text, peer)

        streams = []
        for other_landmark in self._trees:
            if other_landmark == landmark_id:
                continue
            between = self.landmark_distance(landmark_id, other_landmark)
            if between is None:
                continue
            base = float(own_hops + between)
            streams.append(shifted(self._hops_ordering(other_landmark), base))
        return heapq.merge(*streams)

    def _compute_neighbors(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Tree-walk computation of a peer's closest peers (plus cross-landmark fill)."""
        k = k or self.neighbor_set_size
        landmark_id = self._peer_landmark[peer_id]
        tree = self._trees[landmark_id]
        self.stats.tree_queries += 1
        same_landmark = tree.closest_peers(peer_id, k)
        neighbors: List[Tuple[PeerId, float]] = [
            (peer, float(distance)) for peer, distance in same_landmark
        ]
        if len(neighbors) >= k:
            return neighbors[:k]

        # Not enough peers under this landmark: fill with cross-landmark
        # estimates if inter-landmark distances are known.  The per-landmark
        # min-hop orderings are merged lazily, so only as many foreign
        # candidates as needed are ever examined.
        own_hops = self._paths[peer_id].hop_count
        already = {peer for peer, _ in neighbors}
        for estimate, _, other_peer in self._cross_landmark_candidates(
            peer_id, landmark_id, own_hops
        ):
            if len(neighbors) >= k:
                break
            if other_peer in already:
                continue
            neighbors.append((other_peer, estimate))
            already.add(other_peer)
        return neighbors

    def _propagate_newcomer(
        self, newcomer: PeerId, newcomer_neighbors: Sequence[Tuple[PeerId, float]]
    ) -> None:
        """Insert the newcomer into nearby peers' cached lists (ordered insert).

        Only the peers that appear in the newcomer's own neighbour list (and
        their current list members' bound) can possibly gain the newcomer as
        a better neighbour, so the update cost is bounded by
        ``neighbor_set_size`` ordered-list insertions — the O(log n)
        "ordered list" cost the paper refers to.  Each insertion bisects on
        the entries' ``(distance, repr(peer))`` keys directly.
        """
        for peer, distance in newcomer_neighbors:
            entries = self._neighbor_cache.get(peer)
            if entries is None:
                continue
            if any(entry.peer_id == newcomer for entry in entries):
                continue
            if len(entries) >= self.neighbor_set_size and distance >= entries[-1].distance:
                continue
            new_entry = NeighborEntry(distance=distance, peer_id=newcomer)
            index = bisect.bisect_left(entries, new_entry.as_tuple(), key=NeighborEntry.as_tuple)
            entries.insert(index, new_entry)
            for evicted in entries[self.neighbor_set_size :]:
                self._reverse_discard(evicted.peer_id, peer)
            del entries[self.neighbor_set_size :]
            self._referenced_by.setdefault(newcomer, set()).add(peer)
            self.stats.cache_updates += 1

    def __repr__(self) -> str:
        return (
            f"ManagementServer(peers={self.peer_count}, landmarks={len(self._trees)}, "
            f"k={self.neighbor_set_size}, cache={'on' if self.maintain_cache else 'off'})"
        )
