"""The management server: registers peer paths, answers closest-peer queries.

This is the paper's central component.  It maintains one
:class:`~repro.core.path_tree.PathTree` per landmark, plus (optionally) a
per-peer **cached neighbour list** so that answering a closest-peer query is
a single hash-table access — the O(1) lookup the paper claims — while each
newcomer insertion only touches the peers close to the newcomer and performs
ordered-list insertions into their cached lists — the O(log n) insertion the
paper claims.

Hot-path complexity guarantees
------------------------------
With ``n`` registered peers, ``k = neighbor_set_size``, ``d`` the network
diameter (path length, ~15–30 hops) and ``b`` the trie branching factor:

* **Insertion** (``register_peer``): O(d) trie insert + a count-guided tree
  query (O(k + d·b), see below) + at most ``k`` ordered-list insertions of
  O(log k) each — the paper's O(log n) claim.  (When cross-landmark fills
  are in use, maintaining the per-landmark min-hop ordering adds one
  sorted-list insert; the ordering is built lazily, so single-landmark
  deployments never pay it.)  Every comparison on this path uses the
  plane's interned sort keys (:mod:`repro.core.interning`): ``repr`` runs
  once per peer at registration, never per candidate or per bisect probe.
* **Query** (``closest_peers``): one dictionary access when the cache is
  warm — O(1).  Legitimately short lists (fewer reachable candidates than
  ``k``) stay warm via the cache's completeness marks until the next
  membership change.  A cache miss falls back to the tree query: a
  best-first walk over the landmark trie guided by ``subtree_peer_count``
  that visits O(k + d·b) nodes instead of scanning whole sibling subtrees.
* **Departure** (:meth:`ManagementServer.unregister_peer`): O(d) trie removal
  + O(r) cached-list repairs where ``r`` is the number of lists that actually
  reference the departed peer (bounded by the reverse neighbour index, not by
  ``n``).  Lists that run dry are refilled lazily from the tree on their next
  query.
* **Batch arrival** (:meth:`ManagementServer.register_peers`): inserts all
  paths first, then computes neighbour lists and propagates cache updates in
  one pass, so co-arriving peers see each other immediately.  The
  neighbour phase groups co-arriving peers by attachment trie node and
  runs **one shared frontier walk per cluster** (peers at the same access
  router see identical candidate streams modulo self-exclusion), so a
  batch of ``m`` peers spread over ``c`` distinct access routers pays
  O(c) tree walks, not O(m).

Measured on the synthetic three-level hierarchy at 12 800 peers
(``BENCH_discovery.json``): insert 480 → 63 µs/op (7.6x) and churn
129 → 96 µs/op against the recorded baseline, with every other cell flat
or faster; batch arrivals amortise further with co-location (the
``arrival`` workload's batch-size dimension — a 256-peer flash-crowd
wave runs ~27% fewer tree walks than the same stream arriving one by
one).

The peer-facing half of the API (registration skeleton, cache policy,
distance estimator, read accessors) lives in
:class:`~repro.core.management_plane.ManagementPlaneBase`, and the cached
lists plus the reverse neighbour index in
:class:`~repro.core.neighbor_cache.NeighborCache` — both shared with the
sharded coordinator (:class:`~repro.core.sharded.ShardedManagementServer`)
so the two planes behave identically by construction.

Shard-facing interface
----------------------
A :class:`ManagementServer` can also serve as one **shard** of the sharded
management plane.  The coordinator drives it through a small data-plane
surface (see :class:`~repro.core.sharded.ShardBackend`):

* :meth:`validate_registrable` / :meth:`insert_paths` /
  :meth:`unregister_peer` — landmark-tree membership, no neighbour-list work;
* :meth:`local_closest` — the count-guided query over the peer's own
  landmark tree;
* :meth:`fill_candidates` — this shard's lazily merged candidate stream over
  its per-landmark min-hop orderings, the inter-shard half of the
  cross-landmark fill protocol.

Cross-landmark estimates
------------------------
Peers registered under different landmarks share no path, so their tree
distance is undefined.  When inter-landmark distances are provided (the
landmarks can measure them once, offline), the server falls back to::

    d_cross(p1, p2) = hops(p1 -> landmark(p1)) + d(landmark(p1), landmark(p2))
                      + hops(landmark(p2) -> p2)

which is an upper bound on the true distance.  Cross-landmark candidates are
only used to fill a neighbour list when the peer's own tree cannot provide
``k`` candidates; the server keeps a per-landmark min-hop ordering of its
peers so that filling the last one or two slots is a bounded merge, not a
scan over every foreign-tree peer.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .._validation import require_positive_int
from ..exceptions import (
    LandmarkError,
    RegistrationError,
    ReproError,
    StateSnapshotError,
    UnknownPeerError,
)
from .codec import decode_path, encode_path
from .interning import PeerKeyInterner
from .management_plane import ManagementPlaneBase, ServerStats
from .neighbor_cache import NeighborCache, NeighborEntry
from .path import LandmarkId, NodeId, PeerId, RouterPath
from .path_tree import PathTree

__all__ = ["ManagementServer", "NeighborEntry", "ServerStats", "STATE_SNAPSHOT_VERSION"]

#: Tag and version of the plain-data state snapshot produced by
#: :meth:`ManagementServer.snapshot_state`.  Bump the version whenever the
#: snapshot layout changes; :meth:`restore_state` refuses other versions.
_STATE_TAG = "repro-state"
#: Version history:
#:   1 — landmarks, paths, distances, cache (no interner: restoring re-interned
#:       peers in path order, silently renumbering compact indices after churn).
#:   2 — adds the interner's ``(peer_id, sort_text, compact_index)`` table and
#:       ``next_index``, so compact indices survive snapshot→restore verbatim.
STATE_SNAPSHOT_VERSION = 2


class ManagementServer(ManagementPlaneBase):
    """Central server implementing the paper's two-round discovery scheme.

    Parameters
    ----------
    neighbor_set_size:
        Number of neighbours (``k``) returned to a newcomer and kept in each
        peer's cached list.
    maintain_cache:
        Keep per-peer neighbour lists up to date on every registration so
        queries are O(1).  Disabling it makes every query walk the tree
        (useful for the complexity ablation, and for shard backends whose
        coordinator owns the cache).
    landmark_distances:
        Optional ``{(landmark_a, landmark_b): hop_distance}`` map (symmetric
        entries are filled in automatically) enabling cross-landmark
        estimates.
    """

    def __init__(
        self,
        neighbor_set_size: int = 5,
        maintain_cache: bool = True,
        landmark_distances: Optional[Dict[Tuple[LandmarkId, LandmarkId], float]] = None,
    ) -> None:
        self.neighbor_set_size = require_positive_int(neighbor_set_size, "neighbor_set_size")
        self.maintain_cache = maintain_cache
        self._trees: Dict[LandmarkId, PathTree] = {}
        self._landmark_routers: Dict[LandmarkId, NodeId] = {}
        self._peer_landmark: Dict[PeerId, LandmarkId] = {}
        self._paths: Dict[PeerId, RouterPath] = {}
        self.stats = ServerStats()
        # One interner per plane: every ordering this server produces (query
        # sorts, cached-list bisects, min-hop orderings, fill streams) shares
        # the same precomputed (sort_text, compact_index) keys.
        self._interner = PeerKeyInterner()
        self._cache = NeighborCache(self.neighbor_set_size, self.stats, self._interner)
        # Per-landmark (hop_count, sort_text, peer) orderings, kept sorted so
        # cross-landmark fills can merge the few best candidates lazily.
        # Built on first use per landmark and maintained incrementally after
        # that, so purely single-landmark workloads never pay for it.
        self._peers_by_hops: Dict[LandmarkId, List[Tuple[int, str, PeerId]]] = {}
        self._landmark_distances: Dict[Tuple[LandmarkId, LandmarkId], float] = {}
        if landmark_distances:
            for (a, b), distance in landmark_distances.items():
                self.set_landmark_distance(a, b, distance)

    # -------------------------------------------------------------- landmarks

    def register_landmark(self, landmark_id: LandmarkId, router: NodeId) -> None:
        """Declare a landmark and the router it is attached to."""
        if landmark_id in self._trees:
            raise LandmarkError(f"landmark {landmark_id!r} is already registered")
        self._landmark_routers[landmark_id] = router
        self._trees[landmark_id] = PathTree(
            landmark_id=landmark_id, landmark_router=router, interner=self._interner
        )

    def landmarks(self) -> List[LandmarkId]:
        """Identifiers of all registered landmarks."""
        return list(self._trees)

    def tree(self, landmark_id: LandmarkId) -> PathTree:
        """The path tree of one landmark."""
        if landmark_id not in self._trees:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._trees[landmark_id]

    def tree_distance(self, landmark_id: LandmarkId, peer_a: PeerId, peer_b: PeerId) -> float:
        """``dtree`` between two peers of one landmark tree (shard-facing).

        One scalar answer, so the sharded coordinator's distance estimator
        costs a remote backend one small round trip instead of a tree
        snapshot.
        """
        return float(self.tree(landmark_id).tree_distance(peer_a, peer_b))

    def total_tree_visits(self) -> int:
        """Trie nodes visited by closest-peer queries, summed over all trees.

        Part of the shard-facing surface so the perf harness can read the
        algorithmic-work counter with one cheap call per plane instead of
        shipping whole tree snapshots across a process boundary.
        """
        return sum(tree.total_query_visits for tree in self._trees.values())

    def total_insert_work(self) -> Tuple[int, int]:
        """``(nodes_created, nodes_touched)`` summed over all trees' inserts.

        The insert-side twin of :meth:`total_tree_visits`: one cheap call
        returns the trie-node allocation/traversal counters so perf records
        can assert the O(path length) registration bound, on any backend.
        """
        created = 0
        touched = 0
        for tree in self._trees.values():
            created += tree.total_insert_nodes_created
            touched += tree.total_insert_nodes_touched
        return (created, touched)

    # -------------------------------------------------------------- register

    def register_peers(
        self, paths: Sequence[RouterPath]
    ) -> Dict[PeerId, List[Tuple[PeerId, float]]]:
        """Batch arrival: insert every path first, then update caches once.

        This is the entry point churn and arrival workloads should use for
        co-arriving peers: all paths land in the landmark trees before any
        neighbour list is computed, so every newcomer's list (and every
        propagated cache update) already sees the whole batch instead of only
        the peers that happened to register earlier.

        Returns ``{peer_id: neighbour list}`` in input order (a peer repeated
        in the batch keeps its last path).
        """
        self.insert_paths(paths)
        pending: Dict[PeerId, RouterPath] = {}
        for path in paths:
            pending[path.peer_id] = path
        return self._neighbor_phase(pending)

    def unregister_peer(self, peer_id: PeerId) -> None:
        """Remove a departing peer from its tree and from the cached lists.

        The reverse neighbour index pinpoints the (at most ``r``) lists that
        reference the departed peer, so the cost is O(r·k), not O(n): no
        other cached list is touched.  A list that runs dry is refilled from
        the tree on its owner's next query.
        """
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        landmark_id = self._peer_landmark.pop(peer_id)
        path = self._paths.pop(peer_id)
        self._trees[landmark_id].remove(peer_id)
        self._hops_discard(landmark_id, path)
        self._interner.discard(peer_id)
        self.stats.removals += 1
        if not self.maintain_cache:
            return
        self._cache.drop_peer(peer_id)

    # ------------------------------------------------- shard-facing interface

    def validate_registrable(self, path: RouterPath) -> None:
        """Raise if ``path`` cannot be inserted (unknown landmark / wrong root).

        Checks everything :meth:`PathTree.insert` would reject, so a batch
        can validate all paths up front and then insert without partial
        failure.
        """
        if path.landmark_id not in self._trees:
            raise RegistrationError(
                f"peer {path.peer_id!r} reported a path to unknown landmark "
                f"{path.landmark_id!r}"
            )
        root = self._trees[path.landmark_id].root
        landmark_side = path.from_landmark()[0]
        if root is not None and root.router != landmark_side:
            raise RegistrationError(
                f"path of peer {path.peer_id!r} ends at router {landmark_side!r}, "
                f"but the tree of landmark {path.landmark_id!r} is rooted at "
                f"{root.router!r}"
            )

    def first_rejected_path(
        self, paths: Sequence[RouterPath]
    ) -> Optional[Tuple[int, BaseException]]:
        """Index and error of the first path :meth:`insert_paths` would reject.

        The batch half of validation on the shard interface: one call (one
        round trip on a remote backend) validates a whole shard's slice of a
        co-arriving batch, and the coordinator merges the per-shard results
        by input index — so the error a sharded batch surfaces is exactly
        the single server's first-invalid-path-in-input-order error.
        Validation is read-only; returns ``None`` when every path is
        registrable.
        """
        for index, path in enumerate(paths):
            try:
                self.validate_registrable(path)
            except ReproError as error:
                return (index, error)
        return None

    def insert_paths(self, paths: Sequence[RouterPath], validate: bool = True) -> None:
        """Raw batch insert: landmark trees and indexes only, no neighbour work.

        This is the arrival half of the shard interface: the coordinator owns
        the neighbour cache, so a shard only validates every path up front
        (no partial failure) and lands them in its trees.  A peer already
        present on this shard is replaced.  A coordinator that has already
        validated the batch passes ``validate=False`` to skip the re-check.
        """
        if validate:
            for path in paths:
                self.validate_registrable(path)
        for path in paths:
            if path.peer_id in self._peer_landmark:
                self.unregister_peer(path.peer_id)
            self._insert_path(path)

    def local_closest(self, peer_id: PeerId, k: int) -> List[Tuple[PeerId, float]]:
        """Closest peers from the peer's own landmark tree (no cross fill).

        The count-guided best-first tree walk, exposed so the sharded
        coordinator can query a peer's home shard directly.
        """
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        landmark_id = self._peer_landmark[peer_id]
        self.stats.tree_queries += 1
        same_landmark = self._trees[landmark_id].closest_peers(peer_id, k)
        return [(peer, float(distance)) for peer, distance in same_landmark]

    def fill_candidates(
        self,
        bases: Mapping[LandmarkId, float],
        exclude_peer: Optional[PeerId] = None,
    ) -> Iterator[Tuple[float, str, PeerId]]:
        """This server's candidate stream for a cross-landmark fill (lazy).

        ``bases`` maps each of this server's landmarks to the constant part
        of the detour estimate for the querying peer
        (``hops(peer -> its landmark) + d(its landmark, this landmark)``) —
        the caller computes it, so a shard needs no knowledge of foreign
        landmark distances.  The stream yields ``(estimate, repr(peer),
        peer)`` tuples in non-decreasing order: one sorted stream per local
        landmark (its min-hop ordering shifted by the base), merged lazily so
        a consumer that only needs one or two fill candidates stops early.
        """

        def shifted(
            ordering: List[Tuple[int, str, PeerId]], base: float
        ) -> Iterator[Tuple[float, str, PeerId]]:
            for hops, text, peer in ordering:
                if peer != exclude_peer:
                    yield (base + hops, text, peer)

        streams = [
            shifted(self._hops_ordering(landmark_id), float(base))
            for landmark_id, base in bases.items()
            if landmark_id in self._trees
        ]
        return heapq.merge(*streams)

    # -------------------------------------------------------------- snapshots

    def snapshot_state(self) -> Tuple[object, ...]:
        """Serialise the server's live state as a plain-data tuple.

        The snapshot holds landmarks (registration order), every live path
        (current registration order, the order that determines tree shape),
        the landmark-distance map, the interner's compact-index table, and —
        when this server maintains one — the neighbour cache.  It contains only plain data (paths go through
        the wire codec), so it can cross the shard wire protocol and be
        journaled.  Observability counters (``stats``, tree visit/insert
        counters) are deliberately *not* captured: restoring yields a server
        whose answers are byte-identical, with counters restarted — the same
        contract a journal replay onto a fresh worker provides.
        """
        landmarks = tuple(
            (landmark_id, self._landmark_routers[landmark_id]) for landmark_id in self._trees
        )
        paths = tuple(encode_path(self._paths[peer_id]) for peer_id in self._peer_landmark)
        distances = tuple(self._landmark_distances.items())
        cache = self._cache.export_state() if self.maintain_cache else None
        interner = self._interner.export_state()
        return (_STATE_TAG, STATE_SNAPSHOT_VERSION, landmarks, paths, distances, cache, interner)

    def restore_state(self, snapshot: Tuple[object, ...]) -> None:
        """Replace all live state with a :meth:`snapshot_state` payload.

        Raises :class:`~repro.exceptions.StateSnapshotError` for anything
        that is not a supported snapshot.  The interner table is imported
        verbatim (compact indices and the monotonic counter survive, so
        array-backed consumers keyed on them stay valid), the neighbour cache
        is rebuilt around it, landmarks are re-registered and paths
        re-inserted in snapshot order — so every subsequent answer is
        byte-identical to the snapshotted server's.
        """
        if (
            not isinstance(snapshot, tuple)
            or len(snapshot) < 2
            or snapshot[0] != _STATE_TAG
        ):
            raise StateSnapshotError(f"malformed state snapshot: {type(snapshot).__name__}")
        version = snapshot[1]
        if version != STATE_SNAPSHOT_VERSION:
            # Typed rejection before the arity check: an old-layout tuple
            # (e.g. the 6-element version 1) reports its version mismatch,
            # not a generic malformed-snapshot error.
            raise StateSnapshotError(
                f"unsupported state snapshot version {version!r} "
                f"(this build reads version {STATE_SNAPSHOT_VERSION})"
            )
        if len(snapshot) != 7:
            raise StateSnapshotError(f"malformed state snapshot: {type(snapshot).__name__}")
        _, _, landmarks, paths, distances, cache, interner = snapshot
        self._trees = {}
        self._landmark_routers = {}
        self._peer_landmark = {}
        self._paths = {}
        self._peers_by_hops = {}
        self._landmark_distances = {}
        # Import the interner *before* replaying paths: every replayed insert
        # then finds the snapshotted (sort_text, compact_index) key instead of
        # interning afresh, so compact indices — including the gaps left by
        # departed peers and the monotonic next_index — survive verbatim.
        self._interner = PeerKeyInterner()
        try:
            self._interner.import_state(interner)  # type: ignore[arg-type]
        except (TypeError, ValueError) as error:
            raise StateSnapshotError(f"malformed interner state: {error}") from error
        self._cache = NeighborCache(self.neighbor_set_size, self.stats, self._interner)
        for landmark_id, router in landmarks:  # type: ignore[union-attr]
            self.register_landmark(landmark_id, router)
        self.insert_paths([decode_path(encoded) for encoded in paths], validate=False)  # type: ignore[union-attr]
        # The replay above bumped the fresh cache's membership generation once
        # per path.  Those bumps are restore bookkeeping, not membership
        # changes the snapshotted lists missed: reset the counter so the cache
        # import below re-validates the snapshot's completeness marks (and a
        # cache-less restore starts at generation 0, like a fresh server).
        self._cache.membership_generation = 0
        for key, distance in distances:  # type: ignore[union-attr]
            self._landmark_distances[tuple(key)] = float(distance)
        if cache is not None and self.maintain_cache:
            self._cache.import_state(cache)  # type: ignore[arg-type]

    # -------------------------------------------------------------- internals

    def _validate_path(self, path: RouterPath) -> None:
        self.validate_registrable(path)

    def _insert_path(self, path: RouterPath) -> None:
        """Insert one validated path into the tree and the server indexes."""
        self._trees[path.landmark_id].insert(path)
        self._peer_landmark[path.peer_id] = path.landmark_id
        self._paths[path.peer_id] = path
        ordering = self._peers_by_hops.get(path.landmark_id)
        if ordering is not None:
            bisect.insort(
                ordering,
                (path.hop_count, self._interner.sort_text(path.peer_id), path.peer_id),
            )
        self.stats.registrations += 1
        self._cache.note_membership_change()

    def _hops_ordering(self, landmark_id: LandmarkId) -> List[Tuple[int, str, PeerId]]:
        """The landmark's min-hop peer ordering, built on first use."""
        ordering = self._peers_by_hops.get(landmark_id)
        if ordering is None:
            interned = self._interner.sort_text
            ordering = sorted(
                (self._paths[peer].hop_count, interned(peer), peer)
                for peer in self._trees[landmark_id].peers()
            )
            self._peers_by_hops[landmark_id] = ordering
        return ordering

    def _hops_discard(self, landmark_id: LandmarkId, path: RouterPath) -> None:
        """Drop a departed peer from the per-landmark min-hop ordering."""
        ordering = self._peers_by_hops.get(landmark_id)
        if not ordering:
            return
        key = (path.hop_count, self._interner.sort_text(path.peer_id))
        index = bisect.bisect_left(ordering, key)
        while index < len(ordering) and ordering[index][:2] == key:
            if ordering[index][2] == path.peer_id:
                del ordering[index]
                return
            index += 1

    def _cross_landmark_candidates(
        self, peer_id: PeerId, landmark_id: LandmarkId, own_hops: int
    ) -> Iterator[Tuple[float, str, PeerId]]:
        """Foreign-tree candidates in non-decreasing estimate order (lazy)."""
        bases = self._fill_bases(self._trees, landmark_id, own_hops)
        return self.fill_candidates(bases, exclude_peer=peer_id)

    def _compute_neighbors(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Tree-walk computation of a peer's closest peers (plus cross-landmark fill)."""
        k = k or self.neighbor_set_size
        neighbors = self.local_closest(peer_id, k)
        if len(neighbors) >= k:
            return neighbors[:k]

        # Not enough peers under this landmark: fill with cross-landmark
        # estimates if inter-landmark distances are known.  The per-landmark
        # min-hop orderings are merged lazily, so only as many foreign
        # candidates as needed are ever examined.
        landmark_id = self._peer_landmark[peer_id]
        own_hops = self._paths[peer_id].hop_count
        already = {peer for peer, _ in neighbors}
        for estimate, _, other_peer in self._cross_landmark_candidates(
            peer_id, landmark_id, own_hops
        ):
            if len(neighbors) >= k:
                break
            if other_peer in already:
                continue
            neighbors.append((other_peer, estimate))
            already.add(other_peer)
        return neighbors

    def _compute_neighbors_batch(
        self, pending: Dict[PeerId, RouterPath]
    ) -> Dict[PeerId, List[Tuple[PeerId, float]]]:
        """Batch neighbour lists: one shared frontier per attachment cluster.

        A peer's tree view is fully determined by its attachment node, so
        co-arriving peers at the same access router see *identical*
        candidate streams modulo self-exclusion.  For each cluster of two or
        more such peers this runs **one** :meth:`PathTree.closest_from_node`
        walk for the top ``k + 1`` candidates (no exclusion); each member's
        list is then that stream minus the member itself, truncated to
        ``k`` — provably the member's own top-``k``: the first ``k + 1``
        elements of the total ``(dtree, sort_text)`` order lose at most one
        element (the member), leaving at least its top ``k``.

        Clusters whose tree cannot produce ``k + 1`` candidates (the member
        lists may need the cross-landmark fill) and singleton clusters fall
        back to the per-peer path, so results stay byte-identical to
        sequential :meth:`_compute_neighbors` calls in every case.  Ties
        deeper than ``(dtree, sort_text)`` — distinct peers with colliding
        ``repr`` — may order differently between the shared and per-peer
        walks; identifiers with injective ``repr`` (strings, ints) are
        unaffected.
        """
        k = self.neighbor_set_size
        peer_key: Dict[PeerId, Tuple[LandmarkId, int]] = {}
        clusters: Dict[Tuple[LandmarkId, int], List[PeerId]] = {}
        cluster_nodes: Dict[Tuple[LandmarkId, int], object] = {}
        for peer_id in pending:
            landmark_id = self._peer_landmark[peer_id]
            node = self._trees[landmark_id].attachment_node(peer_id)
            key = (landmark_id, id(node))
            peer_key[peer_id] = key
            members = clusters.get(key)
            if members is None:
                clusters[key] = [peer_id]
                cluster_nodes[key] = node
            else:
                members.append(peer_id)

        shared: Dict[Tuple[LandmarkId, int], List[Tuple[PeerId, float]]] = {}
        for key, members in clusters.items():
            if len(members) < 2:
                continue
            landmark_id = key[0]
            tree = self._trees[landmark_id]
            if tree.peer_count <= k:
                # The walk could never return k + 1 candidates: skip it and
                # let every member take the per-peer path (which may need
                # the cross-landmark fill anyway).
                continue
            self.stats.tree_queries += 1
            candidates = tree.closest_from_node(cluster_nodes[key], k + 1)  # type: ignore[arg-type]
            # peer_count >= k + 1 guarantees a full stream: enough tree
            # candidates for every member even after removing itself, so no
            # member can need the cross-landmark fill.
            shared[key] = [(peer, float(distance)) for peer, distance in candidates]

        results: Dict[PeerId, List[Tuple[PeerId, float]]] = {}
        for peer_id in pending:
            stream = shared.get(peer_key[peer_id])
            if stream is None:
                results[peer_id] = self._compute_neighbors(peer_id)
            else:
                results[peer_id] = [pair for pair in stream if pair[0] != peer_id][:k]
        return results

    def __repr__(self) -> str:
        return (
            f"ManagementServer(peers={self.peer_count}, landmarks={len(self._trees)}, "
            f"k={self.neighbor_set_size}, cache={'on' if self.maintain_cache else 'off'})"
        )
