"""The management server: registers peer paths, answers closest-peer queries.

This is the paper's central component.  It maintains one
:class:`~repro.core.path_tree.PathTree` per landmark, plus (optionally) a
per-peer **cached neighbour list** so that answering a closest-peer query is
a single hash-table access — the O(1) lookup the paper claims — while each
newcomer insertion only touches the peers close to the newcomer and performs
ordered-list insertions into their cached lists — the O(log n) insertion the
paper claims.

Cross-landmark estimates
------------------------
Peers registered under different landmarks share no path, so their tree
distance is undefined.  When inter-landmark distances are provided (the
landmarks can measure them once, offline), the server falls back to::

    d_cross(p1, p2) = hops(p1 -> landmark(p1)) + d(landmark(p1), landmark(p2))
                      + hops(landmark(p2) -> p2)

which is an upper bound on the true distance.  Cross-landmark candidates are
only used to fill a neighbour list when the peer's own tree cannot provide
``k`` candidates.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .._validation import require_positive_int
from ..exceptions import LandmarkError, RegistrationError, UnknownPeerError
from .path import LandmarkId, NodeId, PeerId, RouterPath
from .path_tree import PathTree


@dataclass
class ServerStats:
    """Operation counters, used by the complexity benchmarks."""

    registrations: int = 0
    removals: int = 0
    queries: int = 0
    cache_hits: int = 0
    tree_queries: int = 0
    cache_updates: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.registrations = 0
        self.removals = 0
        self.queries = 0
        self.cache_hits = 0
        self.tree_queries = 0
        self.cache_updates = 0


@dataclass
class NeighborEntry:
    """One entry of a cached neighbour list."""

    distance: float
    peer_id: PeerId

    def as_tuple(self) -> Tuple[float, str, PeerId]:
        """Sort key: distance first, then a stable textual tiebreak."""
        return (self.distance, repr(self.peer_id), self.peer_id)


class ManagementServer:
    """Central server implementing the paper's two-round discovery scheme.

    Parameters
    ----------
    neighbor_set_size:
        Number of neighbours (``k``) returned to a newcomer and kept in each
        peer's cached list.
    maintain_cache:
        Keep per-peer neighbour lists up to date on every registration so
        queries are O(1).  Disabling it makes every query walk the tree
        (useful for the complexity ablation).
    landmark_distances:
        Optional ``{(landmark_a, landmark_b): hop_distance}`` map (symmetric
        entries are filled in automatically) enabling cross-landmark
        estimates.
    """

    def __init__(
        self,
        neighbor_set_size: int = 5,
        maintain_cache: bool = True,
        landmark_distances: Optional[Dict[Tuple[LandmarkId, LandmarkId], float]] = None,
    ) -> None:
        self.neighbor_set_size = require_positive_int(neighbor_set_size, "neighbor_set_size")
        self.maintain_cache = maintain_cache
        self._trees: Dict[LandmarkId, PathTree] = {}
        self._landmark_routers: Dict[LandmarkId, NodeId] = {}
        self._peer_landmark: Dict[PeerId, LandmarkId] = {}
        self._paths: Dict[PeerId, RouterPath] = {}
        self._neighbor_cache: Dict[PeerId, List[NeighborEntry]] = {}
        self._landmark_distances: Dict[Tuple[LandmarkId, LandmarkId], float] = {}
        if landmark_distances:
            for (a, b), distance in landmark_distances.items():
                self.set_landmark_distance(a, b, distance)
        self.stats = ServerStats()

    # -------------------------------------------------------------- landmarks

    def register_landmark(self, landmark_id: LandmarkId, router: NodeId) -> None:
        """Declare a landmark and the router it is attached to."""
        if landmark_id in self._trees:
            raise LandmarkError(f"landmark {landmark_id!r} is already registered")
        self._landmark_routers[landmark_id] = router
        self._trees[landmark_id] = PathTree(landmark_id=landmark_id, landmark_router=router)

    def landmarks(self) -> List[LandmarkId]:
        """Identifiers of all registered landmarks."""
        return list(self._trees)

    def landmark_router(self, landmark_id: LandmarkId) -> NodeId:
        """Router a landmark is attached to."""
        if landmark_id not in self._landmark_routers:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._landmark_routers[landmark_id]

    def tree(self, landmark_id: LandmarkId) -> PathTree:
        """The path tree of one landmark."""
        if landmark_id not in self._trees:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._trees[landmark_id]

    def set_landmark_distance(self, a: LandmarkId, b: LandmarkId, distance: float) -> None:
        """Record the (symmetric) distance between two landmarks."""
        if distance < 0:
            raise LandmarkError(f"landmark distance must be >= 0, got {distance}")
        self._landmark_distances[(a, b)] = float(distance)
        self._landmark_distances[(b, a)] = float(distance)

    def landmark_distance(self, a: LandmarkId, b: LandmarkId) -> Optional[float]:
        """Distance between two landmarks, or None if unknown."""
        if a == b:
            return 0.0
        return self._landmark_distances.get((a, b))

    # ------------------------------------------------------------------ peers

    @property
    def peer_count(self) -> int:
        """Number of currently registered peers."""
        return len(self._peer_landmark)

    def peers(self) -> List[PeerId]:
        """Identifiers of all registered peers."""
        return list(self._peer_landmark)

    def has_peer(self, peer_id: PeerId) -> bool:
        """True if the peer is registered."""
        return peer_id in self._peer_landmark

    def peer_path(self, peer_id: PeerId) -> RouterPath:
        """The path a peer registered with."""
        if peer_id not in self._paths:
            raise UnknownPeerError(peer_id)
        return self._paths[peer_id]

    def peer_landmark(self, peer_id: PeerId) -> LandmarkId:
        """The landmark a peer registered under."""
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        return self._peer_landmark[peer_id]

    # -------------------------------------------------------------- register

    def register_peer(self, path: RouterPath) -> List[Tuple[PeerId, float]]:
        """Round 2 of the join protocol: insert the path, return closest peers.

        Returns the newcomer's neighbour list (up to ``neighbor_set_size``
        entries of ``(peer_id, estimated_distance)``), which is also what the
        server caches for subsequent O(1) queries.
        """
        if path.landmark_id not in self._trees:
            raise RegistrationError(
                f"peer {path.peer_id!r} reported a path to unknown landmark "
                f"{path.landmark_id!r}"
            )
        if path.peer_id in self._peer_landmark:
            self.unregister_peer(path.peer_id)

        tree = self._trees[path.landmark_id]
        tree.insert(path)
        self._peer_landmark[path.peer_id] = path.landmark_id
        self._paths[path.peer_id] = path
        self.stats.registrations += 1

        neighbors = self._compute_neighbors(path.peer_id)
        if self.maintain_cache:
            self._neighbor_cache[path.peer_id] = [
                NeighborEntry(distance=distance, peer_id=peer) for peer, distance in neighbors
            ]
            self._propagate_newcomer(path.peer_id, neighbors)
        return neighbors

    def unregister_peer(self, peer_id: PeerId) -> None:
        """Remove a departing peer from its tree and from all cached lists."""
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        landmark_id = self._peer_landmark.pop(peer_id)
        del self._paths[peer_id]
        self._trees[landmark_id].remove(peer_id)
        self._neighbor_cache.pop(peer_id, None)
        self.stats.removals += 1
        if self.maintain_cache:
            # Lazily repair other peers' lists: drop the departed entry; the
            # list is refilled from the tree on the next query if it runs dry.
            for entries in self._neighbor_cache.values():
                entries[:] = [entry for entry in entries if entry.peer_id != peer_id]

    # ---------------------------------------------------------------- queries

    def closest_peers(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Return up to ``k`` closest peers for a registered peer.

        With the cache enabled and ``k <= neighbor_set_size`` this is a single
        dictionary access (plus slicing); otherwise the landmark tree is
        queried directly.
        """
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        k = k or self.neighbor_set_size
        self.stats.queries += 1
        if self.maintain_cache and k <= self.neighbor_set_size:
            entries = self._neighbor_cache.get(peer_id, [])
            if len(entries) >= min(k, self.peer_count - 1):
                self.stats.cache_hits += 1
                return [(entry.peer_id, entry.distance) for entry in entries[:k]]
        neighbors = self._compute_neighbors(peer_id, k=k)
        if self.maintain_cache and k >= self.neighbor_set_size:
            self._neighbor_cache[peer_id] = [
                NeighborEntry(distance=distance, peer_id=peer)
                for peer, distance in neighbors[: self.neighbor_set_size]
            ]
        return neighbors

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Estimated hop distance between two registered peers.

        Implements the :class:`~repro.core.distance.DistanceEstimator`
        protocol: same-landmark pairs use the tree distance, cross-landmark
        pairs use the landmark-detour estimate (requires landmark distances),
        and unknown cross-landmark distances raise :class:`LandmarkError`.
        """
        if peer_a == peer_b:
            return 0.0
        landmark_a = self.peer_landmark(peer_a)
        landmark_b = self.peer_landmark(peer_b)
        if landmark_a == landmark_b:
            return float(self._trees[landmark_a].tree_distance(peer_a, peer_b))
        between = self.landmark_distance(landmark_a, landmark_b)
        if between is None:
            raise LandmarkError(
                f"no inter-landmark distance between {landmark_a!r} and {landmark_b!r}"
            )
        return float(self._paths[peer_a].hop_count + between + self._paths[peer_b].hop_count)

    # -------------------------------------------------------------- internals

    def _compute_neighbors(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Tree-walk computation of a peer's closest peers (plus cross-landmark fill)."""
        k = k or self.neighbor_set_size
        landmark_id = self._peer_landmark[peer_id]
        tree = self._trees[landmark_id]
        self.stats.tree_queries += 1
        same_landmark = tree.closest_peers(peer_id, k)
        neighbors: List[Tuple[PeerId, float]] = [
            (peer, float(distance)) for peer, distance in same_landmark
        ]
        if len(neighbors) >= k:
            return neighbors[:k]

        # Not enough peers under this landmark: fill with cross-landmark
        # estimates if inter-landmark distances are known.
        own_path = self._paths[peer_id]
        candidates: List[Tuple[float, str, PeerId]] = []
        for other_landmark, other_tree in self._trees.items():
            if other_landmark == landmark_id:
                continue
            between = self.landmark_distance(landmark_id, other_landmark)
            if between is None:
                continue
            for other_peer in other_tree.peers():
                if other_peer == peer_id:
                    continue
                estimate = own_path.hop_count + between + self._paths[other_peer].hop_count
                candidates.append((float(estimate), repr(other_peer), other_peer))
        candidates.sort()
        already = {peer for peer, _ in neighbors}
        for estimate, _, other_peer in candidates:
            if len(neighbors) >= k:
                break
            if other_peer in already:
                continue
            neighbors.append((other_peer, estimate))
            already.add(other_peer)
        return neighbors

    def _propagate_newcomer(
        self, newcomer: PeerId, newcomer_neighbors: Sequence[Tuple[PeerId, float]]
    ) -> None:
        """Insert the newcomer into nearby peers' cached lists (ordered insert).

        Only the peers that appear in the newcomer's own neighbour list (and
        their current list members' bound) can possibly gain the newcomer as
        a better neighbour, so the update cost is bounded by
        ``neighbor_set_size`` ordered-list insertions — the O(log n)
        "ordered list" cost the paper refers to.
        """
        for peer, distance in newcomer_neighbors:
            entries = self._neighbor_cache.get(peer)
            if entries is None:
                continue
            if any(entry.peer_id == newcomer for entry in entries):
                continue
            if len(entries) >= self.neighbor_set_size and distance >= entries[-1].distance:
                continue
            keys = [entry.as_tuple() for entry in entries]
            new_entry = NeighborEntry(distance=distance, peer_id=newcomer)
            index = bisect.bisect_left(keys, new_entry.as_tuple())
            entries.insert(index, new_entry)
            del entries[self.neighbor_set_size :]
            self.stats.cache_updates += 1

    def __repr__(self) -> str:
        return (
            f"ManagementServer(peers={self.peer_count}, landmarks={len(self._trees)}, "
            f"k={self.neighbor_set_size}, cache={'on' if self.maintain_cache else 'off'})"
        )
