"""Per-peer cached neighbour lists with a reverse neighbour index.

This is the peer-facing half of the management plane, extracted from
:class:`~repro.core.management_server.ManagementServer` so that both the
single-process server and the sharded coordinator
(:class:`~repro.core.sharded.ShardedManagementServer`) maintain their caches
with *exactly* the same code — which is what makes the sharded plane's
results byte-identical to the single server's.

The cache holds, for every registered peer, an ordered list of
:class:`NeighborEntry` (closest first), plus the **reverse neighbour index**
``referenced_by`` (peer -> peers whose cached list contains it) so a
departure only repairs the lists that actually reference the departed peer.

Sort keys are interned: entries created by the cache carry the owning
plane's precomputed ``sort_text`` (see :mod:`repro.core.interning`), so the
ordered inserts of ``propagate_newcomer`` bisect over ready tuples instead
of calling ``repr`` per probe.

Completeness tracking
---------------------
A cached list shorter than ``k`` can mean two different things: the compute
that produced it *exhausted every reachable candidate* (few peers under the
landmark, no usable cross-landmark distances), or the list has merely been
*eroded* by departures.  The first kind is a perfectly valid answer — it
should keep hitting the cache until a membership change could add a new
candidate.  ``store(..., complete=True)`` marks a list as exhaustive,
stamped with the plane's **membership generation** (bumped by the plane on
every registration and landmark-distance change); :meth:`is_complete` only
honours marks from the current generation, so a short-but-complete list is
O(1) to query in the steady state and recomputed exactly once after each
arrival.  Departures do not bump the generation: the reverse-index repair
removes the departed peer from every list that referenced it, and a
complete list minus a departed member is still the complete answer.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from .._validation import require_positive_int
from .interning import PeerKeyInterner
from .path import PeerId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .management_plane import ServerStats


@dataclass(slots=True)
class NeighborEntry:
    """One entry of a cached neighbour list.

    ``sort_text`` is the interned textual tiebreak (``repr(peer_id)``),
    filled in by the cache at construction; entries built directly (tests,
    ad-hoc tooling) compute it lazily on first :meth:`as_tuple`.  It never
    participates in equality — two entries are equal iff distance and peer
    match, exactly as before interning.  Slotted: a warm cache holds
    ``k`` entries per registered peer, so attribute-dict overhead is pure
    waste.
    """

    distance: float
    peer_id: PeerId
    sort_text: Optional[str] = field(default=None, compare=False, repr=False)

    def as_tuple(self) -> Tuple[float, str, PeerId]:
        """Sort key: distance first, then a stable textual tiebreak."""
        text = self.sort_text
        if text is None:
            text = self.sort_text = repr(self.peer_id)
        return (self.distance, text, self.peer_id)


class NeighborCache:
    """Cached neighbour lists plus the reverse index, kept exactly in sync.

    Parameters
    ----------
    neighbor_set_size:
        Maximum entries per cached list (``k``).
    stats:
        The owning server's :class:`~repro.core.management_plane.ServerStats`;
        the cache increments ``cache_updates`` and ``departure_updates`` on it
        so counter-based complexity tests keep working regardless of which
        plane (single or sharded) owns the cache.
    interner:
        The owning plane's :class:`~repro.core.interning.PeerKeyInterner`
        (a private one is created if not given), used to stamp entries with
        precomputed sort texts.
    """

    def __init__(
        self,
        neighbor_set_size: int,
        stats: "ServerStats",
        interner: Optional[PeerKeyInterner] = None,
    ) -> None:
        self.neighbor_set_size = require_positive_int(neighbor_set_size, "neighbor_set_size")
        self.stats = stats
        self.interner = interner if interner is not None else PeerKeyInterner()
        self.lists: Dict[PeerId, List[NeighborEntry]] = {}
        self.referenced_by: Dict[PeerId, Set[PeerId]] = {}
        #: Plane membership generation; bumped by the plane on every event
        #: that could add a reachable candidate (registration, new landmark
        #: distance).  Completeness marks are only valid for the generation
        #: they were stored under.
        self.membership_generation: int = 0
        self._complete: Dict[PeerId, int] = {}

    # ---------------------------------------------------------------- reading

    def get(self, peer_id: PeerId) -> Optional[List[NeighborEntry]]:
        """The peer's cached list, or None if it has none."""
        return self.lists.get(peer_id)

    def referencing(self, peer_id: PeerId) -> Set[PeerId]:
        """Peers whose cached list currently contains ``peer_id`` (a copy)."""
        return set(self.referenced_by.get(peer_id, ()))

    def is_complete(self, peer_id: PeerId) -> bool:
        """True if the peer's cached list is exhaustive *and* still current.

        Exhaustive means the compute that stored it returned every reachable
        candidate (fewer than ``k``); current means no membership change has
        happened since (see the module docstring).
        """
        return self._complete.get(peer_id) == self.membership_generation

    # --------------------------------------------------------------- mutating

    def note_membership_change(self) -> None:
        """Invalidate completeness marks: a new candidate may now exist.

        Called by the owning plane on every registration and on every
        landmark-distance update — both can extend the reachable candidate
        set of an exhaustive short list.  O(1): stale marks are dropped
        lazily when consulted.
        """
        self.membership_generation += 1

    def store(
        self, peer_id: PeerId, pairs: Sequence[Tuple[PeerId, float]], complete: bool = False
    ) -> None:
        """Replace a peer's cached list, keeping the reverse index in sync.

        ``complete=True`` marks the list as exhaustive for the current
        membership generation (the compute it came from returned every
        reachable candidate).
        """
        old_entries = self.lists.get(peer_id)
        if old_entries:
            for entry in old_entries:
                self._reverse_discard(entry.peer_id, peer_id)
        interned = self.interner.sort_text
        entries = [
            NeighborEntry(distance=distance, peer_id=peer, sort_text=interned(peer))
            for peer, distance in pairs
        ]
        self.lists[peer_id] = entries
        for entry in entries:
            self.referenced_by.setdefault(entry.peer_id, set()).add(peer_id)
        if complete:
            self._complete[peer_id] = self.membership_generation
        else:
            self._complete.pop(peer_id, None)

    def drop_peer(self, peer_id: PeerId) -> None:
        """Remove a departing peer's list and repair the lists referencing it.

        The reverse index pinpoints the (at most ``r``) lists that reference
        the departed peer, so the cost is O(r·k), not O(n).  Each repaired
        list bumps ``stats.departure_updates``.  Repaired lists keep their
        completeness marks: removing a departed member from an exhaustive
        list leaves the (smaller) exhaustive answer.
        """
        own_entries = self.lists.pop(peer_id, None)
        self._complete.pop(peer_id, None)
        if own_entries:
            for entry in own_entries:
                self._reverse_discard(entry.peer_id, peer_id)
        for referrer in self.referenced_by.pop(peer_id, ()):
            entries = self.lists.get(referrer)
            if entries is None:
                continue
            entries[:] = [entry for entry in entries if entry.peer_id != peer_id]
            self.stats.departure_updates += 1

    def propagate_newcomer(
        self, newcomer: PeerId, newcomer_neighbors: Sequence[Tuple[PeerId, float]]
    ) -> None:
        """Insert the newcomer into nearby peers' cached lists (ordered insert).

        Only the peers that appear in the newcomer's own neighbour list (and
        their current list members' bound) can possibly gain the newcomer as
        a better neighbour, so the update cost is bounded by
        ``neighbor_set_size`` ordered-list insertions — the O(log n)
        "ordered list" cost the paper refers to.  Each insertion bisects on
        the entries' interned ``(distance, sort_text)`` keys; no ``repr``
        is computed per probe.
        """
        newcomer_text = self.interner.sort_text(newcomer)
        for peer, distance in newcomer_neighbors:
            entries = self.lists.get(peer)
            if entries is None:
                continue
            if any(entry.peer_id == newcomer for entry in entries):
                continue
            if len(entries) >= self.neighbor_set_size and distance >= entries[-1].distance:
                continue
            new_entry = NeighborEntry(distance=distance, peer_id=newcomer, sort_text=newcomer_text)
            index = bisect.bisect_left(entries, new_entry.as_tuple(), key=NeighborEntry.as_tuple)
            entries.insert(index, new_entry)
            for evicted in entries[self.neighbor_set_size :]:
                self._reverse_discard(evicted.peer_id, peer)
            del entries[self.neighbor_set_size :]
            self.referenced_by.setdefault(newcomer, set()).add(peer)
            self.stats.cache_updates += 1

    # ------------------------------------------------------------- snapshots

    def export_state(self) -> Tuple[object, ...]:
        """The cache as plain data, for management-plane state snapshots.

        Returns ``(membership_generation, lists, completeness)`` where
        ``lists`` holds each owner's ``(peer, distance)`` pairs in cached
        order.  The reverse index is derivable, so it is not exported.
        """
        lists = tuple(
            (owner, tuple((entry.peer_id, entry.distance) for entry in entries))
            for owner, entries in self.lists.items()
        )
        return (self.membership_generation, lists, tuple(self._complete.items()))

    def import_state(self, state: Tuple[object, ...]) -> None:
        """Rebuild the cache (lists, reverse index, completeness) from
        :meth:`export_state` output, replacing current contents.

        Goes through :meth:`store` so the reverse index is rebuilt by the
        same code that maintains it live; generation and completeness marks
        are restored afterwards so marks stay valid exactly when they were.
        """
        generation, lists, complete = state
        self.lists.clear()
        self.referenced_by.clear()
        self._complete.clear()
        for owner, pairs in lists:  # type: ignore[union-attr]
            self.store(owner, tuple(pairs))
        self.membership_generation = int(generation)  # type: ignore[arg-type]
        self._complete.update(dict(complete))  # type: ignore[call-overload]

    # -------------------------------------------------------------- internals

    def _reverse_discard(self, target: PeerId, referrer: PeerId) -> None:
        """Remove one ``referrer -> target`` edge from the reverse index."""
        refs = self.referenced_by.get(target)
        if refs is None:
            return
        refs.discard(referrer)
        if not refs:
            del self.referenced_by[target]

    def __repr__(self) -> str:
        return f"NeighborCache(lists={len(self.lists)}, k={self.neighbor_set_size})"
