"""Per-peer cached neighbour lists with a reverse neighbour index.

This is the peer-facing half of the management plane, extracted from
:class:`~repro.core.management_server.ManagementServer` so that both the
single-process server and the sharded coordinator
(:class:`~repro.core.sharded.ShardedManagementServer`) maintain their caches
with *exactly* the same code — which is what makes the sharded plane's
results byte-identical to the single server's.

The cache holds, for every registered peer, an ordered list of
:class:`NeighborEntry` (closest first), plus the **reverse neighbour index**
``referenced_by`` (peer -> peers whose cached list contains it) so a
departure only repairs the lists that actually reference the departed peer.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from .._validation import require_positive_int
from .path import PeerId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .management_plane import ServerStats


@dataclass
class NeighborEntry:
    """One entry of a cached neighbour list."""

    distance: float
    peer_id: PeerId

    def as_tuple(self) -> Tuple[float, str, PeerId]:
        """Sort key: distance first, then a stable textual tiebreak."""
        return (self.distance, repr(self.peer_id), self.peer_id)


class NeighborCache:
    """Cached neighbour lists plus the reverse index, kept exactly in sync.

    Parameters
    ----------
    neighbor_set_size:
        Maximum entries per cached list (``k``).
    stats:
        The owning server's :class:`~repro.core.management_plane.ServerStats`;
        the cache increments ``cache_updates`` and ``departure_updates`` on it
        so counter-based complexity tests keep working regardless of which
        plane (single or sharded) owns the cache.
    """

    def __init__(self, neighbor_set_size: int, stats: "ServerStats") -> None:
        self.neighbor_set_size = require_positive_int(neighbor_set_size, "neighbor_set_size")
        self.stats = stats
        self.lists: Dict[PeerId, List[NeighborEntry]] = {}
        self.referenced_by: Dict[PeerId, Set[PeerId]] = {}

    # ---------------------------------------------------------------- reading

    def get(self, peer_id: PeerId) -> Optional[List[NeighborEntry]]:
        """The peer's cached list, or None if it has none."""
        return self.lists.get(peer_id)

    def referencing(self, peer_id: PeerId) -> Set[PeerId]:
        """Peers whose cached list currently contains ``peer_id`` (a copy)."""
        return set(self.referenced_by.get(peer_id, ()))

    # --------------------------------------------------------------- mutating

    def store(self, peer_id: PeerId, pairs: Sequence[Tuple[PeerId, float]]) -> None:
        """Replace a peer's cached list, keeping the reverse index in sync."""
        old_entries = self.lists.get(peer_id)
        if old_entries:
            for entry in old_entries:
                self._reverse_discard(entry.peer_id, peer_id)
        entries = [NeighborEntry(distance=distance, peer_id=peer) for peer, distance in pairs]
        self.lists[peer_id] = entries
        for entry in entries:
            self.referenced_by.setdefault(entry.peer_id, set()).add(peer_id)

    def drop_peer(self, peer_id: PeerId) -> None:
        """Remove a departing peer's list and repair the lists referencing it.

        The reverse index pinpoints the (at most ``r``) lists that reference
        the departed peer, so the cost is O(r·k), not O(n).  Each repaired
        list bumps ``stats.departure_updates``.
        """
        own_entries = self.lists.pop(peer_id, None)
        if own_entries:
            for entry in own_entries:
                self._reverse_discard(entry.peer_id, peer_id)
        for referrer in self.referenced_by.pop(peer_id, ()):
            entries = self.lists.get(referrer)
            if entries is None:
                continue
            entries[:] = [entry for entry in entries if entry.peer_id != peer_id]
            self.stats.departure_updates += 1

    def propagate_newcomer(
        self, newcomer: PeerId, newcomer_neighbors: Sequence[Tuple[PeerId, float]]
    ) -> None:
        """Insert the newcomer into nearby peers' cached lists (ordered insert).

        Only the peers that appear in the newcomer's own neighbour list (and
        their current list members' bound) can possibly gain the newcomer as
        a better neighbour, so the update cost is bounded by
        ``neighbor_set_size`` ordered-list insertions — the O(log n)
        "ordered list" cost the paper refers to.  Each insertion bisects on
        the entries' ``(distance, repr(peer))`` keys directly.
        """
        for peer, distance in newcomer_neighbors:
            entries = self.lists.get(peer)
            if entries is None:
                continue
            if any(entry.peer_id == newcomer for entry in entries):
                continue
            if len(entries) >= self.neighbor_set_size and distance >= entries[-1].distance:
                continue
            new_entry = NeighborEntry(distance=distance, peer_id=newcomer)
            index = bisect.bisect_left(entries, new_entry.as_tuple(), key=NeighborEntry.as_tuple)
            entries.insert(index, new_entry)
            for evicted in entries[self.neighbor_set_size :]:
                self._reverse_discard(evicted.peer_id, peer)
            del entries[self.neighbor_set_size :]
            self.referenced_by.setdefault(newcomer, set()).add(peer)
            self.stats.cache_updates += 1

    # -------------------------------------------------------------- internals

    def _reverse_discard(self, target: PeerId, referrer: PeerId) -> None:
        """Remove one ``referrer -> target`` edge from the reverse index."""
        refs = self.referenced_by.get(target)
        if refs is None:
            return
        refs.discard(referrer)
        if not refs:
            del self.referenced_by[target]

    def __repr__(self) -> str:
        return f"NeighborCache(lists={len(self.lists)}, k={self.neighbor_set_size})"
