"""Client-side logic of the two-round join protocol.

A :class:`NewcomerClient` models what a joining peer does:

1. obtain the landmark list from the management server (bootstrap);
2. probe the landmarks to find the closest one *in terms of latency* — the
   paper's newcomer targets "its closest landmark";
3. run the traceroute-like tool towards that landmark and clean the result;
4. upload the path and receive the recommended neighbour list.

The client works directly against an in-process
:class:`~repro.core.management_server.ManagementServer` (as the experiments
do) and records a :class:`~repro.core.protocol.JoinTranscript` with the
simulated timing of each phase, so setup-delay comparisons against
coordinate-based systems can be made.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .._validation import require_one_of, require_positive_int
from ..exceptions import LandmarkError, TracerouteError
from ..routing.path_inference import GAP_DROP, GAP_POLICIES, clean_traceroute
from ..routing.traceroute import TracerouteSimulator
from .management_server import ManagementServer
from .path import LandmarkId, NodeId, PeerId, RouterPath
from .protocol import (
    JoinTranscript,
    LandmarkDescriptor,
    NeighborRecommendation,
    NeighborResponse,
    PathReport,
)

LandmarkSelection = str
SELECT_CLOSEST_RTT = "closest_rtt"
SELECT_FEWEST_HOPS = "fewest_hops"
SELECT_FIRST = "first"
LANDMARK_SELECTION_POLICIES = (SELECT_CLOSEST_RTT, SELECT_FEWEST_HOPS, SELECT_FIRST)


@dataclass
class JoinResult:
    """Outcome of one join: the accepted neighbours plus the full transcript."""

    peer_id: PeerId
    landmark_id: LandmarkId
    path: RouterPath
    neighbors: List[NeighborRecommendation]
    transcript: JoinTranscript

    def neighbor_ids(self) -> List[PeerId]:
        """Recommended neighbour identifiers, closest first."""
        return [entry.peer_id for entry in self.neighbors]


class NewcomerClient:
    """Implements the peer side of the join protocol.

    Parameters
    ----------
    peer_id:
        Identifier of the joining peer.
    access_router:
        Router the peer's host is attached to (its first hop).
    traceroute:
        Simulated traceroute tool operating on the router topology.
    landmark_selection:
        How to pick the landmark to report a path for: ``closest_rtt``
        (default, matches the paper), ``fewest_hops`` or ``first``.
    gap_policy:
        How to clean anonymous hops out of the recorded path (see
        :mod:`repro.routing.path_inference`).
    probe_cost_ms:
        Modelled wall-clock cost of one traceroute hop probe, used only to
        fill in the transcript timings.
    """

    def __init__(
        self,
        peer_id: PeerId,
        access_router: NodeId,
        traceroute: TracerouteSimulator,
        landmark_selection: LandmarkSelection = SELECT_CLOSEST_RTT,
        gap_policy: str = GAP_DROP,
        probe_cost_ms: float = 20.0,
    ) -> None:
        self.peer_id = peer_id
        self.access_router = access_router
        self.traceroute = traceroute
        self.landmark_selection = require_one_of(
            landmark_selection, LANDMARK_SELECTION_POLICIES, "landmark_selection"
        )
        self.gap_policy = require_one_of(gap_policy, GAP_POLICIES, "gap_policy")
        self.probe_cost_ms = float(probe_cost_ms)

    # ------------------------------------------------------------- selection

    def select_landmark(
        self, landmarks: Sequence[LandmarkDescriptor]
    ) -> Tuple[LandmarkDescriptor, Dict[LandmarkId, float]]:
        """Pick the landmark to use and return per-landmark probe measurements.

        The ``closest_rtt`` policy traces towards every landmark and keeps the
        one with the lowest measured RTT (ties broken by landmark id).  The
        measurements dict maps landmark id → measured RTT (or hop count for
        the ``fewest_hops`` policy) and is reused so the chosen landmark does
        not need to be re-probed.
        """
        if not landmarks:
            raise LandmarkError("the management server announced no landmarks")
        if self.landmark_selection == SELECT_FIRST or len(landmarks) == 1:
            return landmarks[0], {}

        measurements: Dict[LandmarkId, float] = {}
        for descriptor in landmarks:
            result = self.traceroute.trace(self.access_router, descriptor.router)
            if not result.reached:
                continue
            if self.landmark_selection == SELECT_CLOSEST_RTT:
                rtt = result.destination_rtt_ms()
                measurements[descriptor.landmark_id] = rtt if rtt is not None else float("inf")
            else:
                measurements[descriptor.landmark_id] = float(result.hop_count)

        if not measurements:
            raise TracerouteError(
                f"peer {self.peer_id!r} could not reach any landmark from router "
                f"{self.access_router!r}"
            )
        best_id = min(measurements, key=lambda lid: (measurements[lid], repr(lid)))
        best = next(d for d in landmarks if d.landmark_id == best_id)
        return best, measurements

    # ------------------------------------------------------------------ probe

    def probe_landmark(self, landmark: LandmarkDescriptor) -> RouterPath:
        """Run the traceroute-like tool towards ``landmark`` and clean the path."""
        result = self.traceroute.trace(self.access_router, landmark.router)
        cleaned = clean_traceroute(result, gap_policy=self.gap_policy)
        routers = list(cleaned.routers)
        if not routers:
            raise TracerouteError(
                f"peer {self.peer_id!r}: traceroute towards landmark "
                f"{landmark.landmark_id!r} produced an empty path"
            )
        # The peer's own access router is the first hop of its path; the
        # traceroute starts *from* that router, so prepend it explicitly.
        if routers[0] != self.access_router:
            routers.insert(0, self.access_router)
        return RouterPath.from_routers(
            peer_id=self.peer_id,
            landmark_id=landmark.landmark_id,
            routers=routers,
            rtt_ms=result.destination_rtt_ms(),
        )

    # ------------------------------------------------------------------- join

    def join(
        self,
        server: ManagementServer,
        start_time_ms: float = 0.0,
    ) -> JoinResult:
        """Run the full two-round join against ``server``."""
        transcript = JoinTranscript(peer_id=self.peer_id, probe_started_at=start_time_ms)

        descriptors = [
            LandmarkDescriptor(landmark_id=lid, router=server.landmark_router(lid))
            for lid in server.landmarks()
        ]
        chosen, measurements = self.select_landmark(descriptors)
        transcript.landmark_id = chosen.landmark_id

        path = self.probe_landmark(chosen)
        probe_count = max(1, len(measurements)) if measurements else 1
        probe_time = self.probe_cost_ms * path.hop_count * probe_count
        transcript.probe_finished_at = start_time_ms + probe_time
        transcript.report_sent_at = transcript.probe_finished_at

        report = PathReport(peer_id=self.peer_id, path=path)
        pairs = server.register_peer(report.path)
        response = NeighborResponse.from_pairs(self.peer_id, pairs)

        server_rtt = path.rtt_ms if path.rtt_ms is not None else 10.0
        transcript.neighbors_received_at = transcript.report_sent_at + server_rtt
        transcript.neighbors = list(response.neighbors)

        return JoinResult(
            peer_id=self.peer_id,
            landmark_id=chosen.landmark_id,
            path=path,
            neighbors=list(response.neighbors),
            transcript=transcript,
        )


def join_population(
    peer_routers: Dict[PeerId, NodeId],
    server: ManagementServer,
    traceroute: TracerouteSimulator,
    landmark_selection: LandmarkSelection = SELECT_CLOSEST_RTT,
    gap_policy: str = GAP_DROP,
) -> Dict[PeerId, JoinResult]:
    """Join a whole population of peers one by one (in dict order).

    Convenience helper used by the experiments: ``peer_routers`` maps each
    peer id to the access router it is attached to.
    """
    require_positive_int(len(peer_routers), "population size")
    results: Dict[PeerId, JoinResult] = {}
    for peer_id, router in peer_routers.items():
        client = NewcomerClient(
            peer_id=peer_id,
            access_router=router,
            traceroute=traceroute,
            landmark_selection=landmark_selection,
            gap_policy=gap_policy,
        )
        results[peer_id] = client.join(server)
    return results
