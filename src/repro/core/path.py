"""Router paths reported by peers to the management server.

A :class:`RouterPath` is the unit of information the whole scheme runs on: the
ordered list of routers a peer's traceroute recorded between itself and its
chosen landmark, together with the measured landmark RTT.  Paths are ordered
**from the peer towards the landmark**, i.e. ``routers[0]`` is the peer's
first-hop (access) router and ``routers[-1]`` is the landmark's attachment
router (or the landmark host itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import RegistrationError
from ..routing.path_inference import CleanedPath

NodeId = Hashable
PeerId = Hashable
LandmarkId = Hashable


@dataclass(frozen=True)
class RouterPath:
    """An immutable peer-to-landmark router path.

    Attributes
    ----------
    peer_id:
        Identifier of the reporting peer.
    landmark_id:
        Identifier of the landmark the path leads to.
    routers:
        Ordered router identifiers, peer side first, landmark side last.
        Must be non-empty and contain no duplicates (a routed path never
        visits the same router twice).
    rtt_ms:
        Round-trip time to the landmark measured during the probe, if known.
    """

    peer_id: PeerId
    landmark_id: LandmarkId
    routers: Tuple[NodeId, ...]
    rtt_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if len(self.routers) == 0:
            raise RegistrationError(
                f"peer {self.peer_id!r} reported an empty path to landmark {self.landmark_id!r}"
            )
        if len(set(self.routers)) != len(self.routers):
            raise RegistrationError(
                f"peer {self.peer_id!r} reported a path with repeated routers: {self.routers!r}"
            )

    @classmethod
    def from_routers(
        cls,
        peer_id: PeerId,
        landmark_id: LandmarkId,
        routers: Sequence[NodeId],
        rtt_ms: Optional[float] = None,
    ) -> "RouterPath":
        """Build a path from any router sequence (copied into a tuple)."""
        return cls(
            peer_id=peer_id,
            landmark_id=landmark_id,
            routers=tuple(routers),
            rtt_ms=rtt_ms,
        )

    @classmethod
    def from_cleaned(
        cls,
        peer_id: PeerId,
        landmark_id: LandmarkId,
        cleaned: CleanedPath,
        rtt_ms: Optional[float] = None,
    ) -> "RouterPath":
        """Build a path from a :class:`~repro.routing.path_inference.CleanedPath`."""
        return cls.from_routers(peer_id, landmark_id, cleaned.routers, rtt_ms=rtt_ms)

    # ------------------------------------------------------------------ views

    @property
    def access_router(self) -> NodeId:
        """The peer-side (first-hop) router."""
        return self.routers[0]

    @property
    def landmark_router(self) -> NodeId:
        """The landmark-side (final) router."""
        return self.routers[-1]

    @property
    def hop_count(self) -> int:
        """Hops from the peer to the landmark (host-to-access-router included)."""
        return len(self.routers)

    def towards_landmark(self) -> Tuple[NodeId, ...]:
        """Routers ordered peer → landmark (the stored order)."""
        return self.routers

    def from_landmark(self) -> Tuple[NodeId, ...]:
        """Routers ordered landmark → peer (the order the path tree inserts).

        The reversed tuple is computed once per path and cached: registration
        consumes it twice (validation and trie insert) and the cache stops
        the hot path rebuilding it each time.  The cache is invisible to the
        dataclass surface (equality, hashing and ``repr`` compare fields
        only).
        """
        cached = getattr(self, "_from_landmark_cache", None)
        if cached is None:
            cached = tuple(reversed(self.routers))
            object.__setattr__(self, "_from_landmark_cache", cached)
        return cached

    def contains_router(self, router: NodeId) -> bool:
        """True if ``router`` appears on the path."""
        return router in self.routers

    def depth_of(self, router: NodeId) -> int:
        """Distance (in hops along the path) from the landmark side to ``router``.

        The landmark-side router has depth 0, the access router has depth
        ``hop_count - 1``.
        """
        reversed_routers = self.from_landmark()
        for depth, candidate in enumerate(reversed_routers):
            if candidate == router:
                return depth
        raise RegistrationError(f"router {router!r} is not on the path of peer {self.peer_id!r}")

    def __len__(self) -> int:
        return len(self.routers)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.routers)


def shared_suffix_length(path_a: RouterPath, path_b: RouterPath) -> int:
    """Number of routers shared at the landmark end of two paths."""
    shared = 0
    for a, b in zip(path_a.from_landmark(), path_b.from_landmark()):
        if a != b:
            break
        shared += 1
    return shared


def tree_distance(path_a: RouterPath, path_b: RouterPath) -> Optional[int]:
    """Inferred distance ``dtree`` between the two paths' peers.

    ``dtree(p1, p2) = hops(p1 → branch) + hops(branch → p2)`` where *branch*
    is the router closest to the peers that both recorded paths traverse
    (their lowest common ancestor in the landmark-rooted tree).  One extra hop
    per peer accounts for the host-to-access-router link.

    Returns ``None`` when the two paths share no router at all (e.g. they
    lead to different landmarks), in which case the caller must fall back to
    a cross-landmark estimate.
    """
    if path_a.peer_id == path_b.peer_id:
        return 0
    shared = shared_suffix_length(path_a, path_b)
    if shared == 0:
        return None
    hops_a = path_a.hop_count - shared + 1
    hops_b = path_b.hop_count - shared + 1
    return hops_a + hops_b
