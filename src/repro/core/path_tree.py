"""Landmark-rooted path tree (the management server's core data structure).

All the paths reported towards one landmark form a tree rooted at that
landmark: paths merge as they approach the network core, and the router where
two paths merge (their lowest common ancestor, the *branch router*) is the
point through which the inferred route between the two peers goes.  The
inferred distance is::

    dtree(p1, p2) = hops(p1 -> branch) + hops(branch -> p2)

The tree is implemented as a trie over the reversed paths (landmark first).
Each trie node corresponds to one router on at least one reported path, knows
its depth (hops from the landmark), the peers attached at that exact router,
and the number of peers in its subtree, so closest-peer queries can stop as
soon as enough candidates have been gathered.

Hot-path representation
-----------------------
Trie nodes are ``__slots__`` objects (a registration allocates up to one per
router on the path, so attribute-dict overhead is pure waste), each node maps
its attached peers to their **interned sort text** (``repr(peer_id)``
computed once per peer by the plane's :class:`~repro.core.interning.
PeerKeyInterner`), and the structural aggregates — ``router_count``,
``max_depth`` — are maintained incrementally on insert/prune instead of by
full-subtree scans.  Both the query and the insert side expose
algorithmic-work counters (``last_query_visits`` / ``last_insert_nodes_*``)
so benchmarks can assert scaling bounds instead of eyeballing wall-clock.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..exceptions import RegistrationError, UnknownPeerError
from .interning import PeerKeyInterner
from .path import LandmarkId, NodeId, PeerId, RouterPath

#: Stable sort key for interned candidate tuples ``(dtree, sort_text, peer)``:
#: ordering by the first two fields only keeps ties in discovery order (the
#: historic ``key=lambda item: (item[1], repr(item[0]))`` semantics) and never
#: falls through to comparing raw peer objects of mixed types.
_CANDIDATE_ORDER = itemgetter(0, 1)


class PathTreeNode:
    """One router on the landmark-rooted path tree.

    ``attached_peers`` maps each peer attached at this exact router to its
    interned sort text, so candidate collection during a query emits
    ready-to-sort tuples without calling ``repr``.  Iterating / ``len`` /
    membership on it behaves like the historic set of peer identifiers.
    """

    __slots__ = (
        "router",
        "depth",
        "parent",
        "children",
        "attached_peers",
        "subtree_peer_count",
    )

    def __init__(
        self,
        router: NodeId,
        depth: int,
        parent: Optional["PathTreeNode"] = None,
    ) -> None:
        self.router = router
        self.depth = depth
        self.parent = parent
        self.children: Dict[NodeId, "PathTreeNode"] = {}
        self.attached_peers: Dict[PeerId, str] = {}
        self.subtree_peer_count = 0

    def child(self, router: NodeId) -> Optional["PathTreeNode"]:
        """Return the child trie node for ``router`` if it exists."""
        return self.children.get(router)

    def iter_subtree(self) -> Iterator["PathTreeNode"]:
        """Depth-first iteration over this node and all its descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def peers_in_subtree(self) -> Iterator[Tuple[PeerId, int]]:
        """Yield ``(peer_id, attachment_depth)`` for every peer under this node."""
        for node in self.iter_subtree():
            for peer_id in node.attached_peers:
                yield peer_id, node.depth

    def __repr__(self) -> str:
        return (
            f"PathTreeNode(router={self.router!r}, depth={self.depth}, "
            f"peers={len(self.attached_peers)}, subtree={self.subtree_peer_count})"
        )


class PathTree:
    """The set of reported paths towards one landmark, organised as a trie.

    Parameters
    ----------
    landmark_id:
        Identifier of the landmark this tree belongs to.
    landmark_router:
        Router the landmark is attached to; used as the trie root.  If not
        given, the root is created lazily from the first inserted path's
        landmark-side router.
    interner:
        The owning plane's :class:`~repro.core.interning.PeerKeyInterner`;
        a private one is created for standalone trees.  Sharing the plane's
        interner means a peer's sort key is computed once per plane, not
        once per tree.
    """

    def __init__(
        self,
        landmark_id: LandmarkId,
        landmark_router: Optional[NodeId] = None,
        interner: Optional[PeerKeyInterner] = None,
    ) -> None:
        self.landmark_id = landmark_id
        self._interner = interner if interner is not None else PeerKeyInterner()
        self._root: Optional[PathTreeNode] = None
        self._router_count = 0
        self._depth_counts: Dict[int, int] = {}
        self._max_depth = 0
        if landmark_router is not None:
            self._root = PathTreeNode(router=landmark_router, depth=0)
            self._node_added(0)
        self._attachment: Dict[PeerId, PathTreeNode] = {}
        self._paths: Dict[PeerId, RouterPath] = {}
        #: Trie nodes examined by the most recent :meth:`closest_peers` call.
        self.last_query_visits: int = 0
        #: Trie nodes examined by all :meth:`closest_peers` calls so far.
        self.total_query_visits: int = 0
        #: Trie nodes created by the most recent :meth:`insert` call.
        self.last_insert_nodes_created: int = 0
        #: Trie nodes traversed by the most recent :meth:`insert` call.
        self.last_insert_nodes_touched: int = 0
        #: Trie nodes created by all :meth:`insert` calls so far.
        self.total_insert_nodes_created: int = 0
        #: Trie nodes traversed by all :meth:`insert` calls so far.
        self.total_insert_nodes_touched: int = 0

    # ------------------------------------------------------------------ state

    @property
    def root(self) -> Optional[PathTreeNode]:
        """The trie root (landmark-side router), or None if still empty."""
        return self._root

    @property
    def peer_count(self) -> int:
        """Number of peers currently registered in this tree."""
        return len(self._attachment)

    @property
    def router_count(self) -> int:
        """Number of distinct routers present in the tree (O(1), incremental)."""
        return self._router_count

    def peers(self) -> List[PeerId]:
        """All registered peer identifiers."""
        return list(self._attachment)

    def has_peer(self, peer_id: PeerId) -> bool:
        """True if ``peer_id`` is registered in this tree."""
        return peer_id in self._attachment

    def path_of(self, peer_id: PeerId) -> RouterPath:
        """The path ``peer_id`` registered with."""
        if peer_id not in self._paths:
            raise UnknownPeerError(peer_id)
        return self._paths[peer_id]

    def attachment_node(self, peer_id: PeerId) -> PathTreeNode:
        """The trie node (access router) the peer is attached to."""
        if peer_id not in self._attachment:
            raise UnknownPeerError(peer_id)
        return self._attachment[peer_id]

    def max_depth(self) -> int:
        """Deepest router depth in the tree (0 for an empty/one-node tree).

        Maintained incrementally from a depth histogram, so reading it is
        O(1) instead of a full-subtree scan.
        """
        return self._max_depth

    # ------------------------------------------------- structural bookkeeping

    def _node_added(self, depth: int) -> None:
        self._router_count += 1
        self._depth_counts[depth] = self._depth_counts.get(depth, 0) + 1
        if depth > self._max_depth:
            self._max_depth = depth

    def _node_removed(self, depth: int) -> None:
        self._router_count -= 1
        remaining = self._depth_counts[depth] - 1
        if remaining:
            self._depth_counts[depth] = remaining
        else:
            del self._depth_counts[depth]
            while self._max_depth > 0 and self._max_depth not in self._depth_counts:
                self._max_depth -= 1

    # ----------------------------------------------------------------- insert

    def insert(self, path: RouterPath) -> PathTreeNode:
        """Insert a peer's path; returns the node the peer got attached to.

        The cost is linear in the path length (bounded by the network
        diameter, ~15–30 hops), independent of the number of peers already in
        the tree — this is the cheap "newcomer insertion" the paper claims.
        Re-registering an already-known peer replaces its previous path.

        Each call records the trie nodes traversed / allocated in
        ``last_insert_nodes_touched`` / ``last_insert_nodes_created`` (and
        the ``total_*`` accumulators) so benchmarks can assert the O(path
        length) bound the same way query benchmarks assert visit counts.
        """
        if path.landmark_id != self.landmark_id:
            raise RegistrationError(
                f"path of peer {path.peer_id!r} targets landmark {path.landmark_id!r}, "
                f"but this tree belongs to landmark {self.landmark_id!r}"
            )
        if path.peer_id in self._attachment:
            self.remove(path.peer_id)

        reversed_routers = path.from_landmark()
        created = 0
        if self._root is None:
            self._root = PathTreeNode(router=reversed_routers[0], depth=0)
            self._node_added(0)
            created += 1
        elif self._root.router != reversed_routers[0]:
            raise RegistrationError(
                f"path of peer {path.peer_id!r} ends at router {reversed_routers[0]!r}, "
                f"but the tree of landmark {self.landmark_id!r} is rooted at "
                f"{self._root.router!r}"
            )

        node = self._root
        for router in reversed_routers[1:]:
            child = node.children.get(router)
            if child is None:
                child = PathTreeNode(router=router, depth=node.depth + 1, parent=node)
                node.children[router] = child
                self._node_added(child.depth)
                created += 1
            node = child

        node.attached_peers[path.peer_id] = self._interner.sort_text(path.peer_id)
        self._attachment[path.peer_id] = node
        self._paths[path.peer_id] = path
        # Propagate the subtree count up to the root.
        current: Optional[PathTreeNode] = node
        while current is not None:
            current.subtree_peer_count += 1
            current = current.parent

        self.last_insert_nodes_created = created
        self.last_insert_nodes_touched = len(reversed_routers)
        self.total_insert_nodes_created += created
        self.total_insert_nodes_touched += len(reversed_routers)
        return node

    def remove(self, peer_id: PeerId) -> None:
        """Remove a peer (e.g. on departure); prunes now-empty branches."""
        if peer_id not in self._attachment:
            raise UnknownPeerError(peer_id)
        node = self._attachment.pop(peer_id)
        del self._paths[peer_id]
        node.attached_peers.pop(peer_id, None)

        current: Optional[PathTreeNode] = node
        while current is not None:
            current.subtree_peer_count -= 1
            current = current.parent

        # Prune empty leaves so the trie does not grow without bound under churn.
        current = node
        while (
            current is not None
            and current.parent is not None
            and current.subtree_peer_count == 0
            and not current.children
        ):
            parent = current.parent
            del parent.children[current.router]
            self._node_removed(current.depth)
            current = parent

    # ----------------------------------------------------------------- queries

    def lowest_common_ancestor(self, peer_a: PeerId, peer_b: PeerId) -> PathTreeNode:
        """Branch router node of two registered peers."""
        node_a = self.attachment_node(peer_a)
        node_b = self.attachment_node(peer_b)
        while node_a.depth > node_b.depth:
            node_a = node_a.parent  # type: ignore[assignment]
        while node_b.depth > node_a.depth:
            node_b = node_b.parent  # type: ignore[assignment]
        while node_a is not node_b:
            node_a = node_a.parent  # type: ignore[assignment]
            node_b = node_b.parent  # type: ignore[assignment]
        return node_a

    def tree_distance(self, peer_a: PeerId, peer_b: PeerId) -> int:
        """Inferred hop distance ``dtree`` between two registered peers.

        Each peer is one hop away from its attachment (access) router, hence
        the ``+ 1`` per side.
        """
        if peer_a == peer_b:
            return 0
        node_a = self.attachment_node(peer_a)
        node_b = self.attachment_node(peer_b)
        lca = self.lowest_common_ancestor(peer_a, peer_b)
        hops_a = node_a.depth - lca.depth + 1
        hops_b = node_b.depth - lca.depth + 1
        return hops_a + hops_b

    def closest_peers(
        self,
        peer_id: PeerId,
        k: int,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[Tuple[PeerId, int]]:
        """Return up to ``k`` peers closest to ``peer_id`` by tree distance.

        Delegates to :meth:`closest_from_node` from the peer's attachment
        node, excluding the peer itself — a peer's view of the tree is fully
        determined by the router it attaches at, which is what lets a batch
        of co-arriving peers at one access router share a single frontier
        walk (see ``ManagementServer._compute_neighbors_batch``).

        Returns a list of ``(peer_id, dtree)`` sorted by ``dtree`` then peer
        sort text.
        """
        self.last_query_visits = 0
        if k <= 0:
            return []
        origin = self.attachment_node(peer_id)
        excluded = {peer_id}
        if exclude:
            excluded |= set(exclude)
        return self.closest_from_node(origin, k, exclude=excluded)

    def closest_from_node(
        self,
        origin: PathTreeNode,
        k: int,
        exclude: Iterable[PeerId] = (),
    ) -> List[Tuple[PeerId, int]]:
        """Up to ``k`` closest peers as seen from a trie node (the engine).

        Best-first frontier search guided by ``subtree_peer_count``.  The
        frontier holds two kinds of entries, each keyed by a lower bound on
        the ``dtree`` of any peer reachable through it:

        * *ancestor* entries — the next node on the origin's root path.  A
          peer whose branch point is that ancestor is at least
          ``(origin.depth - ancestor.depth) + 2`` away;
        * *subtree* entries — a node hanging off an already-expanded ancestor
          (the lowest common ancestor of its whole subtree with the origin).
          Peers attached at the node are exactly ``bound`` away, deeper peers
          strictly farther.

        Because a popped entry's bound equals the exact ``dtree`` of the
        peers attached at its node, peers are discovered in non-decreasing
        ``dtree`` order; the walk stops once the frontier's best bound
        exceeds the ``k``-th best distance found.  Empty subtrees
        (``subtree_peer_count == 0``) are never pushed, and subtrees whose
        bound already exceeds the ``k``-th best are pruned at push time, so
        the visit count is O(k + depth + branching) instead of the size of
        every sibling subtree.

        Candidates are collected as ``(dtree, interned_sort_text, peer)``
        tuples and sorted by the first two fields at C speed — no ``repr``
        call anywhere on the walk, and byte-identical ordering to the
        historic ``(dtree, repr(peer))`` sort (ties in both fields keep
        discovery order, exactly like the stable sort they replace).

        The frontier is **level-synchronous**: every entry spawned by a
        bound-``b`` entry has bound exactly ``b + 1`` (a child subtree adds
        one hop; the next ancestor adds one hop to the origin side), so the
        best-first priority queue degenerates into plain per-level lists —
        same pop order as a ``(bound, push-order)`` heap, none of the heap's
        per-entry cost.

        Each call records the number of trie nodes examined in
        ``last_query_visits`` (and accumulates ``total_query_visits``) so
        benchmarks can assert the sub-linear behaviour.
        """
        self.last_query_visits = 0
        if k <= 0:
            return []
        excluded = exclude if isinstance(exclude, (set, frozenset)) else set(exclude)

        # Level entries: (node, lca_depth, skip_child).  Ancestor entries
        # satisfy node.depth == lca_depth and carry the child subtree already
        # explored in ``skip_child``; subtree entries satisfy node.depth >
        # lca_depth and never skip anything.  ``bound`` — the exact dtree of
        # peers attached at the level's nodes — starts at 2 (origin) and
        # grows by one per level.
        level: List[Tuple[PathTreeNode, int, Optional[PathTreeNode]]] = [
            (origin, origin.depth, None)
        ]
        bound = 2
        results: List[Tuple[int, str, PeerId]] = []
        append = results.append
        kth_found = False
        visits = 0

        while level:
            next_level: List[Tuple[PathTreeNode, int, Optional[PathTreeNode]]] = []
            push = next_level.append
            for node, lca_depth, skip_child in level:
                visits += 1
                for candidate, sort_text in node.attached_peers.items():
                    if candidate not in excluded:
                        append((bound, sort_text, candidate))
                if kth_found:
                    # The k-th best distance equals this level's bound, so
                    # deeper levels cannot contribute; keep draining this
                    # level (exact-distance ties) without growing the next.
                    continue
                if len(results) >= k:
                    kth_found = True
                    continue
                if node.depth == lca_depth:
                    # Ancestor entry: fan out into unexplored child subtrees
                    # and continue up the root path.
                    for child in node.children.values():
                        if child is not skip_child and child.subtree_peer_count > 0:
                            push((child, lca_depth, None))
                    parent = node.parent
                    if parent is not None:
                        push((parent, parent.depth, node))
                else:
                    # Subtree entry: descend, one extra hop per level.
                    for child in node.children.values():
                        if child.subtree_peer_count > 0:
                            push((child, lca_depth, None))
            if kth_found:
                break
            level = next_level
            bound += 1

        self.last_query_visits = visits
        self.total_query_visits += visits
        results.sort(key=_CANDIDATE_ORDER)
        del results[k:]
        return [(candidate, bound) for bound, _, candidate in results]

    def all_pairs_tree_distance(self) -> Dict[Tuple[PeerId, PeerId], int]:
        """Exhaustive dtree for every unordered pair (small populations only)."""
        peers = self.peers()
        result: Dict[Tuple[PeerId, PeerId], int] = {}
        for i, peer_a in enumerate(peers):
            for peer_b in peers[i + 1 :]:
                result[(peer_a, peer_b)] = self.tree_distance(peer_a, peer_b)
        return result

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._attachment

    def __len__(self) -> int:
        return len(self._attachment)

    def __repr__(self) -> str:
        return (
            f"PathTree(landmark={self.landmark_id!r}, peers={self.peer_count}, "
            f"routers={self.router_count})"
        )
