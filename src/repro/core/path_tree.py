"""Landmark-rooted path tree (the management server's core data structure).

All the paths reported towards one landmark form a tree rooted at that
landmark: paths merge as they approach the network core, and the router where
two paths merge (their lowest common ancestor, the *branch router*) is the
point through which the inferred route between the two peers goes.  The
inferred distance is::

    dtree(p1, p2) = hops(p1 -> branch) + hops(branch -> p2)

The tree is implemented as a trie over the reversed paths (landmark first).
Each trie node corresponds to one router on at least one reported path, knows
its depth (hops from the landmark), the peers attached at that exact router,
and the number of peers in its subtree, so closest-peer queries can stop as
soon as enough candidates have been gathered.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from ..exceptions import RegistrationError, UnknownPeerError
from .path import LandmarkId, NodeId, PeerId, RouterPath


@dataclass
class PathTreeNode:
    """One router on the landmark-rooted path tree."""

    router: NodeId
    depth: int
    parent: Optional["PathTreeNode"] = None
    children: Dict[NodeId, "PathTreeNode"] = field(default_factory=dict)
    attached_peers: Set[PeerId] = field(default_factory=set)
    subtree_peer_count: int = 0

    def child(self, router: NodeId) -> Optional["PathTreeNode"]:
        """Return the child trie node for ``router`` if it exists."""
        return self.children.get(router)

    def ensure_child(self, router: NodeId) -> "PathTreeNode":
        """Return the child for ``router``, creating it if needed."""
        node = self.children.get(router)
        if node is None:
            node = PathTreeNode(router=router, depth=self.depth + 1, parent=self)
            self.children[router] = node
        return node

    def iter_subtree(self) -> Iterator["PathTreeNode"]:
        """Depth-first iteration over this node and all its descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def peers_in_subtree(self) -> Iterator[Tuple[PeerId, int]]:
        """Yield ``(peer_id, attachment_depth)`` for every peer under this node."""
        for node in self.iter_subtree():
            for peer_id in node.attached_peers:
                yield peer_id, node.depth

    def __repr__(self) -> str:
        return (
            f"PathTreeNode(router={self.router!r}, depth={self.depth}, "
            f"peers={len(self.attached_peers)}, subtree={self.subtree_peer_count})"
        )


class PathTree:
    """The set of reported paths towards one landmark, organised as a trie.

    Parameters
    ----------
    landmark_id:
        Identifier of the landmark this tree belongs to.
    landmark_router:
        Router the landmark is attached to; used as the trie root.  If not
        given, the root is created lazily from the first inserted path's
        landmark-side router.
    """

    def __init__(self, landmark_id: LandmarkId, landmark_router: Optional[NodeId] = None) -> None:
        self.landmark_id = landmark_id
        self._root: Optional[PathTreeNode] = None
        if landmark_router is not None:
            self._root = PathTreeNode(router=landmark_router, depth=0)
        self._attachment: Dict[PeerId, PathTreeNode] = {}
        self._paths: Dict[PeerId, RouterPath] = {}
        #: Trie nodes examined by the most recent :meth:`closest_peers` call.
        self.last_query_visits: int = 0
        #: Trie nodes examined by all :meth:`closest_peers` calls so far.
        self.total_query_visits: int = 0

    # ------------------------------------------------------------------ state

    @property
    def root(self) -> Optional[PathTreeNode]:
        """The trie root (landmark-side router), or None if still empty."""
        return self._root

    @property
    def peer_count(self) -> int:
        """Number of peers currently registered in this tree."""
        return len(self._attachment)

    @property
    def router_count(self) -> int:
        """Number of distinct routers present in the tree."""
        if self._root is None:
            return 0
        return sum(1 for _ in self._root.iter_subtree())

    def peers(self) -> List[PeerId]:
        """All registered peer identifiers."""
        return list(self._attachment)

    def has_peer(self, peer_id: PeerId) -> bool:
        """True if ``peer_id`` is registered in this tree."""
        return peer_id in self._attachment

    def path_of(self, peer_id: PeerId) -> RouterPath:
        """The path ``peer_id`` registered with."""
        if peer_id not in self._paths:
            raise UnknownPeerError(peer_id)
        return self._paths[peer_id]

    def attachment_node(self, peer_id: PeerId) -> PathTreeNode:
        """The trie node (access router) the peer is attached to."""
        if peer_id not in self._attachment:
            raise UnknownPeerError(peer_id)
        return self._attachment[peer_id]

    def max_depth(self) -> int:
        """Deepest router depth in the tree (0 for an empty/one-node tree)."""
        if self._root is None:
            return 0
        return max(node.depth for node in self._root.iter_subtree())

    # ----------------------------------------------------------------- insert

    def insert(self, path: RouterPath) -> PathTreeNode:
        """Insert a peer's path; returns the node the peer got attached to.

        The cost is linear in the path length (bounded by the network
        diameter, ~15–30 hops), independent of the number of peers already in
        the tree — this is the cheap "newcomer insertion" the paper claims.
        Re-registering an already-known peer replaces its previous path.
        """
        if path.landmark_id != self.landmark_id:
            raise RegistrationError(
                f"path of peer {path.peer_id!r} targets landmark {path.landmark_id!r}, "
                f"but this tree belongs to landmark {self.landmark_id!r}"
            )
        if path.peer_id in self._attachment:
            self.remove(path.peer_id)

        reversed_routers = path.from_landmark()
        if self._root is None:
            self._root = PathTreeNode(router=reversed_routers[0], depth=0)
        elif self._root.router != reversed_routers[0]:
            raise RegistrationError(
                f"path of peer {path.peer_id!r} ends at router {reversed_routers[0]!r}, "
                f"but the tree of landmark {self.landmark_id!r} is rooted at "
                f"{self._root.router!r}"
            )

        node = self._root
        for router in reversed_routers[1:]:
            node = node.ensure_child(router)

        node.attached_peers.add(path.peer_id)
        self._attachment[path.peer_id] = node
        self._paths[path.peer_id] = path
        # Propagate the subtree count up to the root.
        current: Optional[PathTreeNode] = node
        while current is not None:
            current.subtree_peer_count += 1
            current = current.parent
        return node

    def remove(self, peer_id: PeerId) -> None:
        """Remove a peer (e.g. on departure); prunes now-empty branches."""
        if peer_id not in self._attachment:
            raise UnknownPeerError(peer_id)
        node = self._attachment.pop(peer_id)
        del self._paths[peer_id]
        node.attached_peers.discard(peer_id)

        current: Optional[PathTreeNode] = node
        while current is not None:
            current.subtree_peer_count -= 1
            current = current.parent

        # Prune empty leaves so the trie does not grow without bound under churn.
        current = node
        while (
            current is not None
            and current.parent is not None
            and current.subtree_peer_count == 0
            and not current.children
        ):
            parent = current.parent
            del parent.children[current.router]
            current = parent

    # ----------------------------------------------------------------- queries

    def lowest_common_ancestor(self, peer_a: PeerId, peer_b: PeerId) -> PathTreeNode:
        """Branch router node of two registered peers."""
        node_a = self.attachment_node(peer_a)
        node_b = self.attachment_node(peer_b)
        while node_a.depth > node_b.depth:
            node_a = node_a.parent  # type: ignore[assignment]
        while node_b.depth > node_a.depth:
            node_b = node_b.parent  # type: ignore[assignment]
        while node_a is not node_b:
            node_a = node_a.parent  # type: ignore[assignment]
            node_b = node_b.parent  # type: ignore[assignment]
        return node_a

    def tree_distance(self, peer_a: PeerId, peer_b: PeerId) -> int:
        """Inferred hop distance ``dtree`` between two registered peers.

        Each peer is one hop away from its attachment (access) router, hence
        the ``+ 1`` per side.
        """
        if peer_a == peer_b:
            return 0
        node_a = self.attachment_node(peer_a)
        node_b = self.attachment_node(peer_b)
        lca = self.lowest_common_ancestor(peer_a, peer_b)
        hops_a = node_a.depth - lca.depth + 1
        hops_b = node_b.depth - lca.depth + 1
        return hops_a + hops_b

    def closest_peers(
        self,
        peer_id: PeerId,
        k: int,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[Tuple[PeerId, int]]:
        """Return up to ``k`` peers closest to ``peer_id`` by tree distance.

        Best-first frontier search guided by ``subtree_peer_count``.  The
        frontier holds two kinds of entries, each keyed by a lower bound on
        the ``dtree`` of any peer reachable through it:

        * *ancestor* entries — the next node on the origin's root path.  A
          peer whose branch point is that ancestor is at least
          ``(origin.depth - ancestor.depth) + 2`` away;
        * *subtree* entries — a node hanging off an already-expanded ancestor
          (the lowest common ancestor of its whole subtree with the origin).
          Peers attached at the node are exactly ``bound`` away, deeper peers
          strictly farther.

        Because a popped entry's bound equals the exact ``dtree`` of the
        peers attached at its node, peers are discovered in non-decreasing
        ``dtree`` order; the walk stops once the frontier's best bound
        exceeds the ``k``-th best distance found.  Empty subtrees
        (``subtree_peer_count == 0``) are never pushed, and subtrees whose
        bound already exceeds the ``k``-th best are pruned at push time, so
        the visit count is O(k + depth + branching) instead of the size of
        every sibling subtree.

        Each call records the number of trie nodes examined in
        ``last_query_visits`` (and accumulates ``total_query_visits``) so
        benchmarks can assert the sub-linear behaviour.

        Returns a list of ``(peer_id, dtree)`` sorted by ``dtree`` then peer id.
        """
        self.last_query_visits = 0
        if k <= 0:
            return []
        origin = self.attachment_node(peer_id)
        excluded = {peer_id}
        if exclude:
            excluded |= set(exclude)

        # Heap entries: (bound, order, node, lca_depth, skip_child).
        # Ancestor entries satisfy node.depth == lca_depth and carry the child
        # subtree already explored in ``skip_child``; subtree entries satisfy
        # node.depth > lca_depth and never skip anything.
        order = 0
        heap: List[Tuple[int, int, PathTreeNode, int, Optional[PathTreeNode]]] = [
            (2, order, origin, origin.depth, None)
        ]
        results: List[Tuple[PeerId, int]] = []
        kth_distance: Optional[int] = None
        visits = 0

        while heap:
            bound, _, node, lca_depth, skip_child = heapq.heappop(heap)
            if kth_distance is not None and bound > kth_distance:
                break
            visits += 1
            for candidate in node.attached_peers:
                if candidate not in excluded:
                    results.append((candidate, bound))
            if kth_distance is None and len(results) >= k:
                kth_distance = results[k - 1][1]

            if node.depth == lca_depth:
                # Ancestor entry: fan out into unexplored child subtrees and
                # continue up the root path.
                child_bound = bound + 1  # hops_origin + 2 == bound + 1
                if kth_distance is None or child_bound <= kth_distance:
                    for child in node.children.values():
                        if child is not skip_child and child.subtree_peer_count > 0:
                            order += 1
                            heap_entry = (child_bound, order, child, lca_depth, None)
                            heapq.heappush(heap, heap_entry)
                parent = node.parent
                if parent is not None:
                    parent_bound = origin.depth - parent.depth + 2
                    if kth_distance is None or parent_bound <= kth_distance:
                        order += 1
                        heapq.heappush(heap, (parent_bound, order, parent, parent.depth, node))
            else:
                # Subtree entry: descend, one extra hop per level.
                child_bound = bound + 1
                if kth_distance is None or child_bound <= kth_distance:
                    for child in node.children.values():
                        if child.subtree_peer_count > 0:
                            order += 1
                            heapq.heappush(heap, (child_bound, order, child, lca_depth, None))

        self.last_query_visits = visits
        self.total_query_visits += visits
        results.sort(key=lambda item: (item[1], repr(item[0])))
        del results[k:]
        return results

    def all_pairs_tree_distance(self) -> Dict[Tuple[PeerId, PeerId], int]:
        """Exhaustive dtree for every unordered pair (small populations only)."""
        peers = self.peers()
        result: Dict[Tuple[PeerId, PeerId], int] = {}
        for i, peer_a in enumerate(peers):
            for peer_b in peers[i + 1 :]:
                result[(peer_a, peer_b)] = self.tree_distance(peer_a, peer_b)
        return result

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._attachment

    def __len__(self) -> int:
        return len(self._attachment)

    def __repr__(self) -> str:
        return (
            f"PathTree(landmark={self.landmark_id!r}, peers={self.peer_count}, "
            f"routers={self.router_count})"
        )
