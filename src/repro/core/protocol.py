"""Message types of the two-round join protocol.

The protocol exchanges exactly three application messages per newcomer:

1. ``JoinRequest`` — the newcomer asks the management server which landmarks
   exist (bootstrap information).
2. ``PathReport`` — after probing, the newcomer uploads its recorded router
   path towards its chosen landmark (round 1 of the paper's description).
3. ``NeighborResponse`` — the server answers with the estimated-closest peers
   (round 2).

The messages are plain dataclasses so they can be carried by the discrete-
event simulator's network layer (:mod:`repro.sim.network`) or used directly
in in-process experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .path import LandmarkId, NodeId, PeerId, RouterPath


@dataclass(frozen=True)
class LandmarkDescriptor:
    """What a newcomer needs to know about one landmark."""

    landmark_id: LandmarkId
    router: NodeId


@dataclass(frozen=True)
class JoinRequest:
    """Newcomer → server: announce arrival and ask for the landmark list."""

    peer_id: PeerId


@dataclass(frozen=True)
class JoinResponse:
    """Server → newcomer: the landmarks available for probing."""

    peer_id: PeerId
    landmarks: Tuple[LandmarkDescriptor, ...]

    @classmethod
    def for_landmarks(
        cls, peer_id: PeerId, landmarks: Sequence[Tuple[LandmarkId, NodeId]]
    ) -> "JoinResponse":
        """Build a response from ``(landmark_id, router)`` pairs."""
        return cls(
            peer_id=peer_id,
            landmarks=tuple(
                LandmarkDescriptor(landmark_id=lid, router=router) for lid, router in landmarks
            ),
        )


@dataclass(frozen=True)
class PathReport:
    """Newcomer → server: the recorded path towards the chosen landmark."""

    peer_id: PeerId
    path: RouterPath

    @property
    def landmark_id(self) -> LandmarkId:
        """Landmark the reported path leads to."""
        return self.path.landmark_id


@dataclass(frozen=True)
class NeighborRecommendation:
    """One recommended neighbour with its estimated distance."""

    peer_id: PeerId
    estimated_distance: float


@dataclass(frozen=True)
class NeighborResponse:
    """Server → newcomer: the estimated-closest peers."""

    peer_id: PeerId
    neighbors: Tuple[NeighborRecommendation, ...]

    @classmethod
    def from_pairs(
        cls, peer_id: PeerId, pairs: Sequence[Tuple[PeerId, float]]
    ) -> "NeighborResponse":
        """Build a response from ``(neighbor_id, distance)`` pairs."""
        return cls(
            peer_id=peer_id,
            neighbors=tuple(
                NeighborRecommendation(peer_id=neighbor, estimated_distance=float(distance))
                for neighbor, distance in pairs
            ),
        )

    def neighbor_ids(self) -> List[PeerId]:
        """Just the recommended peer identifiers, closest first."""
        return [entry.peer_id for entry in self.neighbors]


@dataclass(frozen=True)
class LeaveNotice:
    """Peer → server: graceful departure."""

    peer_id: PeerId


@dataclass
class JoinTranscript:
    """Record of one complete join, used by setup-delay experiments.

    Times are in simulated milliseconds relative to the join start.
    """

    peer_id: PeerId
    landmark_id: Optional[LandmarkId] = None
    probe_started_at: Optional[float] = None
    probe_finished_at: Optional[float] = None
    report_sent_at: Optional[float] = None
    neighbors_received_at: Optional[float] = None
    neighbors: List[NeighborRecommendation] = field(default_factory=list)

    @property
    def probe_duration(self) -> Optional[float]:
        """Time spent probing the landmark path."""
        if self.probe_started_at is None or self.probe_finished_at is None:
            return None
        return self.probe_finished_at - self.probe_started_at

    @property
    def setup_delay(self) -> Optional[float]:
        """Total time from join start to neighbour list received."""
        if self.probe_started_at is None or self.neighbors_received_at is None:
            return None
        return self.neighbors_received_at - self.probe_started_at
