"""Multi-process shard backend: one ``ManagementServer`` per worker process.

:class:`~repro.core.sharded.ShardedManagementServer` drives its shards
through the :class:`~repro.core.sharded.ShardBackend` protocol, and PR 2 left
"implement a remote backend and pass it via ``shard_factory=``" as the named
next step off a single process.  This module provides that backend: a
:class:`ProcessShardBackend` proxies the five shard methods to a full
:class:`~repro.core.management_server.ManagementServer` (with
``maintain_cache=False`` — the coordinator owns the only cache) running in a
worker process, and a :class:`ShardSupervisor` owns the worker's lifecycle.

Wire protocol
-------------
Each shard talks over one duplex :func:`multiprocessing.Pipe`, strictly
request/reply (the coordinator is single-threaded per shard, so requests
never interleave).  A message is one **length-prefixed frame**::

    frame   = header body
    header  = !I big-endian byte length of body
    body    = serialised message tuple

    request = (request_id, op, args)      request_id > 0, or 0 for one-way
    reply   = (request_id, "ok",  value)
            | (request_id, "err", exception_type_name, message)

The header is redundant with the pipe's own message boundaries on purpose:
a frame whose declared length disagrees with its byte count means the
channel is corrupt (truncated write, desynchronised reply), and the client
turns it into a typed :class:`~repro.exceptions.ShardUnavailableError`
instead of a pickle traceback.  Bodies contain only plain data — the typed
codec below flattens :class:`~repro.core.path.RouterPath` and candidate
tuples into tagged tuples before serialisation — so the wire format is
independent of repro class layout and a worker crash mid-write can never
surface as a half-unpickled domain object.

Errors raised by the worker's ``ManagementServer`` travel as
``(type_name, str(message))`` and are re-raised client-side as the same
exception type with the same message (resolved from
:mod:`repro.exceptions`, then builtins), which is exactly the surface the
equivalence oracle compares — so the process plane reproduces the inline
plane's errors byte for byte.  (Reconstructed exceptions carry the message
but not constructor-specific attributes like ``peer_id``.)

Batching and chunking rules
---------------------------
* **Arrival is batched**: a co-arriving batch crosses the process boundary
  as ONE ``validate_batch`` request and ONE ``insert_paths`` request per
  shard, each carrying every encoded path for that shard, so arrival cost
  per peer stays O(path length), not O(round trips).
* **fill_candidates is chunked and lazy**: the worker keeps the lazily
  heap-merged candidate stream; the client generator opens it on first use
  (``fill_open``), pulls :data:`DEFAULT_FILL_CHUNK` candidates per
  ``fill_next`` round trip, and sends a one-way ``fill_close`` when the
  coordinator abandons the merge early — so the inter-shard merge stays lazy
  across the process boundary and a query that needs two fill candidates
  ships two chunks, not every foreign peer.
* **One-way notifications** (``fill_close``, ``shutdown``) use
  ``request_id == 0`` and produce no reply, so an abandoned stream's cleanup
  can be sent from a generator finaliser without desynchronising the strict
  request/reply order of the pipe.

Fault model
-----------
Every transport failure — dead worker, broken, unwritable or timed-out
pipe, malformed frame or reply (:class:`~repro.exceptions.WireProtocolError`
internally, a type deliberately distinct from the join-protocol
``ProtocolError``) — raises
:class:`~repro.exceptions.ShardUnavailableError` naming the shard, and
poisons the channel so subsequent requests fail fast until
:meth:`ShardSupervisor.restart`.  Fill-stream ids are scoped to one worker
incarnation (:attr:`ShardSupervisor.epoch`), so consumers outliving a
restart fail typed instead of touching the new worker's streams.  The supervisor keeps a **per-shard operation journal** of every
successful mutating request (``register_landmark``, ``insert_paths``,
``unregister``); :meth:`ShardSupervisor.restart` spawns a fresh worker and
replays the journal in order, which rebuilds the shard's trees and min-hop
orderings to a byte-identical state (insert order determines tree shape;
the orderings are rebuilt lazily from the same sorted keys).  Mutating
requests only touch coordinator state *after* the shard acknowledged them,
so a crash mid-operation leaves the coordinator consistent with the journal
for single-operation arrival/departure/query.  A batch ``register_peers``
is not atomic across a shard crash: the coordinator may have recorded peers
whose insert never reached the failed shard — restart, replay and re-register
the batch to converge.  The journal is append-only and unbounded; compaction
(snapshot + truncate) is the named follow-up in ROADMAP.md.
"""

from __future__ import annotations

import builtins
import itertools
import multiprocessing
import pickle
import select
import struct
from typing import (
    Callable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import exceptions as _exceptions
from ..exceptions import ShardUnavailableError, WireProtocolError
from .management_server import ManagementServer
from .path import LandmarkId, PeerId, RouterPath
from .path_tree import PathTree

__all__ = [
    "BACKENDS",
    "DEFAULT_FILL_CHUNK",
    "ProcessShardBackend",
    "ShardSupervisor",
    "decode_frame",
    "decode_path",
    "encode_frame",
    "encode_path",
    "process_shard_factory",
    "shard_factory_for",
]

#: The shard-backend implementations selectable by name — the single source
#: for every ``backend=`` surface (ScenarioConfig, the perf suite, the CLI).
BACKENDS = ("inline", "process")

#: Candidates shipped per ``fill_next`` round trip.  Small enough that a
#: query needing one or two fill slots pays one chunk, large enough that a
#: deep fill is not dominated by round trips.
DEFAULT_FILL_CHUNK = 32

_HEADER = struct.Struct("!I")

#: Seconds a request waits for its reply before declaring the shard gone.
DEFAULT_REQUEST_TIMEOUT = 60.0


# ------------------------------------------------------------------- codec

_PATH_TAG = "path"


def encode_path(path: RouterPath) -> Tuple[object, ...]:
    """Flatten a :class:`RouterPath` into a tagged plain-data tuple."""
    return (_PATH_TAG, path.peer_id, path.landmark_id, tuple(path.routers), path.rtt_ms)


def decode_path(data: Sequence[object]) -> RouterPath:
    """Rebuild a :class:`RouterPath` from :func:`encode_path` output."""
    if len(data) != 5 or data[0] != _PATH_TAG:
        raise WireProtocolError(f"malformed path frame: {data!r}")
    _, peer_id, landmark_id, routers, rtt_ms = data
    return RouterPath(
        peer_id=peer_id,
        landmark_id=landmark_id,
        routers=tuple(routers),  # type: ignore[arg-type]
        rtt_ms=rtt_ms,  # type: ignore[arg-type]
    )


def encode_frame(message: Tuple[object, ...]) -> bytes:
    """Serialise one message tuple into a length-prefixed frame."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(body)) + body


def decode_frame(frame: bytes) -> Tuple[object, ...]:
    """Parse one frame; raise :class:`WireProtocolError` on any inconsistency."""
    if len(frame) < _HEADER.size:
        raise WireProtocolError(f"frame shorter than its header: {len(frame)} bytes")
    (declared,) = _HEADER.unpack_from(frame)
    if declared != len(frame) - _HEADER.size:
        raise WireProtocolError(
            f"frame declares {declared} body bytes but carries {len(frame) - _HEADER.size}"
        )
    message = pickle.loads(frame[_HEADER.size :])
    if not isinstance(message, tuple) or len(message) < 2:
        raise WireProtocolError(f"malformed message: {message!r}")
    return message


def _rebuild_exception(type_name: str, message: str) -> BaseException:
    """Client-side twin of a worker exception: same type, same ``str()``.

    The instance is created without running the original constructor (which
    may require domain arguments the wire does not carry), so it carries the
    message but not attributes like ``peer_id``.
    """
    candidate = getattr(_exceptions, type_name, None)
    if not (isinstance(candidate, type) and issubclass(candidate, BaseException)):
        candidate = getattr(builtins, type_name, None)
    if not (isinstance(candidate, type) and issubclass(candidate, BaseException)):
        return WireProtocolError(f"{type_name}: {message}")
    error = candidate.__new__(candidate)
    BaseException.__init__(error, message)
    return error


# ------------------------------------------------------------------ worker


def _shard_worker(conn, neighbor_set_size: int) -> None:
    """Worker-process main loop: one ``ManagementServer`` behind the pipe.

    Runs until a ``shutdown`` notification, a closed pipe (the supervisor
    died), or an undecodable frame (a poisoned channel is unrecoverable, so
    the worker exits and the client surfaces the EOF as unavailability).
    """
    server = ManagementServer(neighbor_set_size=neighbor_set_size, maintain_cache=False)
    streams: dict = {}
    stream_ids = itertools.count(1)
    try:
        while True:
            try:
                message = decode_frame(conn.recv_bytes())
            except (EOFError, OSError, WireProtocolError, pickle.UnpicklingError):
                break
            request_id, op = message[0], message[1]
            args = message[2] if len(message) > 2 else ()
            if op == "shutdown":
                break
            if op == "fill_close":
                generator = streams.pop(args[0], None)
                if generator is not None:
                    generator.close()
                continue
            try:
                result = _dispatch(server, streams, stream_ids, op, args)
            except Exception as error:  # noqa: BLE001 - errors are protocol payload
                reply = (request_id, "err", type(error).__name__, str(error))
            else:
                reply = (request_id, "ok", result)
            if request_id:
                conn.send_bytes(encode_frame(reply))
    finally:
        conn.close()


def _dispatch(server: ManagementServer, streams: dict, stream_ids, op: str, args):
    """Apply one decoded request to the worker's server; return the value."""
    if op == "ping":
        return "pong"
    if op == "register_landmark":
        landmark_id, router = args
        return server.register_landmark(landmark_id, router)
    if op == "validate":
        return server.validate_registrable(decode_path(args[0]))
    if op == "validate_batch":
        rejected = server.first_rejected_path([decode_path(p) for p in args[0]])
        if rejected is None:
            return None
        index, error = rejected
        return (index, type(error).__name__, str(error))
    if op == "insert_paths":
        encoded_paths, validate = args
        return server.insert_paths([decode_path(p) for p in encoded_paths], validate=validate)
    if op == "unregister":
        return server.unregister_peer(args[0])
    if op == "local_closest":
        peer_id, k = args
        return tuple(server.local_closest(peer_id, k))
    if op == "fill_open":
        bases_items, exclude_peer = args
        stream_id = next(stream_ids)
        streams[stream_id] = server.fill_candidates(dict(bases_items), exclude_peer=exclude_peer)
        return stream_id
    if op == "fill_next":
        stream_id, chunk_size = args
        generator = streams.get(stream_id)
        if generator is None:
            raise WireProtocolError(f"unknown fill stream {stream_id}")
        chunk = tuple(itertools.islice(generator, chunk_size))
        done = len(chunk) < chunk_size
        if done:
            streams.pop(stream_id, None)
        return (done, chunk)
    if op == "tree":
        tree = server.tree(args[0])
        return (
            tree.root.router if tree.root is not None else None,
            tuple(encode_path(tree.path_of(peer)) for peer in tree.peers()),
            tree.total_query_visits,
            tree.last_query_visits,
        )
    if op == "tree_distance":
        landmark_id, peer_a, peer_b = args
        return server.tree_distance(landmark_id, peer_a, peer_b)
    if op == "total_tree_visits":
        return server.total_tree_visits()
    if op == "total_insert_work":
        return tuple(server.total_insert_work())
    if op == "stats":
        return server.stats.as_dict()
    raise WireProtocolError(f"unknown operation {op!r}")


# -------------------------------------------------------------- supervisor


class ShardSupervisor:
    """Owns one shard worker: spawn, request plumbing, journal, restart.

    The supervisor is transport-level — it moves opaque ``(op, args)``
    requests and keeps the **operation journal**: every mutating request
    that the worker acknowledged, in order.  :meth:`restart` spawns a fresh
    worker and replays the journal, restoring the shard's data plane to the
    exact pre-crash state (see the module docstring's fault model).

    Parameters
    ----------
    name:
        The shard's name; every :class:`ShardUnavailableError` carries it.
    neighbor_set_size:
        Passed to the worker's ``ManagementServer``.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` where
        available (workers are cheap clones) and ``spawn`` elsewhere.
    request_timeout:
        Seconds to wait for a reply before declaring the shard unavailable.
    """

    def __init__(
        self,
        name: str,
        neighbor_set_size: int,
        start_method: Optional[str] = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.name = name
        self.neighbor_set_size = neighbor_set_size
        self.request_timeout = request_timeout
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._context = multiprocessing.get_context(start_method)
        self._journal: List[Tuple[str, Tuple[object, ...]]] = []
        self._next_request_id = itertools.count(1)
        self._conn = None
        self._process = None
        self._poisoned: Optional[str] = None
        self._closed = False
        self._epoch = 0
        self._spawn()

    # ------------------------------------------------------------- lifecycle

    @property
    def process(self):
        """The live worker :class:`multiprocessing.Process` (or ``None``)."""
        return self._process

    @property
    def journal(self) -> List[Tuple[str, Tuple[object, ...]]]:
        """The acknowledged mutating operations, in order (a copy)."""
        return list(self._journal)

    @property
    def epoch(self) -> int:
        """Worker incarnation counter (bumped by every spawn/restart).

        Stream state (fill streams' worker-side ids) is only valid within
        one epoch: a consumer created before a restart must not touch — or
        tear down — streams belonging to the new worker.
        """
        return self._epoch

    def _spawn(self) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_shard_worker,
            args=(child_conn, self.neighbor_set_size),
            name=f"repro-{self.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._conn = parent_conn
        self._process = process
        self._poisoned = None
        self._epoch += 1

    def restart(self) -> None:
        """Spawn a fresh worker and replay the journal (crash recovery)."""
        if self._closed:
            raise ShardUnavailableError(self.name, "supervisor is closed")
        self._teardown_worker()
        self._spawn()
        for op, args in self._journal:
            self._roundtrip(op, args)

    def close(self) -> None:
        """Shut the worker down and release the pipe (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._teardown_worker()

    def _teardown_worker(self) -> None:
        conn, process = self._conn, self._process
        self._conn = None
        self._process = None
        if conn is not None:
            try:
                conn.send_bytes(encode_frame((0, "shutdown")))
            except (OSError, ValueError):
                pass
        if process is not None:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - SIGTERM-ignoring worker
                process.kill()
                process.join()
        if conn is not None:
            conn.close()

    def health_check(self, timeout: float = 5.0) -> bool:
        """True when the worker is alive and answering pings."""
        try:
            return self.request("ping", (), timeout=timeout) == "pong"
        except ShardUnavailableError:
            return False

    # --------------------------------------------------------------- requests

    def request(
        self,
        op: str,
        args: Tuple[object, ...],
        journal: bool = False,
        timeout: Optional[float] = None,
    ) -> object:
        """One request/reply round trip; journals mutating ops on success."""
        value = self._roundtrip(op, args, timeout=timeout)
        if journal:
            self._journal.append((op, args))
        return value

    def notify(self, op: str, args: Tuple[object, ...]) -> None:
        """One-way notification (no reply; failures are swallowed).

        Used for stream cleanup from generator finalisers: the worker
        processes it in pipe order and sends nothing back, so it can never
        desynchronise an in-flight request/reply pair.
        """
        conn = self._conn
        if conn is None or self._poisoned is not None:
            return
        try:
            conn.send_bytes(encode_frame((0, op, args)))
        except (OSError, ValueError):
            pass

    def _roundtrip(
        self, op: str, args: Tuple[object, ...], timeout: Optional[float] = None
    ) -> object:
        if self._closed:
            raise ShardUnavailableError(self.name, "supervisor is closed")
        if self._poisoned is not None:
            raise ShardUnavailableError(self.name, f"channel poisoned: {self._poisoned}")
        process, conn = self._process, self._conn
        if process is None or conn is None or not process.is_alive():
            raise ShardUnavailableError(self.name, "worker process is not running")
        deadline = self.request_timeout if timeout is None else timeout
        request_id = next(self._next_request_id)
        try:
            # A worker that stopped reading while staying alive would make a
            # blocking send hang with the pipe buffer full, so probe
            # writability under the same deadline as the reply.  The probe
            # itself must never break the typed-error contract: where it
            # cannot run (fd beyond FD_SETSIZE, platforms whose pipe handles
            # select() rejects), fall back to sending un-probed — the
            # residual blocking risk of the Connection API, also present for
            # frames larger than the pipe buffer once a write has started.
            try:
                writable = select.select([], [conn], [], deadline)[1]
            except (OSError, ValueError):
                writable = [conn]
            if not writable:
                self._poisoned = f"pipe not writable for {op!r} within timeout"
                raise ShardUnavailableError(self.name, self._poisoned)
            conn.send_bytes(encode_frame((request_id, op, args)))
            if not conn.poll(deadline):
                self._poisoned = f"no reply to {op!r} within timeout"
                raise ShardUnavailableError(self.name, self._poisoned)
            reply = decode_frame(conn.recv_bytes())
        except ShardUnavailableError:
            raise
        except (EOFError, OSError, WireProtocolError, pickle.UnpicklingError) as error:
            # Any transport failure leaves the request/reply order unknown:
            # poison the channel so later requests fail fast until restart().
            self._poisoned = f"transport failure during {op!r}: {type(error).__name__}"
            raise ShardUnavailableError(
                self.name, f"worker died during {op!r}: {type(error).__name__}: {error}"
            ) from error
        if reply[0] != request_id or len(reply) < 3:
            self._poisoned = f"out-of-order reply to {op!r}"
            raise ShardUnavailableError(self.name, self._poisoned)
        if reply[1] == "ok":
            return reply[2]
        if reply[1] == "err" and len(reply) == 4:
            error = _rebuild_exception(str(reply[2]), str(reply[3]))
            if isinstance(error, WireProtocolError):
                # The worker saw a protocol violation from us: surface it as
                # unavailability, never as a domain (join-protocol) error.
                raise ShardUnavailableError(
                    self.name, f"worker reported a protocol violation: {error}"
                ) from error
            raise error
        self._poisoned = f"malformed reply to {op!r}"
        raise ShardUnavailableError(self.name, self._poisoned)


# ----------------------------------------------------------------- backend


class ProcessShardBackend:
    """A :class:`~repro.core.sharded.ShardBackend` living in a worker process.

    Implements the shard-facing surface by proxying every call to a
    ``ManagementServer(maintain_cache=False)`` in the supervised worker,
    following the module docstring's batching/chunking rules.  Pass
    instances via ``ShardedManagementServer(shard_factory=...)`` — see
    :func:`process_shard_factory` for the canonical wiring.

    Always :meth:`close` a backend (or use it as a context manager): the
    worker is a real OS process and the pipe a real file descriptor.
    """

    def __init__(
        self,
        neighbor_set_size: int = 5,
        name: str = "process-shard",
        fill_chunk_size: int = DEFAULT_FILL_CHUNK,
        start_method: Optional[str] = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.name = name
        self.fill_chunk_size = fill_chunk_size
        self.supervisor = ShardSupervisor(
            name=name,
            neighbor_set_size=neighbor_set_size,
            start_method=start_method,
            request_timeout=request_timeout,
        )

    # ---------------------------------------------------------- shard surface

    def register_landmark(self, landmark_id: LandmarkId, router) -> None:
        self.supervisor.request("register_landmark", (landmark_id, router), journal=True)

    def validate_registrable(self, path: RouterPath) -> None:
        self.supervisor.request("validate", (encode_path(path),))

    def first_rejected_path(
        self, paths: Sequence[RouterPath]
    ) -> Optional[Tuple[int, BaseException]]:
        """Batch validation in one round trip (the arrival batching rule)."""
        result = self.supervisor.request(
            "validate_batch", (tuple(encode_path(path) for path in paths),)
        )
        if result is None:
            return None
        index, type_name, message = result  # type: ignore[misc]
        return (int(index), _rebuild_exception(str(type_name), str(message)))

    def insert_paths(self, paths: Sequence[RouterPath], validate: bool = True) -> None:
        self.supervisor.request(
            "insert_paths",
            (tuple(encode_path(path) for path in paths), validate),
            journal=True,
        )

    def unregister_peer(self, peer_id: PeerId) -> None:
        self.supervisor.request("unregister", (peer_id,), journal=True)

    def local_closest(self, peer_id: PeerId, k: int) -> List[Tuple[PeerId, float]]:
        result = self.supervisor.request("local_closest", (peer_id, k))
        return [tuple(pair) for pair in result]  # type: ignore[union-attr, misc]

    def fill_candidates(
        self,
        bases: Mapping[LandmarkId, float],
        exclude_peer: Optional[PeerId] = None,
    ) -> Iterator[Tuple[float, str, PeerId]]:
        """Chunked client view of the worker's lazy candidate stream.

        The worker-side stream is opened on the first ``next()`` (a never
        consumed stream costs nothing on either side) and torn down by a
        one-way ``fill_close`` when the consumer stops early.
        """
        bases_items = tuple(bases.items())
        chunk_size = self.fill_chunk_size
        supervisor = self.supervisor

        def stream() -> Iterator[Tuple[float, str, PeerId]]:
            epoch = supervisor.epoch
            stream_id = supervisor.request("fill_open", (bases_items, exclude_peer))
            exhausted = False
            try:
                while True:
                    if supervisor.epoch != epoch:
                        # The worker restarted mid-stream: our stream id now
                        # belongs to a different incarnation.
                        raise ShardUnavailableError(
                            self.name, "worker restarted mid fill stream"
                        )
                    done, chunk = supervisor.request("fill_next", (stream_id, chunk_size))  # type: ignore[misc]
                    for item in chunk:
                        yield tuple(item)  # type: ignore[misc]
                    if done:
                        exhausted = True
                        return
            finally:
                # Only tear down a stream on the worker that owns it: after a
                # restart the same id may name a fresh, unrelated stream.
                if not exhausted and supervisor.epoch == epoch:
                    supervisor.notify("fill_close", (stream_id,))

        return stream()

    def tree(self, landmark_id: LandmarkId) -> PathTree:
        """A local **snapshot** of the worker's tree (for diagnostics).

        Rebuilt from the worker's paths in registration order, so structure
        and ``tree_distance`` answers are byte-identical to the live tree;
        the query-visit counters are copied across.  Mutating the snapshot
        does not affect the worker.
        """
        root, encoded_paths, total_visits, last_visits = self.supervisor.request(  # type: ignore[misc]
            "tree", (landmark_id,)
        )
        snapshot = PathTree(landmark_id=landmark_id, landmark_router=root)
        for encoded in encoded_paths:  # type: ignore[union-attr]
            snapshot.insert(decode_path(encoded))
        snapshot.total_query_visits = int(total_visits)  # type: ignore[arg-type]
        snapshot.last_query_visits = int(last_visits)  # type: ignore[arg-type]
        return snapshot

    def tree_distance(self, landmark_id: LandmarkId, peer_a: PeerId, peer_b: PeerId) -> float:
        """``dtree`` of a same-landmark pair: one scalar round trip.

        This is how the coordinator's ``estimate_distance`` reaches a remote
        tree — :meth:`tree` snapshots are for diagnostics only.
        """
        return float(
            self.supervisor.request("tree_distance", (landmark_id, peer_a, peer_b))  # type: ignore[arg-type]
        )

    def total_tree_visits(self) -> int:
        return int(self.supervisor.request("total_tree_visits", ()))  # type: ignore[arg-type]

    def total_insert_work(self) -> Tuple[int, int]:
        """The worker's ``(nodes_created, nodes_touched)`` insert counters."""
        created, touched = self.supervisor.request("total_insert_work", ())  # type: ignore[misc]
        return (int(created), int(touched))  # type: ignore[arg-type]

    # ------------------------------------------------------------ diagnostics

    def worker_stats(self) -> dict:
        """The worker server's :class:`ServerStats` counters (a copy)."""
        return dict(self.supervisor.request("stats", ()))  # type: ignore[arg-type, call-overload]

    def health_check(self, timeout: float = 5.0) -> bool:
        """True when the shard's worker is alive and answering."""
        return self.supervisor.health_check(timeout=timeout)

    def restart(self) -> None:
        """Respawn the worker and replay the journal (crash recovery)."""
        self.supervisor.restart()

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Stop the worker and close the pipe (idempotent)."""
        self.supervisor.close()

    def __enter__(self) -> "ProcessShardBackend":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:  # noqa: BLE001 - never raise from a finaliser
            pass

    def __repr__(self) -> str:
        process = self.supervisor.process
        state = "alive" if process is not None and process.is_alive() else "down"
        return f"ProcessShardBackend(name={self.name!r}, worker={state})"


def process_shard_factory(
    neighbor_set_size: int = 5,
    fill_chunk_size: int = DEFAULT_FILL_CHUNK,
    start_method: Optional[str] = None,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> Callable[[], ProcessShardBackend]:
    """A ``shard_factory`` for :class:`ShardedManagementServer`.

    Each call of the returned factory spawns one worker process named
    ``shard-0``, ``shard-1``, … in creation order — the names that
    :class:`~repro.exceptions.ShardUnavailableError` reports on failure.
    Close the owning ``ShardedManagementServer`` (or each backend) to reap
    the workers.
    """
    indexes = itertools.count()

    def factory() -> ProcessShardBackend:
        return ProcessShardBackend(
            neighbor_set_size=neighbor_set_size,
            name=f"shard-{next(indexes)}",
            fill_chunk_size=fill_chunk_size,
            start_method=start_method,
            request_timeout=request_timeout,
        )

    return factory


def shard_factory_for(
    backend: str, neighbor_set_size: int = 5, **kwargs
) -> Optional[Callable[[], ProcessShardBackend]]:
    """The ``ShardedManagementServer(shard_factory=...)`` value for a backend.

    ``"inline"`` returns ``None`` (the coordinator's default in-process
    shards); ``"process"`` returns a :func:`process_shard_factory`.  The one
    place backend names map to wiring, shared by scenarios, the perf suite
    and tests.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if backend == "process":
        return process_shard_factory(neighbor_set_size, **kwargs)
    return None
