"""Multi-process shard backend: one ``ManagementServer`` per worker process.

:class:`~repro.core.sharded.ShardedManagementServer` drives its shards
through the :class:`~repro.core.sharded.ShardBackend` protocol, and PR 2 left
"implement a remote backend and pass it via ``shard_factory=``" as the named
next step off a single process.  This module provides that backend: a
:class:`ProcessShardBackend` proxies the five shard methods to a full
:class:`~repro.core.management_server.ManagementServer` (with
``maintain_cache=False`` — the coordinator owns the only cache) running in a
worker process, and a :class:`ShardSupervisor` owns the worker's lifecycle.

The transport-independent half of that story — the operation journal, the
bounded restart+replay+re-issue recovery loop, snapshot compaction, and the
full client-side :class:`~repro.core.sharded.ShardBackend` surface with its
chunked lazy fill streams — lives in :class:`ShardSupervisorBase` and
:class:`SupervisedShardBackend` so the network transport
(:mod:`repro.core.socket_backend`) reuses it wholesale: a socket shard
heals by *reconnect*-with-replay exactly the way a process shard heals by
*restart*-with-replay, under the very same :class:`RecoveryPolicy`.

Wire protocol
-------------
Each shard talks over one duplex :func:`multiprocessing.Pipe`, strictly
request/reply (the coordinator is single-threaded per shard, so requests
never interleave).  A message is one **length-prefixed frame**::

    frame   = header body
    header  = !I big-endian byte length of body
    body    = serialised message tuple

    request = (request_id, op, args)      request_id > 0, or 0 for one-way
    reply   = (request_id, "ok",  value)
            | (request_id, "err", exception_type_name, message)

The header is redundant with the pipe's own message boundaries on purpose:
a frame whose declared length disagrees with its byte count means the
channel is corrupt (truncated write, desynchronised reply), and the client
turns it into a typed :class:`~repro.exceptions.ShardUnavailableError`
instead of a pickle traceback.  Bodies contain only plain data — the typed
codec below flattens :class:`~repro.core.path.RouterPath` and candidate
tuples into tagged tuples before serialisation — so the wire format is
independent of repro class layout and a worker crash mid-write can never
surface as a half-unpickled domain object.

Errors raised by the worker's ``ManagementServer`` travel as
``(type_name, str(message))`` and are re-raised client-side as the same
exception type with the same message (resolved from
:mod:`repro.exceptions`, then builtins), which is exactly the surface the
equivalence oracle compares — so the process plane reproduces the inline
plane's errors byte for byte.  (Reconstructed exceptions carry the message
but not constructor-specific attributes like ``peer_id``.)

Batching and chunking rules
---------------------------
* **Arrival is batched**: a co-arriving batch crosses the process boundary
  as ONE ``validate_batch`` request and ONE ``insert_paths`` request per
  shard, each carrying every encoded path for that shard, so arrival cost
  per peer stays O(path length), not O(round trips).
* **fill_candidates is chunked and lazy**: the worker keeps the lazily
  heap-merged candidate stream; the client generator opens it on first use
  (``fill_open``), pulls :data:`DEFAULT_FILL_CHUNK` candidates per
  ``fill_next`` round trip, and sends a one-way ``fill_close`` when the
  coordinator abandons the merge early — so the inter-shard merge stays lazy
  across the process boundary and a query that needs two fill candidates
  ships two chunks, not every foreign peer.
* **One-way notifications** (``fill_close``, ``shutdown``) use
  ``request_id == 0`` and produce no reply, so an abandoned stream's cleanup
  can be sent from a generator finaliser without desynchronising the strict
  request/reply order of the pipe.

Fault model
-----------
Every transport failure — dead worker, broken, unwritable or timed-out
pipe, malformed frame or reply (:class:`~repro.exceptions.WireProtocolError`
internally, a type deliberately distinct from the join-protocol
``ProtocolError``) — raises
:class:`~repro.exceptions.ShardUnavailableError` naming the shard, and
poisons the channel so subsequent requests fail fast until
:meth:`ShardSupervisor.restart`.  Every round trip draws all of its
blocking phases (writability probe, send, reply wait) from ONE
:class:`~repro.core.budget.DeadlineBudget`, so its worst-case wall time is
bounded by a single ``request_timeout`` regardless of how the slowness is
split between a clogged pipe and a slow worker.  Fill-stream ids are scoped
to one worker incarnation (:attr:`ShardSupervisorBase.epoch`), so consumers
outliving a restart fail typed instead of touching the new worker's
streams.  The supervisor keeps a **per-shard operation journal** of every
successful mutating request (``register_landmark``, ``insert_paths``,
``unregister``); :meth:`ShardSupervisorBase.restart` spawns a fresh worker
and replays the journal in order, which rebuilds the shard's trees and
min-hop orderings to a byte-identical state (insert order determines tree
shape; the orderings are rebuilt lazily from the same sorted keys).
Mutating requests only touch coordinator state *after* the shard
acknowledged them, so a crash mid-operation leaves the coordinator
consistent with the journal for single-operation arrival/departure/query.
A batch ``register_peers`` is not atomic across a shard crash: the
coordinator may have recorded peers whose insert never reached the failed
shard — restart, replay and re-register the batch to converge.

Self-healing
------------
Recovery is **opt-in**: construct the supervisor (or backend, or factory)
with a :class:`RecoveryPolicy` and any transport failure on a recoverable
request triggers a bounded loop of backoff → :meth:`ShardSupervisorBase.
restart` (respawn + replay) → one re-issue of the failed request, instead
of raising on first fault.  Backoff is exponential with a cap, and
deterministic when the policy carries an injected ``rng`` for jitter.  Fill
streams recover too: journal replay rebuilds worker state byte-identically,
so the client reopens the stream on the fresh worker and fast-forwards past
the candidates already yielded, continuing the *identical* stream (this
assumes no mutations landed between the original open and the recovery —
true for query-scoped merges, best-effort for externally held streams).
Without a policy, the first fault raises typed exactly as before.

The journal itself is no longer unbounded: :meth:`ShardSupervisorBase.
compact` asks the worker for a ``snapshot_state`` (a plain-data
serialisation of its landmarks, live paths and landmark distances — see
``ManagementServer.snapshot_state``) and replaces the journal with the
single entry ``("restore_state", (snapshot,))``, so restart cost is
O(live state), not O(operation history).  Pass ``compact_watermark=N`` to
compact automatically whenever the journal reaches ``N`` entries.
"""

from __future__ import annotations

import builtins
import itertools
import multiprocessing
import pickle
import random
import select
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import exceptions as _exceptions
from ..exceptions import ShardUnavailableError, WireProtocolError
from .budget import DeadlineBudget
from .codec import decode_frame, decode_path, encode_frame, encode_path
from .management_server import ManagementServer
from .path import LandmarkId, PeerId, RouterPath
from .path_tree import PathTree

__all__ = [
    "BACKENDS",
    "DEFAULT_FILL_CHUNK",
    "ProcessShardBackend",
    "RecoveryPolicy",
    "ShardRequestHandler",
    "ShardSupervisor",
    "ShardSupervisorBase",
    "SupervisedShardBackend",
    "decode_frame",
    "decode_path",
    "encode_frame",
    "encode_path",
    "process_shard_factory",
    "shard_factory_for",
]

#: The shard-backend implementations selectable by name — the single source
#: for every ``backend=`` surface (ScenarioConfig, the perf suite, the CLI).
#: ``"socket"`` lives in :mod:`repro.core.socket_backend` (asyncio shard
#: servers over TCP / Unix-domain sockets) and is resolved lazily by
#: :func:`shard_factory_for` so importing this module never imports asyncio.
BACKENDS = ("inline", "process", "socket")

#: Candidates shipped per ``fill_next`` round trip.  Small enough that a
#: query needing one or two fill slots pays one chunk, large enough that a
#: deep fill is not dominated by round trips.
DEFAULT_FILL_CHUNK = 32

#: Seconds a request waits for its reply before declaring the shard gone.
#: Applies to *every* round trip — requests, journal replay during restart,
#: the shutdown handshake in close() — so a hung worker can never block the
#: coordinator indefinitely.
DEFAULT_REQUEST_TIMEOUT = 60.0


# ---------------------------------------------------------------- recovery


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a shard supervisor self-heals from transport failures.

    When a recoverable request fails with
    :class:`~repro.exceptions.ShardUnavailableError`, the supervisor runs up
    to ``max_restarts`` attempts of *backoff → restart (respawn + journal
    replay) → re-issue the failed request*, raising the last error when the
    budget is exhausted.  Domain errors (``UnknownPeerError`` and friends)
    are answers, not faults — they never trigger recovery.  For a socket
    shard (:mod:`repro.core.socket_backend`) "restart" means
    reconnect-with-replay; the policy, backoff schedule and deadline
    semantics are identical.

    Parameters
    ----------
    max_restarts:
        Restart+re-issue attempts per failed request.
    backoff_base_s / backoff_multiplier / backoff_cap_s:
        Attempt ``n`` sleeps ``min(base * multiplier**(n-1), cap)`` seconds
        before restarting.  Set ``backoff_base_s=0`` for no delay (tests).
    jitter:
        Fractional jitter applied to each backoff when an ``rng`` is given:
        the delay is scaled by a factor drawn uniformly from
        ``[1 - jitter, 1 + jitter]``.  Without an ``rng`` no jitter is
        applied, keeping the schedule fully deterministic by default.
    rng:
        Injected :class:`random.Random` for deterministic jitter.
    op_deadline_s:
        When set, overrides the supervisor's default per-round-trip deadline
        (``request_timeout``) so recovery-managed planes can run tighter
        deadlines than :data:`DEFAULT_REQUEST_TIMEOUT`.
    sleep:
        Injected sleep callable (tests pass a no-op to skip real delays).
    """

    max_restarts: int = 2
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 2.0
    jitter: float = 0.1
    rng: Optional[random.Random] = None
    op_deadline_s: Optional[float] = None
    sleep: Callable[[float], None] = field(default=time.sleep)

    def backoff_s(self, attempt: int) -> float:
        """Delay before restart ``attempt`` (1-based), jittered if rng given."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
            self.backoff_cap_s,
        )
        if self.rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        return max(delay, 0.0)


def _rebuild_exception(type_name: str, message: str) -> BaseException:
    """Client-side twin of a worker exception: same type, same ``str()``.

    The instance is created without running the original constructor (which
    may require domain arguments the wire does not carry), so it carries the
    message but not attributes like ``peer_id``.
    """
    candidate = getattr(_exceptions, type_name, None)
    if not (isinstance(candidate, type) and issubclass(candidate, BaseException)):
        candidate = getattr(builtins, type_name, None)
    if not (isinstance(candidate, type) and issubclass(candidate, BaseException)):
        return WireProtocolError(f"{type_name}: {message}")
    error = candidate.__new__(candidate)
    BaseException.__init__(error, message)
    return error


# ------------------------------------------------------------------ worker


class ShardRequestHandler:
    """Transport-neutral shard session: one server plus its fill streams.

    The request/reply semantics of a shard — dispatch against a
    ``ManagementServer(maintain_cache=False)``, lazily opened fill streams
    addressed by id, errors serialised as ``(type_name, message)`` — are
    identical whether the transport is a :func:`multiprocessing.Pipe`
    (:func:`_shard_worker`) or an asyncio socket connection
    (:mod:`repro.core.socket_backend`), so both feed decoded request tuples
    through one handler instance.
    """

    def __init__(self, neighbor_set_size: int) -> None:
        self.server = ManagementServer(
            neighbor_set_size=neighbor_set_size, maintain_cache=False
        )
        self.streams: dict = {}
        self._stream_ids = itertools.count(1)

    def handle(self, request_id: int, op: str, args: Tuple[object, ...]):
        """Apply one decoded request; return the reply tuple (or ``None``).

        One-way requests (``request_id == 0``) return ``None`` — the caller
        must not write a reply for them.
        """
        if op == "fill_close":
            generator = self.streams.pop(args[0], None)
            if generator is not None:
                generator.close()
            return None
        try:
            result = _dispatch(self.server, self.streams, self._stream_ids, op, args)
        except Exception as error:  # noqa: BLE001 - errors are protocol payload
            reply = (request_id, "err", type(error).__name__, str(error))
        else:
            reply = (request_id, "ok", result)
        return reply if request_id else None

    def close(self) -> None:
        """Tear down every open fill stream (idempotent)."""
        for generator in self.streams.values():
            generator.close()
        self.streams.clear()


def _shard_worker(conn, neighbor_set_size: int) -> None:
    """Worker-process main loop: one ``ManagementServer`` behind the pipe.

    Runs until a ``shutdown`` notification, a closed pipe (the supervisor
    died), or an undecodable frame (a poisoned channel is unrecoverable, so
    the worker exits and the client surfaces the EOF as unavailability).
    """
    handler = ShardRequestHandler(neighbor_set_size)
    try:
        while True:
            try:
                message = decode_frame(conn.recv_bytes())
            except (EOFError, OSError, WireProtocolError, pickle.UnpicklingError):
                break
            request_id, op = message[0], message[1]
            args = message[2] if len(message) > 2 else ()
            if op == "shutdown":
                break
            reply = handler.handle(request_id, op, args)
            if reply is not None:
                conn.send_bytes(encode_frame(reply))
    finally:
        conn.close()


def _dispatch(server: ManagementServer, streams: dict, stream_ids, op: str, args):
    """Apply one decoded request to the worker's server; return the value."""
    if op == "ping":
        return "pong"
    if op == "register_landmark":
        landmark_id, router = args
        return server.register_landmark(landmark_id, router)
    if op == "validate":
        return server.validate_registrable(decode_path(args[0]))
    if op == "validate_batch":
        rejected = server.first_rejected_path([decode_path(p) for p in args[0]])
        if rejected is None:
            return None
        index, error = rejected
        return (index, type(error).__name__, str(error))
    if op == "insert_paths":
        encoded_paths, validate = args
        return server.insert_paths([decode_path(p) for p in encoded_paths], validate=validate)
    if op == "unregister":
        return server.unregister_peer(args[0])
    if op == "local_closest":
        peer_id, k = args
        return tuple(server.local_closest(peer_id, k))
    if op == "fill_open":
        bases_items, exclude_peer = args
        stream_id = next(stream_ids)
        streams[stream_id] = server.fill_candidates(dict(bases_items), exclude_peer=exclude_peer)
        return stream_id
    if op == "fill_next":
        stream_id, chunk_size = args
        generator = streams.get(stream_id)
        if generator is None:
            raise WireProtocolError(f"unknown fill stream {stream_id}")
        chunk = tuple(itertools.islice(generator, chunk_size))
        done = len(chunk) < chunk_size
        if done:
            streams.pop(stream_id, None)
        return (done, chunk)
    if op == "tree":
        tree = server.tree(args[0])
        return (
            tree.root.router if tree.root is not None else None,
            tuple(encode_path(tree.path_of(peer)) for peer in tree.peers()),
            tree.total_query_visits,
            tree.last_query_visits,
        )
    if op == "tree_distance":
        landmark_id, peer_a, peer_b = args
        return server.tree_distance(landmark_id, peer_a, peer_b)
    if op == "total_tree_visits":
        return server.total_tree_visits()
    if op == "total_insert_work":
        return tuple(server.total_insert_work())
    if op == "stats":
        return server.stats.as_dict()
    if op == "snapshot_state":
        return server.snapshot_state()
    if op == "restore_state":
        server.restore_state(args[0])
        # Any open fill streams iterate state that no longer exists.
        for generator in streams.values():
            generator.close()
        streams.clear()
        return None
    raise WireProtocolError(f"unknown operation {op!r}")


# -------------------------------------------------------------- supervisor


class ShardSupervisorBase:
    """Transport-agnostic shard supervision: journal, recovery, compaction.

    Subclasses own the transport — spawning a worker process and its pipe
    (:class:`ShardSupervisor`) or dialling a shard server's socket
    (:class:`~repro.core.socket_backend.SocketShardSupervisor`) — through
    four hooks: :meth:`_establish_transport`, :meth:`_teardown_transport`,
    :meth:`_roundtrip` and :meth:`notify`.  Everything above the transport
    is shared verbatim: the **operation journal** of acknowledged mutating
    requests, :meth:`restart` (fresh transport + in-order replay, restoring
    the shard's data plane byte-identically), the :class:`RecoveryPolicy`
    loop of backoff → restart → re-issue, and snapshot compaction
    (:meth:`compact`).

    Parameters
    ----------
    name:
        The shard's name; every :class:`ShardUnavailableError` carries it.
    request_timeout:
        Seconds each round trip may take in total (all phases draw from one
        :class:`~repro.core.budget.DeadlineBudget`).  ``None`` is clamped to
        :data:`DEFAULT_REQUEST_TIMEOUT` — every round trip has a deadline.
    recovery:
        Optional :class:`RecoveryPolicy`.  When given, recoverable requests
        that fail with :class:`ShardUnavailableError` trigger bounded
        backoff → restart+replay → re-issue instead of raising.
    compact_watermark:
        When set, :meth:`compact` runs automatically whenever the journal
        reaches this many entries, bounding replay cost by live state size.
    clock:
        Monotonic clock used for round-trip deadline budgets; injectable so
        timeout regression tests can script pathological phase timings.
    """

    def __init__(
        self,
        name: str,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        recovery: Optional[RecoveryPolicy] = None,
        compact_watermark: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if compact_watermark is not None and compact_watermark < 1:
            raise ValueError(f"compact_watermark must be >= 1, got {compact_watermark}")
        self.name = name
        if recovery is not None and recovery.op_deadline_s is not None:
            request_timeout = recovery.op_deadline_s
        if request_timeout is None:
            request_timeout = DEFAULT_REQUEST_TIMEOUT
        self.request_timeout = request_timeout
        self._recovery = recovery
        self._compact_watermark = compact_watermark
        self._clock = clock
        self.last_snapshot_bytes = 0
        self._journal: List[Tuple[str, Tuple[object, ...]]] = []
        self._next_request_id = itertools.count(1)
        self._poisoned: Optional[str] = None
        self._closed = False
        self._epoch = 0

    # ------------------------------------------------------- transport hooks

    def _establish_transport(self) -> None:
        """Bring up a fresh transport incarnation (spawn / connect)."""
        raise NotImplementedError

    def _teardown_transport(self) -> None:
        """Tear the current transport down (reap worker / close socket)."""
        raise NotImplementedError

    def _roundtrip(
        self, op: str, args: Tuple[object, ...], timeout: Optional[float] = None
    ) -> object:
        """One request/reply exchange, bounded by one deadline budget."""
        raise NotImplementedError

    def notify(self, op: str, args: Tuple[object, ...]) -> None:
        """One-way notification (no reply; failures are swallowed)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Abruptly destroy the transport (fault injection; no handshake)."""
        raise NotImplementedError

    # ------------------------------------------------------------- lifecycle

    @property
    def journal(self) -> Tuple[Tuple[str, Tuple[object, ...]], ...]:
        """The acknowledged mutating operations, in order (immutable view)."""
        return tuple(self._journal)

    @property
    def journal_length(self) -> int:
        """Number of journal entries — O(1), unlike materialising ``journal``."""
        return len(self._journal)

    @property
    def recovery(self) -> Optional[RecoveryPolicy]:
        """The active :class:`RecoveryPolicy`, or ``None`` (fail-fast mode)."""
        return self._recovery

    @property
    def epoch(self) -> int:
        """Transport incarnation counter (bumped by every spawn/reconnect).

        Stream state (fill streams' shard-side ids) is only valid within
        one epoch: a consumer created before a restart must not touch — or
        tear down — streams belonging to the new incarnation.
        """
        return self._epoch

    def restart(self) -> None:
        """Fresh transport + in-order journal replay (crash recovery)."""
        if self._closed:
            raise ShardUnavailableError(self.name, "supervisor is closed")
        self._teardown_transport()
        self._establish_transport()
        for op, args in self._journal:
            self._roundtrip(op, args)

    def close(self) -> None:
        """Shut the shard down and release the transport (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._teardown_transport()

    def health_check(self, timeout: float = 5.0) -> bool:
        """True when the shard is reachable and answering pings."""
        try:
            return self.request("ping", (), timeout=timeout, recoverable=False) == "pong"
        except ShardUnavailableError:
            return False

    # --------------------------------------------------------------- requests

    def _budget(self, timeout: Optional[float]) -> DeadlineBudget:
        """The single deadline budget one round trip's phases share."""
        deadline = self.request_timeout if timeout is None else timeout
        return DeadlineBudget(deadline, clock=self._clock)

    def request(
        self,
        op: str,
        args: Tuple[object, ...],
        journal: bool = False,
        timeout: Optional[float] = None,
        recoverable: bool = True,
    ) -> object:
        """One request/reply round trip; journals mutating ops on success.

        With a :class:`RecoveryPolicy` installed, a transport failure on a
        ``recoverable`` request runs the bounded restart+replay+re-issue
        loop before giving up.  Pass ``recoverable=False`` for requests that
        must observe faults directly (health probes, stream pulls whose
        recovery the caller manages itself).
        """
        try:
            value = self._roundtrip(op, args, timeout=timeout)
        except ShardUnavailableError as error:
            if self._recovery is None or not recoverable or self._closed:
                raise
            value = self._recover(op, args, timeout, error)
        if journal:
            self._journal.append((op, args))
            self._maybe_compact()
        return value

    def _recover(
        self,
        op: str,
        args: Tuple[object, ...],
        timeout: Optional[float],
        error: ShardUnavailableError,
    ) -> object:
        """Bounded backoff → restart+replay → re-issue loop for one request."""
        policy = self._recovery
        assert policy is not None
        last = error
        for attempt in range(1, policy.max_restarts + 1):
            delay = policy.backoff_s(attempt)
            if delay > 0:
                policy.sleep(delay)
            try:
                self.restart()
                return self._roundtrip(op, args, timeout=timeout)
            except ShardUnavailableError as retry_error:
                last = retry_error
        raise last

    def compact(self) -> int:
        """Replace the journal with one state snapshot; return its byte size.

        Asks the shard to serialise its live state (``snapshot_state``) and
        rewrites the journal as ``[("restore_state", (snapshot,))]``, so the
        next :meth:`restart` replays O(live state) instead of O(history).
        The journal is only replaced after the snapshot round trip succeeds.
        """
        snapshot = self.request("snapshot_state", ())
        self._journal = [("restore_state", (snapshot,))]
        size = len(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
        self.last_snapshot_bytes = size
        return size

    def _maybe_compact(self) -> None:
        if self._compact_watermark is None or len(self._journal) < self._compact_watermark:
            return
        try:
            self.compact()
        except ShardUnavailableError:
            # Auto-compaction is an optimisation: if the shard is gone the
            # triggering request already succeeded, so keep the long journal
            # and let the normal fault path handle the dead shard.
            pass

    def _interpret_reply(self, reply, request_id: int, op: str) -> object:
        """Turn a decoded reply tuple into a value or a raised exception.

        Shared by every transport: out-of-order or malformed replies poison
        the channel (the request/reply pairing is unknown from here on), and
        worker-reported ``WireProtocolError`` surfaces as unavailability,
        never as a domain error.
        """
        if reply[0] != request_id or len(reply) < 3:
            self._poisoned = f"out-of-order reply to {op!r}"
            raise ShardUnavailableError(self.name, self._poisoned)
        if reply[1] == "ok":
            return reply[2]
        if reply[1] == "err" and len(reply) == 4:
            error = _rebuild_exception(str(reply[2]), str(reply[3]))
            if isinstance(error, WireProtocolError):
                # The worker saw a protocol violation from us: surface it as
                # unavailability, never as a domain (join-protocol) error.
                raise ShardUnavailableError(
                    self.name, f"worker reported a protocol violation: {error}"
                ) from error
            raise error
        self._poisoned = f"malformed reply to {op!r}"
        raise ShardUnavailableError(self.name, self._poisoned)


class ShardSupervisor(ShardSupervisorBase):
    """Owns one shard worker process: spawn, request plumbing, restart.

    The transport instance of :class:`ShardSupervisorBase` for
    ``multiprocessing`` pipes; see the base class for the journal, recovery
    and compaction story it inherits.

    Parameters
    ----------
    name / request_timeout / recovery / compact_watermark / clock:
        As for :class:`ShardSupervisorBase`.
    neighbor_set_size:
        Passed to the worker's ``ManagementServer``.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` where
        available (workers are cheap clones) and ``spawn`` elsewhere.
    """

    def __init__(
        self,
        name: str,
        neighbor_set_size: int,
        start_method: Optional[str] = None,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        recovery: Optional[RecoveryPolicy] = None,
        compact_watermark: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(
            name,
            request_timeout=request_timeout,
            recovery=recovery,
            compact_watermark=compact_watermark,
            clock=clock,
        )
        self.neighbor_set_size = neighbor_set_size
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._context = multiprocessing.get_context(start_method)
        self._conn = None
        self._process = None
        self._establish_transport()

    # ------------------------------------------------------------- lifecycle

    @property
    def process(self):
        """The live worker :class:`multiprocessing.Process` (or ``None``)."""
        return self._process

    def _establish_transport(self) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_shard_worker,
            args=(child_conn, self.neighbor_set_size),
            name=f"repro-{self.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._conn = parent_conn
        self._process = process
        self._poisoned = None
        self._epoch += 1

    def _teardown_transport(self) -> None:
        conn, process = self._conn, self._process
        self._conn = None
        self._process = None
        if conn is not None:
            # The shutdown frame is a courtesy: a hung worker with a full
            # pipe buffer must not turn close() into a blocking send, so
            # probe writability first and skip the frame when it would
            # block — terminate()/kill() below reap the worker regardless.
            if self._writable(conn, timeout=0.0):
                try:
                    conn.send_bytes(encode_frame((0, "shutdown")))
                except (OSError, ValueError):
                    pass
        if process is not None:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - SIGTERM-ignoring worker
                process.kill()
                process.join()
        if conn is not None:
            conn.close()

    def kill(self) -> None:
        """Kill the worker process outright (fault injection, no teardown)."""
        process = self._process
        if process is not None and process.is_alive():
            process.kill()
            process.join()

    # --------------------------------------------------------------- requests

    def notify(self, op: str, args: Tuple[object, ...]) -> None:
        """One-way notification (no reply; failures are swallowed).

        Used for stream cleanup from generator finalisers: the worker
        processes it in pipe order and sends nothing back, so it can never
        desynchronise an in-flight request/reply pair.  Like every send it
        must not block on a hung worker, so an unwritable pipe skips the
        notification (the worker is about to be restarted or reaped anyway).
        """
        conn = self._conn
        if conn is None or self._poisoned is not None:
            return
        if not self._writable(conn, timeout=0.0):
            return
        try:
            conn.send_bytes(encode_frame((0, op, args)))
        except (OSError, ValueError):
            pass

    @staticmethod
    def _writable(conn, timeout: float) -> bool:
        """Probe pipe writability; optimistic where select() cannot run."""
        try:
            return bool(select.select([], [conn], [], timeout)[1])
        except (OSError, ValueError):
            return True

    def _roundtrip(
        self, op: str, args: Tuple[object, ...], timeout: Optional[float] = None
    ) -> object:
        if self._closed:
            raise ShardUnavailableError(self.name, "supervisor is closed")
        if self._poisoned is not None:
            raise ShardUnavailableError(self.name, f"channel poisoned: {self._poisoned}")
        process, conn = self._process, self._conn
        if process is None or conn is None or not process.is_alive():
            raise ShardUnavailableError(self.name, "worker process is not running")
        budget = self._budget(timeout)
        request_id = next(self._next_request_id)
        try:
            # A worker that stopped reading while staying alive would make a
            # blocking send hang with the pipe buffer full, so probe
            # writability before sending.  The probe and the reply wait draw
            # from ONE shared deadline budget — a slow-draining pipe plus a
            # slow worker is still bounded by a single request_timeout, not
            # the sum of two full phase timeouts.  Where the probe cannot
            # run (fd beyond FD_SETSIZE, platforms whose pipe handles
            # select() rejects), fall back to sending un-probed — the
            # residual blocking risk of the Connection API, also present for
            # frames larger than the pipe buffer once a write has started.
            if not self._writable(conn, timeout=budget.remaining()):
                self._poisoned = f"pipe not writable for {op!r} within timeout"
                raise ShardUnavailableError(self.name, self._poisoned)
            conn.send_bytes(encode_frame((request_id, op, args)))
            if not conn.poll(budget.remaining()):
                self._poisoned = f"no reply to {op!r} within timeout"
                raise ShardUnavailableError(self.name, self._poisoned)
            reply = decode_frame(conn.recv_bytes())
        except ShardUnavailableError:
            raise
        except (EOFError, OSError, WireProtocolError, pickle.UnpicklingError) as error:
            # Any transport failure leaves the request/reply order unknown:
            # poison the channel so later requests fail fast until restart().
            self._poisoned = f"transport failure during {op!r}: {type(error).__name__}"
            raise ShardUnavailableError(
                self.name, f"worker died during {op!r}: {type(error).__name__}: {error}"
            ) from error
        return self._interpret_reply(reply, request_id, op)


# ----------------------------------------------------------------- backend


class SupervisedShardBackend:
    """The full client-side :class:`~repro.core.sharded.ShardBackend` surface
    over a supervising request channel.

    Everything a remote shard backend does — path encoding, batched
    validation, chunked lazy fill streams with epoch-guarded recovery,
    diagnostics — is a function of its supervisor's ``request``/``notify``/
    ``epoch`` interface, so :class:`ProcessShardBackend` and
    :class:`~repro.core.socket_backend.SocketShardBackend` share this one
    implementation and differ only in how their supervisor moves frames.

    Subclasses set ``self.supervisor`` (a :class:`ShardSupervisorBase`),
    ``self.name`` and ``self.fill_chunk_size`` before use.
    """

    supervisor: ShardSupervisorBase
    name: str
    fill_chunk_size: int

    # ---------------------------------------------------------- shard surface

    def register_landmark(self, landmark_id: LandmarkId, router) -> None:
        self.supervisor.request("register_landmark", (landmark_id, router), journal=True)

    def validate_registrable(self, path: RouterPath) -> None:
        self.supervisor.request("validate", (encode_path(path),))

    def first_rejected_path(
        self, paths: Sequence[RouterPath]
    ) -> Optional[Tuple[int, BaseException]]:
        """Batch validation in one round trip (the arrival batching rule)."""
        result = self.supervisor.request(
            "validate_batch", (tuple(encode_path(path) for path in paths),)
        )
        if result is None:
            return None
        index, type_name, message = result  # type: ignore[misc]
        return (int(index), _rebuild_exception(str(type_name), str(message)))

    def insert_paths(self, paths: Sequence[RouterPath], validate: bool = True) -> None:
        self.supervisor.request(
            "insert_paths",
            (tuple(encode_path(path) for path in paths), validate),
            journal=True,
        )

    def unregister_peer(self, peer_id: PeerId) -> None:
        self.supervisor.request("unregister", (peer_id,), journal=True)

    def local_closest(self, peer_id: PeerId, k: int) -> List[Tuple[PeerId, float]]:
        result = self.supervisor.request("local_closest", (peer_id, k))
        return [tuple(pair) for pair in result]  # type: ignore[union-attr, misc]

    def fill_candidates(
        self,
        bases: Mapping[LandmarkId, float],
        exclude_peer: Optional[PeerId] = None,
    ) -> Iterator[Tuple[float, str, PeerId]]:
        """Chunked client view of the shard's lazy candidate stream.

        The shard-side stream is opened on the first ``next()`` (a never
        consumed stream costs nothing on either side) and torn down by a
        one-way ``fill_close`` when the consumer stops early.

        With a :class:`RecoveryPolicy`, a shard death mid-stream is healed
        by reopening the stream on the restarted (journal-replayed, hence
        byte-identical) shard and fast-forwarding past the candidates
        already yielded — the consumer sees one uninterrupted stream.
        Without a policy it fails typed, never silently-partial.
        """
        bases_items = tuple(bases.items())
        chunk_size = self.fill_chunk_size
        supervisor = self.supervisor

        def open_stream() -> Tuple[int, int]:
            # A recoverable open doubles as the recovery trigger: on a dead
            # shard it restarts+replays first, then opens on the fresh one.
            stream_id = supervisor.request("fill_open", (bases_items, exclude_peer))
            return supervisor.epoch, int(stream_id)  # type: ignore[arg-type]

        def pull(stream_id: int, count: int) -> Tuple[bool, Tuple[object, ...]]:
            # Not recoverable at the supervisor layer: a mid-stream fault
            # needs reopen+skip, not a blind re-issue against a stream id
            # from the dead incarnation.
            return supervisor.request(  # type: ignore[return-value]
                "fill_next", (stream_id, count), recoverable=False
            )

        def reopen(yielded: int) -> Tuple[int, int, bool]:
            """Open a fresh stream and skip the ``yielded`` leading items."""
            epoch, stream_id = open_stream()
            remaining = yielded
            done = False
            while remaining > 0:
                done, chunk = pull(stream_id, min(chunk_size, remaining))
                remaining -= len(chunk)
                if done:
                    break
            if remaining > 0:
                raise ShardUnavailableError(
                    self.name,
                    "fill stream shrank during recovery (shard state diverged)",
                )
            return epoch, stream_id, done and remaining == 0

        def stream() -> Iterator[Tuple[float, str, PeerId]]:
            epoch, stream_id = open_stream()
            yielded = 0
            exhausted = False
            try:
                while True:
                    if supervisor.epoch != epoch:
                        # The shard restarted mid-stream: our stream id now
                        # belongs to a different incarnation.
                        if supervisor.recovery is None:
                            raise ShardUnavailableError(
                                self.name, "shard restarted mid fill stream"
                            )
                        epoch, stream_id, done = reopen(yielded)
                        if done:
                            exhausted = True
                            return
                    try:
                        done, chunk = pull(stream_id, chunk_size)
                    except ShardUnavailableError:
                        if supervisor.recovery is None:
                            raise
                        epoch, stream_id, done = reopen(yielded)
                        if done:
                            exhausted = True
                            return
                        continue
                    for item in chunk:
                        yielded += 1
                        yield tuple(item)  # type: ignore[misc]
                    if done:
                        exhausted = True
                        return
            finally:
                # Only tear down a stream on the incarnation that owns it:
                # after a restart the same id may name a fresh, unrelated
                # stream.
                if not exhausted and supervisor.epoch == epoch:
                    supervisor.notify("fill_close", (stream_id,))

        return stream()

    def tree(self, landmark_id: LandmarkId) -> PathTree:
        """A local **snapshot** of the shard's tree (for diagnostics).

        Rebuilt from the shard's paths in registration order, so structure
        and ``tree_distance`` answers are byte-identical to the live tree;
        the query-visit counters are copied across.  Mutating the snapshot
        does not affect the shard.
        """
        root, encoded_paths, total_visits, last_visits = self.supervisor.request(  # type: ignore[misc]
            "tree", (landmark_id,)
        )
        snapshot = PathTree(landmark_id=landmark_id, landmark_router=root)
        for encoded in encoded_paths:  # type: ignore[union-attr]
            snapshot.insert(decode_path(encoded))
        snapshot.total_query_visits = int(total_visits)  # type: ignore[arg-type]
        snapshot.last_query_visits = int(last_visits)  # type: ignore[arg-type]
        return snapshot

    def tree_distance(self, landmark_id: LandmarkId, peer_a: PeerId, peer_b: PeerId) -> float:
        """``dtree`` of a same-landmark pair: one scalar round trip.

        This is how the coordinator's ``estimate_distance`` reaches a remote
        tree — :meth:`tree` snapshots are for diagnostics only.
        """
        return float(
            self.supervisor.request("tree_distance", (landmark_id, peer_a, peer_b))  # type: ignore[arg-type]
        )

    def total_tree_visits(self) -> int:
        return int(self.supervisor.request("total_tree_visits", ()))  # type: ignore[arg-type]

    def total_insert_work(self) -> Tuple[int, int]:
        """The shard's ``(nodes_created, nodes_touched)`` insert counters."""
        created, touched = self.supervisor.request("total_insert_work", ())  # type: ignore[misc]
        return (int(created), int(touched))  # type: ignore[arg-type]

    # ------------------------------------------------------------ diagnostics

    def worker_stats(self) -> dict:
        """The shard server's :class:`ServerStats` counters (a copy)."""
        return dict(self.supervisor.request("stats", ()))  # type: ignore[arg-type, call-overload]

    def health_check(self, timeout: float = 5.0) -> bool:
        """True when the shard is alive and answering."""
        return self.supervisor.health_check(timeout=timeout)

    def restart(self) -> None:
        """Respawn the shard's transport and replay the journal."""
        self.supervisor.restart()

    def compact(self) -> int:
        """Snapshot-compact the supervisor's journal; return snapshot bytes."""
        return self.supervisor.compact()

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Stop the shard and release the transport (idempotent)."""
        self.supervisor.close()

    def __enter__(self) -> "SupervisedShardBackend":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:  # noqa: BLE001 - never raise from a finaliser
            pass


class ProcessShardBackend(SupervisedShardBackend):
    """A :class:`~repro.core.sharded.ShardBackend` living in a worker process.

    Implements the shard-facing surface by proxying every call to a
    ``ManagementServer(maintain_cache=False)`` in the supervised worker,
    following the module docstring's batching/chunking rules.  Pass
    instances via ``ShardedManagementServer(shard_factory=...)`` — see
    :func:`process_shard_factory` for the canonical wiring.

    Always :meth:`close` a backend (or use it as a context manager): the
    worker is a real OS process and the pipe a real file descriptor.
    """

    def __init__(
        self,
        neighbor_set_size: int = 5,
        name: str = "process-shard",
        fill_chunk_size: int = DEFAULT_FILL_CHUNK,
        start_method: Optional[str] = None,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        recovery: Optional[RecoveryPolicy] = None,
        compact_watermark: Optional[int] = None,
    ) -> None:
        self.name = name
        self.fill_chunk_size = fill_chunk_size
        self.supervisor = ShardSupervisor(
            name=name,
            neighbor_set_size=neighbor_set_size,
            start_method=start_method,
            request_timeout=request_timeout,
            recovery=recovery,
            compact_watermark=compact_watermark,
        )

    def __repr__(self) -> str:
        process = self.supervisor.process
        state = "alive" if process is not None and process.is_alive() else "down"
        return f"ProcessShardBackend(name={self.name!r}, worker={state})"


def process_shard_factory(
    neighbor_set_size: int = 5,
    fill_chunk_size: int = DEFAULT_FILL_CHUNK,
    start_method: Optional[str] = None,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    recovery: Optional[RecoveryPolicy] = None,
    compact_watermark: Optional[int] = None,
) -> Callable[[], ProcessShardBackend]:
    """A ``shard_factory`` for :class:`ShardedManagementServer`.

    Each call of the returned factory spawns one worker process named
    ``shard-0``, ``shard-1``, … in creation order — the names that
    :class:`~repro.exceptions.ShardUnavailableError` reports on failure.
    Close the owning ``ShardedManagementServer`` (or each backend) to reap
    the workers.  ``recovery`` and ``compact_watermark`` are shared by every
    shard the factory creates (the policy is immutable, so sharing is safe).
    """
    indexes = itertools.count()

    def factory() -> ProcessShardBackend:
        return ProcessShardBackend(
            neighbor_set_size=neighbor_set_size,
            name=f"shard-{next(indexes)}",
            fill_chunk_size=fill_chunk_size,
            start_method=start_method,
            request_timeout=request_timeout,
            recovery=recovery,
            compact_watermark=compact_watermark,
        )

    return factory


def shard_factory_for(backend: str, neighbor_set_size: int = 5, **kwargs):
    """The ``ShardedManagementServer(shard_factory=...)`` value for a backend.

    ``"inline"`` returns ``None`` (the coordinator's default in-process
    shards); ``"process"`` returns a :func:`process_shard_factory`;
    ``"socket"`` returns a
    :func:`~repro.core.socket_backend.socket_shard_factory` (which, without
    explicit ``addresses``, hosts a loopback asyncio shard server in this
    process so the socket plane is self-contained).  The one place backend
    names map to wiring, shared by scenarios, the perf suite and tests.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if backend == "process":
        return process_shard_factory(neighbor_set_size, **kwargs)
    if backend == "socket":
        # Imported lazily: the socket transport pulls in asyncio/socket
        # machinery that pipe-backed planes never need.
        from .socket_backend import socket_shard_factory

        return socket_shard_factory(neighbor_set_size, **kwargs)
    return None
