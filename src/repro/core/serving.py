"""The serving plane: immutable discovery snapshots, published by epoch.

Single-threaded query cost is ~2 µs after PRs 1–7; the next order of
magnitude is concurrency.  This module does for the discovery plane what
PR 4's ``CsrTopology`` did for the router graph: it freezes one epoch of a
live management plane into a :class:`DiscoverySnapshot` — flat tuple views
of the landmark tries, the per-landmark min-hop orderings, the cached
neighbour lists and the interner's ``(sort_text, compact_index)`` table —
that any number of reader threads or forked processes query with **zero
locks**, while the write plane keeps mutating and periodically publishes the
next epoch.

Why this is safe without locks
------------------------------
* A snapshot is *immutable*: nothing mutates it after construction, so
  concurrent readers share it freely (no writer ever touches it).
* Publication is *atomic*: :meth:`SnapshotPublisher.publish` builds the new
  snapshot off to the side and installs it with a single attribute
  assignment — an atomic reference store under the interpreter.  A reader
  :meth:`pins <SnapshotReader.pin>` the current snapshot once per query and
  works only on the pinned object, so every answer is computed against
  exactly one generation — never a torn mix of two epochs.  This is the
  classic read-copy-update discipline, with the interpreter's reference
  semantics standing in for the memory barrier.

Byte-identical answers
----------------------
The snapshot replays the live read path, not an approximation of it:
:meth:`DiscoverySnapshot.closest_peers` implements the exact cache-serve
condition of :meth:`~repro.core.management_plane.ManagementPlaneBase.
closest_peers`, falls back to the same level-synchronous frontier walk as
:meth:`~repro.core.path_tree.PathTree.closest_from_node` (over flat arrays
instead of node objects, preserving child and attachment iteration order),
and fills short lists by heap-merging the same shifted min-hop orderings in
the same stream order the source plane would use — including the per-shard
grouping of the sharded coordinator, whose snapshot is composed from the
per-shard tree exports.  ``tests/core/test_serving.py`` holds the oracle
pinning snapshot answers byte-identical to the live plane at the same epoch.

Array keys are the PR 5 compact indices: peers get dense **slots** in
compact-index order, which is why the interner table must survive state
snapshots verbatim (see ``STATE_SNAPSHOT_VERSION`` 2 in
:mod:`repro.core.management_server`) — a restore that re-interned peers
would silently renumber the keys under a published snapshot.
"""

from __future__ import annotations

import heapq
import time
from operator import itemgetter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..exceptions import LandmarkError, UnknownPeerError
from .management_plane import ManagementPlaneBase
from .path import LandmarkId, NodeId, PeerId, RouterPath
from .path_tree import PathTree

__all__ = ["DiscoverySnapshot", "FlatTrie", "SnapshotPublisher", "SnapshotReader"]

#: Stable sort key for ``(dtree, sort_text, slot)`` candidate tuples — the
#: flat twin of ``path_tree._CANDIDATE_ORDER``: ties beyond the first two
#: fields keep discovery order and never compare raw identifiers.
_CANDIDATE_ORDER = itemgetter(0, 1)


class FlatTrie:
    """One landmark's path trie, frozen into flat parallel tuples.

    Nodes are numbered in depth-first order from the root (node ``0``);
    children and attached peers keep their live dict iteration order, so the
    frontier walk below discovers candidates in exactly the order the live
    :class:`~repro.core.path_tree.PathTree` would — which is what keeps tied
    results byte-identical after the stable sort.  CSR-style ranges
    (``child_start`` / ``attached_start`` with one trailing sentinel) replace
    per-node containers; attachments are peer *slots* into the owning
    snapshot's arrays.
    """

    __slots__ = (
        "landmark_id",
        "routers",
        "parent",
        "depth",
        "subtree_count",
        "child_start",
        "children",
        "attached_start",
        "attached",
    )

    def __init__(self, landmark_id: LandmarkId, tree: PathTree, slot_of: Dict[PeerId, int]):
        self.landmark_id = landmark_id
        routers: List[NodeId] = []
        parent: List[int] = []
        depth: List[int] = []
        subtree: List[int] = []
        child_start: List[int] = [0]
        children: List[int] = []
        attached_start: List[int] = [0]
        attached: List[int] = []
        root = tree.root
        if root is not None:
            # Two passes: number every node first (depth-first, children in
            # dict order), then emit the CSR rows — child lists must hold
            # final node numbers.
            index_of: Dict[int, int] = {}
            order = []
            stack = [root]
            while stack:
                node = stack.pop()
                index_of[id(node)] = len(order)
                order.append(node)
                stack.extend(reversed(list(node.children.values())))
            for node in order:
                routers.append(node.router)
                parent.append(index_of[id(node.parent)] if node.parent is not None else -1)
                depth.append(node.depth)
                subtree.append(node.subtree_peer_count)
                children.extend(index_of[id(child)] for child in node.children.values())
                child_start.append(len(children))
                attached.extend(slot_of[peer] for peer in node.attached_peers)
                attached_start.append(len(attached))
        self.routers = tuple(routers)
        self.parent = tuple(parent)
        self.depth = tuple(depth)
        self.subtree_count = tuple(subtree)
        self.child_start = tuple(child_start)
        self.children = tuple(children)
        self.attached_start = tuple(attached_start)
        self.attached = tuple(attached)

    @property
    def node_count(self) -> int:
        return len(self.routers)

    def lca_depth(self, node_a: int, node_b: int) -> int:
        """Depth of the lowest common ancestor of two nodes."""
        parent, depth = self.parent, self.depth
        while depth[node_a] > depth[node_b]:
            node_a = parent[node_a]
        while depth[node_b] > depth[node_a]:
            node_b = parent[node_b]
        while node_a != node_b:
            node_a = parent[node_a]
            node_b = parent[node_b]
        return depth[node_a]

    def closest_from_node(
        self, origin: int, k: int, exclude_slot: int, sort_texts: Sequence[str]
    ) -> List[Tuple[int, int]]:
        """Up to ``k`` closest peer slots as seen from a node, as ``(slot, dtree)``.

        The flat replay of :meth:`PathTree.closest_from_node`: the same
        level-synchronous frontier (ancestor entries carry the already
        explored child in ``skip_child``), the same ``bound`` arithmetic, the
        same stable ``(dtree, sort_text)`` sort over candidates collected in
        discovery order — so results are byte-identical to the live walk.
        """
        if k <= 0:
            return []
        parent, depth, subtree = self.parent, self.depth, self.subtree_count
        child_start, children = self.child_start, self.children
        attached_start, attached = self.attached_start, self.attached
        level: List[Tuple[int, int, int]] = [(origin, depth[origin], -1)]
        bound = 2
        results: List[Tuple[int, str, int]] = []
        append = results.append
        kth_found = False
        while level:
            next_level: List[Tuple[int, int, int]] = []
            push = next_level.append
            for node, lca_depth, skip_child in level:
                for position in range(attached_start[node], attached_start[node + 1]):
                    slot = attached[position]
                    if slot != exclude_slot:
                        append((bound, sort_texts[slot], slot))
                if kth_found:
                    continue
                if len(results) >= k:
                    kth_found = True
                    continue
                if depth[node] == lca_depth:
                    for position in range(child_start[node], child_start[node + 1]):
                        child = children[position]
                        if child != skip_child and subtree[child] > 0:
                            push((child, lca_depth, -1))
                    up = parent[node]
                    if up >= 0:
                        push((up, depth[up], node))
                else:
                    for position in range(child_start[node], child_start[node + 1]):
                        child = children[position]
                        if subtree[child] > 0:
                            push((child, lca_depth, -1))
            if kth_found:
                break
            level = next_level
            bound += 1
        results.sort(key=_CANDIDATE_ORDER)
        del results[k:]
        return [(slot, bound) for bound, _, slot in results]


class DiscoverySnapshot:
    """One immutable, generation-stamped epoch of a management plane.

    Built by :meth:`build` from a live
    :class:`~repro.core.management_server.ManagementServer` or
    :class:`~repro.core.sharded.ShardedManagementServer` (any backend — the
    coordinator snapshot is composed from the per-shard tree exports, which
    rebuild byte-identical tries on the coordinator side).  All state is
    plain tuples/dicts keyed by dense peer **slots** assigned in
    compact-index order, so the whole object is cheaply forkable/picklable
    for process readers and safely shared between threads.

    The query surface mirrors the live plane byte for byte:
    :meth:`closest_peers`, :meth:`neighbor_list`, :meth:`estimate_distance`
    and the read accessors (``peers``, ``peer_count``, ``has_peer``,
    ``peer_path``, ``peer_landmark``, ``landmarks``, ``landmark_router``,
    ``landmark_distance``).
    """

    __slots__ = (
        "generation",
        "neighbor_set_size",
        "maintain_cache",
        "interner_table",
        "next_compact_index",
        "_registration_order",
        "_slot_of",
        "_peer_ids",
        "_sort_texts",
        "_compact_indices",
        "_hop_counts",
        "_slot_landmark",
        "_attach_node",
        "_cache_lists",
        "_cache_complete",
        "_paths",
        "_tries",
        "_landmark_order",
        "_landmark_routers",
        "_landmark_distances",
        "_fill_order",
        "_hops_orderings",
    )

    def __init__(self) -> None:  # populated by build()
        self.generation = 0

    # ------------------------------------------------------------------ build

    @classmethod
    def build(cls, plane: ManagementPlaneBase, generation: int = 0) -> "DiscoverySnapshot":
        """Freeze the plane's current state into a snapshot.

        Read-only with one documented exception: building the coordinator
        snapshot of a *remote* shard backend pulls each landmark's tree
        export over the wire (the same ``tree`` round trip diagnostics use).
        """
        snap = cls()
        snap.generation = int(generation)
        snap.neighbor_set_size = plane.neighbor_set_size
        snap.maintain_cache = plane.maintain_cache

        assignments, next_index = plane._interner.export_state()
        table: Dict[PeerId, Tuple[str, int]] = {
            peer: (text, index) for peer, text, index in assignments
        }
        snap.interner_table = table
        snap.next_compact_index = next_index

        registration_order = tuple(plane.peers())
        snap._registration_order = registration_order
        for peer in registration_order:
            if peer not in table:  # never-interned peer: intern via the plane
                table[peer] = plane._interner.key(peer)
        slot_order = sorted(registration_order, key=lambda peer: table[peer][1])
        slot_of: Dict[PeerId, int] = {peer: slot for slot, peer in enumerate(slot_order)}
        snap._slot_of = slot_of
        snap._peer_ids = tuple(slot_order)
        snap._sort_texts = tuple(table[peer][0] for peer in slot_order)
        snap._compact_indices = tuple(table[peer][1] for peer in slot_order)
        snap._paths = {peer: plane._paths[peer] for peer in registration_order}
        snap._hop_counts = tuple(snap._paths[peer].hop_count for peer in slot_order)
        snap._slot_landmark = tuple(plane._peer_landmark[peer] for peer in slot_order)

        landmark_order = tuple(plane.landmarks())
        snap._landmark_order = landmark_order
        snap._landmark_routers = {
            landmark: plane.landmark_router(landmark) for landmark in landmark_order
        }
        snap._landmark_distances = dict(plane._landmark_distances)
        snap._fill_order = cls._fill_stream_order(plane, landmark_order)

        tries: Dict[LandmarkId, FlatTrie] = {}
        attach_node: List[int] = [-1] * len(slot_order)
        orderings: Dict[LandmarkId, Tuple[Tuple[int, str, PeerId], ...]] = {}
        for landmark in landmark_order:
            tree = plane.tree(landmark)
            flat = FlatTrie(landmark, tree, slot_of)
            tries[landmark] = flat
            for node in range(flat.node_count):
                for position in range(flat.attached_start[node], flat.attached_start[node + 1]):
                    attach_node[flat.attached[position]] = node
            # The live plane's lazily built min-hop ordering, computed the
            # same way (sorted is input-order independent up to full-tuple
            # ties, which only identical elements can produce here).
            orderings[landmark] = tuple(
                sorted(
                    (snap._paths[peer].hop_count, table[peer][0], peer)
                    for peer in tree.peers()
                )
            )
        snap._tries = tries
        snap._attach_node = tuple(attach_node)
        snap._hops_orderings = orderings

        if plane.maintain_cache:
            lists = []
            complete = []
            for peer in slot_order:
                entries = plane._cache.get(peer) or ()
                lists.append(tuple((entry.peer_id, entry.distance) for entry in entries))
                complete.append(plane._cache.is_complete(peer))
            snap._cache_lists = tuple(lists)
            snap._cache_complete = tuple(complete)
        else:
            snap._cache_lists = ((),) * len(slot_order)
            snap._cache_complete = (False,) * len(slot_order)
        return snap

    @staticmethod
    def _fill_stream_order(
        plane: ManagementPlaneBase, landmark_order: Tuple[LandmarkId, ...]
    ) -> Tuple[LandmarkId, ...]:
        """The landmark order of the plane's cross-landmark fill streams.

        The single server merges one stream per landmark in registration
        order; the sharded coordinator merges per-shard streams (shard index
        order), each internally in that shard's landmark registration order.
        A single flat ``heapq.merge`` over the concatenated grouping yields
        the same sequence as the live nested merge: ties between equal
        candidate tuples fall back to stream position in both shapes.
        """
        shard_landmarks = getattr(plane, "_shard_landmarks", None)
        if shard_landmarks is not None:
            return tuple(
                landmark for per_shard in shard_landmarks for landmark in per_shard
            )
        return landmark_order

    # ------------------------------------------------------------- equality

    def _content(self) -> Tuple[object, ...]:
        return (
            self.neighbor_set_size,
            self.maintain_cache,
            self._registration_order,
            self._peer_ids,
            self._sort_texts,
            self._compact_indices,
            self._hop_counts,
            self._slot_landmark,
            self._attach_node,
            self._cache_lists,
            self._cache_complete,
            self._landmark_order,
            tuple(sorted(self._landmark_distances.items(), key=repr)),
            self._fill_order,
            tuple(
                (
                    landmark,
                    trie.routers,
                    trie.parent,
                    trie.children,
                    trie.attached,
                )
                for landmark, trie in self._tries.items()
            ),
        )

    def __eq__(self, other: object) -> bool:
        """Content equality, *ignoring* the generation stamp.

        Two snapshots of identical plane state compare equal even when
        published at different epochs — which is what lets a publisher (or a
        test) detect no-op epochs.
        """
        if not isinstance(other, DiscoverySnapshot):
            return NotImplemented
        return self._content() == other._content()

    def __hash__(self) -> int:  # pragma: no cover - identity hashing is fine
        return id(self)

    # ------------------------------------------------------------- accessors

    @property
    def peer_count(self) -> int:
        """Number of peers registered at this epoch."""
        return len(self._peer_ids)

    def peers(self) -> List[PeerId]:
        """Peer identifiers in registration order (like the live plane)."""
        return list(self._registration_order)

    def has_peer(self, peer_id: PeerId) -> bool:
        """True if the peer was registered at this epoch."""
        return peer_id in self._slot_of

    def peer_path(self, peer_id: PeerId) -> RouterPath:
        """The path the peer registered with."""
        if peer_id not in self._paths:
            raise UnknownPeerError(peer_id)
        return self._paths[peer_id]

    def peer_landmark(self, peer_id: PeerId) -> LandmarkId:
        """The landmark the peer registered under."""
        slot = self._slot_of.get(peer_id)
        if slot is None:
            raise UnknownPeerError(peer_id)
        return self._slot_landmark[slot]

    def compact_index(self, peer_id: PeerId) -> int:
        """The peer's interned compact index (the stable array key)."""
        slot = self._slot_of.get(peer_id)
        if slot is None:
            raise UnknownPeerError(peer_id)
        return self._compact_indices[slot]

    def landmarks(self) -> List[LandmarkId]:
        """Landmark identifiers in registration order."""
        return list(self._landmark_order)

    def landmark_router(self, landmark_id: LandmarkId) -> NodeId:
        """Router a landmark is attached to."""
        if landmark_id not in self._landmark_routers:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._landmark_routers[landmark_id]

    def landmark_distance(self, a: LandmarkId, b: LandmarkId) -> Optional[float]:
        """Distance between two landmarks, or None if unknown."""
        if a == b:
            return 0.0
        return self._landmark_distances.get((a, b))

    # --------------------------------------------------------------- queries

    def neighbor_list(self, peer_id: PeerId) -> List[Tuple[PeerId, float]]:
        """The peer's cached neighbour list at this epoch (see the live twin)."""
        slot = self._slot_of.get(peer_id)
        if slot is None:
            raise UnknownPeerError(peer_id)
        return list(self._cache_lists[slot])

    def closest_peers(
        self, peer_id: PeerId, k: Optional[int] = None
    ) -> List[Tuple[PeerId, float]]:
        """Up to ``k`` closest peers, byte-identical to the live plane's answer.

        Replays the live read path against frozen state: the cached list is
        served under exactly the live cache-hit condition (enough entries
        for ``k`` or for the whole population, or a still-valid completeness
        mark), anything else falls back to the flat frontier walk plus the
        cross-landmark fill merge.
        """
        slot = self._slot_of.get(peer_id)
        if slot is None:
            raise UnknownPeerError(peer_id)
        k = k or self.neighbor_set_size
        if self.maintain_cache and k <= self.neighbor_set_size:
            entries = self._cache_lists[slot]
            if len(entries) >= min(k, self.peer_count - 1) or self._cache_complete[slot]:
                return list(entries[:k])
        return self._compute_neighbors(slot, k)

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Estimated hop distance between two peers (live-estimator semantics)."""
        if peer_a == peer_b:
            return 0.0
        slot_a = self._slot_of.get(peer_a)
        if slot_a is None:
            raise UnknownPeerError(peer_a)
        slot_b = self._slot_of.get(peer_b)
        if slot_b is None:
            raise UnknownPeerError(peer_b)
        landmark_a = self._slot_landmark[slot_a]
        landmark_b = self._slot_landmark[slot_b]
        if landmark_a == landmark_b:
            trie = self._tries[landmark_a]
            node_a = self._attach_node[slot_a]
            node_b = self._attach_node[slot_b]
            lca_depth = trie.lca_depth(node_a, node_b)
            return float(
                (trie.depth[node_a] - lca_depth + 1) + (trie.depth[node_b] - lca_depth + 1)
            )
        between = self._landmark_distances.get((landmark_a, landmark_b))
        if between is None:
            raise LandmarkError(
                f"no inter-landmark distance between {landmark_a!r} and {landmark_b!r}"
            )
        return float(self._hop_counts[slot_a] + between + self._hop_counts[slot_b])

    # -------------------------------------------------------------- internals

    def _compute_neighbors(self, slot: int, k: int) -> List[Tuple[PeerId, float]]:
        """Flat twin of the live ``_compute_neighbors``: walk, then fill."""
        landmark = self._slot_landmark[slot]
        trie = self._tries[landmark]
        peer_ids = self._peer_ids
        candidates = trie.closest_from_node(
            self._attach_node[slot], k, slot, self._sort_texts
        )
        neighbors = [(peer_ids[other], float(distance)) for other, distance in candidates]
        if len(neighbors) >= k:
            return neighbors[:k]
        own_hops = self._hop_counts[slot]
        already = {peer for peer, _ in neighbors}
        for estimate, _, other_peer in self._fill_candidates(
            peer_ids[slot], landmark, own_hops
        ):
            if len(neighbors) >= k:
                break
            if other_peer in already:
                continue
            neighbors.append((other_peer, estimate))
            already.add(other_peer)
        return neighbors

    def _fill_candidates(
        self, peer_id: PeerId, home_landmark: LandmarkId, own_hops: int
    ) -> Iterator[Tuple[float, str, PeerId]]:
        """The plane's cross-landmark fill merge over frozen orderings."""

        def shifted(
            ordering: Tuple[Tuple[int, str, PeerId], ...], base: float
        ) -> Iterator[Tuple[float, str, PeerId]]:
            for hops, text, peer in ordering:
                if peer != peer_id:
                    yield (base + hops, text, peer)

        streams = []
        for landmark in self._fill_order:
            if landmark == home_landmark:
                continue
            between = self._landmark_distances.get((home_landmark, landmark))
            if between is None:
                continue
            streams.append(shifted(self._hops_orderings[landmark], float(own_hops + between)))
        return heapq.merge(*streams)

    def __repr__(self) -> str:
        return (
            f"DiscoverySnapshot(generation={self.generation}, peers={self.peer_count}, "
            f"landmarks={len(self._landmark_order)}, k={self.neighbor_set_size})"
        )


class SnapshotPublisher:
    """The write plane's side of the serving plane: batch, build, publish.

    Wraps a live management plane.  Mutations go to the live plane through
    the delegating methods below (which count them); :meth:`publish` freezes
    the plane into the next-generation :class:`DiscoverySnapshot` and
    installs it with one atomic reference store.  With ``publish_every=N``
    the publisher auto-publishes after every ``N`` buffered mutations, which
    bounds snapshot staleness without paying a rebuild per write.

    Thread model: one writer drives the publisher; any number of
    :class:`SnapshotReader` instances read :attr:`snapshot` concurrently,
    lock-free.  The live plane itself is **not** thread-safe — readers must
    go through snapshots, never through the plane.
    """

    def __init__(self, plane: ManagementPlaneBase, publish_every: Optional[int] = None):
        self._plane = plane
        self.publish_every = publish_every
        self.pending_mutations = 0
        #: Wall-clock seconds the most recent publish spent building.
        self.last_publish_seconds = 0.0
        self._snapshot = DiscoverySnapshot.build(plane, generation=1)

    @property
    def plane(self) -> ManagementPlaneBase:
        """The wrapped live plane (writer-side use only)."""
        return self._plane

    @property
    def snapshot(self) -> DiscoverySnapshot:
        """The currently published snapshot (atomic read, safe from any thread)."""
        return self._snapshot

    @property
    def generation(self) -> int:
        """Generation of the currently published snapshot."""
        return self._snapshot.generation

    def publish(self) -> DiscoverySnapshot:
        """Freeze the plane into generation ``current + 1`` and install it."""
        started = time.perf_counter()
        snapshot = DiscoverySnapshot.build(self._plane, generation=self._snapshot.generation + 1)
        self.last_publish_seconds = time.perf_counter() - started
        self.pending_mutations = 0
        self._snapshot = snapshot  # the atomic epoch flip
        return snapshot

    def _mutated(self, count: int = 1) -> None:
        self.pending_mutations += count
        if self.publish_every is not None and self.pending_mutations >= self.publish_every:
            self.publish()

    # ------------------------------------------------------ write delegation

    def register_landmark(self, landmark_id: LandmarkId, router: NodeId) -> None:
        self._plane.register_landmark(landmark_id, router)
        self._mutated()

    def set_landmark_distance(self, a: LandmarkId, b: LandmarkId, distance: float) -> None:
        self._plane.set_landmark_distance(a, b, distance)
        self._mutated()

    def register_peer(self, path: RouterPath) -> List[Tuple[PeerId, float]]:
        result = self._plane.register_peer(path)
        self._mutated()
        return result

    def register_peers(
        self, paths: Sequence[RouterPath]
    ) -> Dict[PeerId, List[Tuple[PeerId, float]]]:
        result = self._plane.register_peers(paths)
        self._mutated(len(paths))
        return result

    def unregister_peer(self, peer_id: PeerId) -> None:
        self._plane.unregister_peer(peer_id)
        self._mutated()

    def __repr__(self) -> str:
        return (
            f"SnapshotPublisher(generation={self.generation}, "
            f"pending={self.pending_mutations}, every={self.publish_every})"
        )


class SnapshotReader:
    """A lock-free query handle over published snapshots.

    Every query :meth:`pins <pin>` the publisher's current snapshot exactly
    once and computes the whole answer against that object, so a reader
    racing a publish sees **one** consistent generation per query — never a
    mix.  For multi-query consistency, call :meth:`pin` yourself and query
    the returned snapshot directly.

    Readers hold no locks and share no mutable state with the publisher, so
    any number of them can run in threads, or in forked processes handed a
    fixed :class:`DiscoverySnapshot` (the snapshot is plain picklable data).
    """

    def __init__(self, source: Union[SnapshotPublisher, DiscoverySnapshot]):
        if isinstance(source, DiscoverySnapshot):
            self._publisher: Optional[SnapshotPublisher] = None
            self._fixed: Optional[DiscoverySnapshot] = source
        else:
            self._publisher = source
            self._fixed = None
        #: Queries answered by this reader (reader-local, unsynchronised).
        self.queries_served = 0

    def pin(self) -> DiscoverySnapshot:
        """The current snapshot, pinned (one atomic read)."""
        if self._publisher is not None:
            return self._publisher.snapshot
        return self._fixed  # type: ignore[return-value]

    @property
    def generation(self) -> int:
        """Generation this reader would serve right now."""
        return self.pin().generation

    def closest_peers(
        self, peer_id: PeerId, k: Optional[int] = None
    ) -> List[Tuple[PeerId, float]]:
        """One-generation-consistent ``closest_peers`` (see DiscoverySnapshot)."""
        self.queries_served += 1
        return self.pin().closest_peers(peer_id, k)

    def neighbor_list(self, peer_id: PeerId) -> List[Tuple[PeerId, float]]:
        """One-generation-consistent ``neighbor_list``."""
        self.queries_served += 1
        return self.pin().neighbor_list(peer_id)

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """One-generation-consistent ``estimate_distance``."""
        self.queries_served += 1
        return self.pin().estimate_distance(peer_a, peer_b)

    def __repr__(self) -> str:
        return f"SnapshotReader(generation={self.generation}, served={self.queries_served})"
