"""Sharded management plane: landmarks partitioned across several shards.

The paper's management server is a single process.  To serve millions of
peers, this module partitions the **data plane** — the per-landmark path
trees and min-hop orderings — across ``N`` shards by consistent-hashing
landmark identifiers, while a thin coordinator keeps the **peer-facing
plane** (routing table, neighbour cache, reverse neighbour index) and
presents the exact :class:`~repro.core.management_server.ManagementServer`
public API.

Shard protocol
--------------
Every landmark is owned by exactly one shard (consistent hashing via
:class:`ConsistentHashRing`, so adding shards relocates only ~1/N of the
landmarks), and every peer lives on the shard that owns its landmark.  The
coordinator drives shards through the small :class:`ShardBackend` surface —
an in-process :class:`~repro.core.management_server.ManagementServer` per
shard by default, or one worker process per shard via
:class:`~repro.core.remote.ProcessShardBackend`
(``shard_factory=process_shard_factory(...)``) — any backend speaking the
same methods:

* **Arrival** — one ``first_rejected_path`` batch validation per home shard
  first (no partial batch failure; the per-shard results merge by input
  index, so the surfaced error is the single server's), then
  ``insert_paths`` once per shard: a batch of co-arriving peers fans out
  into one validation and one insert round trip per shard, never per peer.
* **Departure** — ``unregister_peer`` on the peer's home shard removes it
  from that shard's tree and min-hop ordering; the coordinator's shared
  :class:`~repro.core.neighbor_cache.NeighborCache` repairs exactly the
  cached lists that referenced the departed peer (reverse neighbour index),
  wherever their owners live.
* **Query** — the home shard answers from its local tree
  (``local_closest``).  When the home tree cannot provide ``k`` candidates,
  the coordinator reuses the **cross-landmark fill** as the inter-shard
  candidate protocol: it sends each shard the per-landmark detour-estimate
  bases, each shard lazily heap-merges its local min-hop orderings into one
  sorted candidate stream (``fill_candidates``), and the coordinator
  heap-merges the per-shard streams into the final top-k.  No new estimator
  is introduced: a shard boundary is just a landmark boundary, so the
  single-server fill order is reproduced exactly.

Equivalence guarantee
---------------------
Because every candidate tuple ``(estimate, repr(peer), peer)`` is a total
order and the cache logic is the very same :class:`NeighborCache` code, a
``ShardedManagementServer`` returns **byte-identical results** to a single
:class:`ManagementServer` fed the same operation sequence — same peers, same
distances, same order — for any shard count.  The property-test oracle in
``tests/core/test_sharded_equivalence.py`` enforces this.  Operation
counters (:class:`ServerStats`) are coordinator-level and may differ from
the single server's in pathological batches (e.g. a peer repeated within
one batch skips the intermediate tree insert); results never do.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from .._validation import require_positive_int
from ..exceptions import LandmarkError, ShardUnavailableError, UnknownPeerError
from .interning import PeerKeyInterner
from .management_plane import (
    DegradedResult,
    ManagementPlaneBase,
    PlaneHealth,
    ServerStats,
    ShardHealth,
)
from .management_server import ManagementServer
from .neighbor_cache import NeighborCache
from .path import LandmarkId, NodeId, PeerId, RouterPath
from .path_tree import PathTree

__all__ = ["ConsistentHashRing", "ShardBackend", "ShardedManagementServer"]


@runtime_checkable
class ShardBackend(Protocol):
    """The data-plane surface a shard must offer the coordinator.

    :class:`~repro.core.management_server.ManagementServer` (with
    ``maintain_cache=False``) implements it in-process, and
    :class:`~repro.core.remote.ProcessShardBackend` implements it over a
    worker process; a further remote or async backend only needs these
    methods (plus :meth:`tree` for diagnostics and distance estimation,
    :meth:`total_tree_visits` for the perf counters, and :meth:`close` for
    resource teardown) to slot in behind the coordinator.
    """

    def register_landmark(self, landmark_id: LandmarkId, router: NodeId) -> None: ...

    def validate_registrable(self, path: RouterPath) -> None: ...

    def first_rejected_path(
        self, paths: Sequence[RouterPath]
    ) -> Optional[Tuple[int, BaseException]]: ...

    def insert_paths(self, paths: Sequence[RouterPath], validate: bool = True) -> None: ...

    def unregister_peer(self, peer_id: PeerId) -> None: ...

    def local_closest(self, peer_id: PeerId, k: int) -> List[Tuple[PeerId, float]]: ...

    def fill_candidates(
        self,
        bases: Mapping[LandmarkId, float],
        exclude_peer: Optional[PeerId] = None,
    ) -> Iterator[Tuple[float, str, PeerId]]: ...

    def tree(self, landmark_id: LandmarkId) -> PathTree: ...

    def tree_distance(
        self, landmark_id: LandmarkId, peer_a: PeerId, peer_b: PeerId
    ) -> float: ...

    def total_tree_visits(self) -> int: ...

    def total_insert_work(self) -> Tuple[int, int]: ...

    def close(self) -> None: ...


class ConsistentHashRing:
    """Deterministic consistent-hash ring over a fixed set of nodes.

    Each node projects ``replicas`` virtual points onto a 64-bit ring
    (SHA-1-derived, so placement is stable across processes and Python hash
    randomisation); a key maps to the first virtual point clockwise from its
    own hash.  With ``replicas`` in the tens, keys spread near-uniformly and
    growing the ring from ``n`` to ``n+1`` nodes relocates ~1/(n+1) of them.
    """

    def __init__(self, node_count: int, replicas: int = 64) -> None:
        self.node_count = require_positive_int(node_count, "node_count")
        self.replicas = require_positive_int(replicas, "replicas")
        points = sorted(
            (self._point(f"node:{node}:replica:{replica}"), node)
            for node in range(node_count)
            for replica in range(replicas)
        )
        self._hashes = [point for point, _ in points]
        self._nodes = [node for _, node in points]

    @staticmethod
    def _point(text: str) -> int:
        """A stable 64-bit ring position for ``text``."""
        return int.from_bytes(hashlib.sha1(text.encode("utf-8")).digest()[:8], "big")

    def node_for(self, key: Hashable) -> int:
        """The node index owning ``key`` (stable across runs and machines)."""
        position = self._point(f"key:{key!r}")
        index = bisect.bisect_right(self._hashes, position) % len(self._hashes)
        return self._nodes[index]

    def __repr__(self) -> str:
        return f"ConsistentHashRing(nodes={self.node_count}, replicas={self.replicas})"


class ShardedManagementServer(ManagementPlaneBase):
    """Drop-in :class:`ManagementServer` replacement over ``N`` shards.

    Presents the same public API — ``register_landmark``, ``register_peer`` /
    ``register_peers``, ``unregister_peer``, ``closest_peers``,
    ``estimate_distance`` and the read accessors — while landmarks (and the
    peers under them) are consistent-hashed across ``shard_count`` backends.
    See the module docstring for the shard protocol and the equivalence
    guarantee.

    Parameters
    ----------
    shard_count:
        Number of shards to partition landmarks across.
    neighbor_set_size / maintain_cache / landmark_distances:
        As for :class:`ManagementServer`; the cache and the distance map are
        coordinator-level.
    shard_factory:
        Builds one shard backend; defaults to an in-process
        :class:`ManagementServer` with ``maintain_cache=False`` (the
        coordinator owns the only cache).  Override to slot in remote or
        async backends implementing :class:`ShardBackend`.
    degraded_reads:
        When True (default), a ``closest_peers`` query that loses a shard
        mid-computation (:class:`~repro.exceptions.ShardUnavailableError`)
        is answered best-effort from the coordinator's neighbour cache and
        the healthy shards' candidate streams, tagged as
        :class:`~repro.core.management_plane.DegradedResult` and counted in
        ``stats.degraded_queries``.  Mutations always fail typed and atomic
        regardless of this flag.  Set False to make reads fail-fast too.
    """

    def __init__(
        self,
        shard_count: int,
        neighbor_set_size: int = 5,
        maintain_cache: bool = True,
        landmark_distances: Optional[Dict[Tuple[LandmarkId, LandmarkId], float]] = None,
        shard_factory: Optional[Callable[[], ShardBackend]] = None,
        degraded_reads: bool = True,
    ) -> None:
        self.shard_count = require_positive_int(shard_count, "shard_count")
        self.neighbor_set_size = require_positive_int(neighbor_set_size, "neighbor_set_size")
        self.maintain_cache = maintain_cache
        self.degraded_reads = degraded_reads
        if shard_factory is None:
            shard_factory = lambda: ManagementServer(  # noqa: E731 - one-liner default
                neighbor_set_size=neighbor_set_size, maintain_cache=False
            )
        self._shards: Tuple[ShardBackend, ...] = tuple(
            shard_factory() for _ in range(shard_count)
        )
        self._ring = ConsistentHashRing(shard_count)
        self._landmark_shard: Dict[LandmarkId, int] = {}
        self._shard_landmarks: List[List[LandmarkId]] = [[] for _ in range(shard_count)]
        self._landmark_routers: Dict[LandmarkId, NodeId] = {}
        self._peer_landmark: Dict[PeerId, LandmarkId] = {}
        self._paths: Dict[PeerId, RouterPath] = {}
        self._landmark_distances: Dict[Tuple[LandmarkId, LandmarkId], float] = {}
        self.stats = ServerStats()
        # The coordinator shares the single server's interner/cache code: one
        # plane-owned key table stamps every cached-list entry, so the
        # ordered inserts of propagate_newcomer never call repr per probe.
        self._interner = PeerKeyInterner()
        self._cache = NeighborCache(self.neighbor_set_size, self.stats, self._interner)
        if landmark_distances:
            for (a, b), distance in landmark_distances.items():
                self.set_landmark_distance(a, b, distance)

    # ---------------------------------------------------------------- shards

    @property
    def shards(self) -> Tuple[ShardBackend, ...]:
        """The shard backends, by index (read-only view for diagnostics)."""
        return self._shards

    def total_tree_visits(self) -> int:
        """Trie nodes visited by queries, summed over every shard's trees."""
        return sum(shard.total_tree_visits() for shard in self._shards)

    def total_insert_work(self) -> Tuple[int, int]:
        """``(nodes_created, nodes_touched)`` summed over every shard's trees."""
        created = 0
        touched = 0
        for shard in self._shards:
            shard_created, shard_touched = shard.total_insert_work()
            created += shard_created
            touched += shard_touched
        return (created, touched)

    def close(self) -> None:
        """Close every shard backend that holds real resources.

        In-process shards make this a no-op; process-backed shards
        (:class:`~repro.core.remote.ProcessShardBackend`) shut their worker
        down and close the pipe.  Idempotent.
        """
        for shard in self._shards:
            shard.close()

    def shard_of(self, landmark_id: LandmarkId) -> int:
        """Index of the shard owning a registered landmark."""
        if landmark_id not in self._landmark_shard:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._landmark_shard[landmark_id]

    def shard_landmarks(self, shard_index: int) -> List[LandmarkId]:
        """Landmarks owned by one shard, in registration order (a copy)."""
        return list(self._shard_landmarks[shard_index])

    def _home_shard_index(self, landmark_id: LandmarkId) -> int:
        """Index of the shard owning ``landmark_id`` (ring placement if
        unregistered).

        Routing unregistered landmarks to their ring shard lets that shard's
        own validation raise the canonical unknown-landmark error.
        """
        index = self._landmark_shard.get(landmark_id)
        if index is None:
            index = self._ring.node_for(landmark_id)
        return index

    def _home_shard(self, landmark_id: LandmarkId) -> ShardBackend:
        """The shard owning ``landmark_id`` (see :meth:`_home_shard_index`)."""
        return self._shards[self._home_shard_index(landmark_id)]

    # -------------------------------------------------------------- landmarks

    def register_landmark(self, landmark_id: LandmarkId, router: NodeId) -> None:
        """Declare a landmark; the consistent-hash ring assigns its shard."""
        if landmark_id in self._landmark_shard:
            raise LandmarkError(f"landmark {landmark_id!r} is already registered")
        shard_index = self._ring.node_for(landmark_id)
        self._shards[shard_index].register_landmark(landmark_id, router)
        self._landmark_shard[landmark_id] = shard_index
        self._shard_landmarks[shard_index].append(landmark_id)
        self._landmark_routers[landmark_id] = router

    def landmarks(self) -> List[LandmarkId]:
        """Identifiers of all registered landmarks (registration order)."""
        return list(self._landmark_shard)

    def tree(self, landmark_id: LandmarkId) -> PathTree:
        """The path tree of one landmark (lives on its owning shard)."""
        if landmark_id not in self._landmark_shard:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._shards[self._landmark_shard[landmark_id]].tree(landmark_id)

    def _same_landmark_distance(
        self, landmark_id: LandmarkId, peer_a: PeerId, peer_b: PeerId
    ) -> float:
        """Route the estimator's same-landmark case to the owning shard.

        One scalar round trip on a remote backend; the inline backend runs
        the very same :meth:`PathTree.tree_distance`, so answers and errors
        match the single server byte for byte.
        """
        return float(
            self._shards[self._landmark_shard[landmark_id]].tree_distance(
                landmark_id, peer_a, peer_b
            )
        )

    # ------------------------------------------------------------------ peers

    def peer_shard(self, peer_id: PeerId) -> int:
        """Index of the shard holding a peer's path tree."""
        return self._landmark_shard[self.peer_landmark(peer_id)]

    # -------------------------------------------------------------- register

    def register_peers(
        self, paths: Sequence[RouterPath]
    ) -> Dict[PeerId, List[Tuple[PeerId, float]]]:
        """Batch arrival: per-shard tree inserts first, then one cache pass.

        Validates every path up front as ONE ``first_rejected_path`` call
        per home shard (validation is read-only, so per-shard grouping is
        safe; merging the per-shard results by input index reproduces the
        single server's first-invalid-path-in-input-order error exactly),
        performs the tree inserts as one ``insert_paths`` call per shard —
        so a remote backend pays round trips per shard, not per path — then
        computes neighbour lists and propagates cache updates exactly like
        the single server: co-arriving peers see each other immediately and
        results match the single server byte for byte.
        """
        to_validate: Dict[int, List[Tuple[int, RouterPath]]] = {}
        for input_index, path in enumerate(paths):
            shard_index = self._home_shard_index(path.landmark_id)
            to_validate.setdefault(shard_index, []).append((input_index, path))
        first_error: Optional[Tuple[int, BaseException]] = None
        for shard_index, indexed in to_validate.items():
            rejected = self._shards[shard_index].first_rejected_path(
                [path for _, path in indexed]
            )
            if rejected is not None:
                input_index = indexed[rejected[0]][0]
                if first_error is None or input_index < first_error[0]:
                    first_error = (input_index, rejected[1])
        if first_error is not None:
            raise first_error[1]

        pending: Dict[PeerId, RouterPath] = {}
        for path in paths:
            if path.peer_id in pending:
                # In-batch re-registration: the single server removes and
                # re-inserts, moving the peer to the end of the registration
                # order; its cache effects are no-ops at this stage.
                self._peer_landmark.pop(path.peer_id, None)
                self._paths.pop(path.peer_id, None)
            elif path.peer_id in self._peer_landmark:
                self.unregister_peer(path.peer_id)
            self._peer_landmark[path.peer_id] = path.landmark_id
            self._paths[path.peer_id] = path
            self.stats.registrations += 1
            self._cache.note_membership_change()
            pending[path.peer_id] = path

        by_shard: Dict[int, List[RouterPath]] = {}
        for path in pending.values():
            by_shard.setdefault(self._landmark_shard[path.landmark_id], []).append(path)
        for shard_index, shard_paths in by_shard.items():
            self._shards[shard_index].insert_paths(shard_paths, validate=False)
        return self._neighbor_phase(pending)

    def unregister_peer(self, peer_id: PeerId) -> None:
        """Remove a departing peer from its home shard and the cached lists.

        The home shard repairs its tree and min-hop ordering; the
        coordinator's reverse neighbour index then repairs exactly the cached
        lists that referenced the departed peer — including lists whose
        owners live on other shards.  The shard is told first and the
        coordinator's indexes only updated after it acknowledged: a remote
        shard failing mid-departure (:class:`ShardUnavailableError`) leaves
        the coordinator unchanged, so restart-and-replay reconverges.
        """
        if peer_id not in self._peer_landmark:
            raise UnknownPeerError(peer_id)
        landmark_id = self._peer_landmark[peer_id]
        try:
            self._shards[self._landmark_shard[landmark_id]].unregister_peer(peer_id)
        except UnknownPeerError:
            # A shard crash mid-register_peers can leave the coordinator
            # ahead of the (replayed) shard: the peer's insert never reached
            # it.  The peer is already absent shard-side, which is exactly
            # what a departure wants — proceed with coordinator cleanup so
            # the documented restart + replay + re-register recovery
            # converges instead of dead-ending on a phantom peer.  An inline
            # shard can never take this branch (coordinator and shard
            # membership move in lock step in one process).
            pass
        del self._peer_landmark[peer_id]
        self._paths.pop(peer_id)
        self._interner.discard(peer_id)
        self.stats.removals += 1
        if not self.maintain_cache:
            return
        self._cache.drop_peer(peer_id)

    # -------------------------------------------------------------- internals

    def _validate_path(self, path: RouterPath) -> None:
        """Route validation to the path's home shard (ring placement)."""
        self._home_shard(path.landmark_id).validate_registrable(path)

    def _insert_path(self, path: RouterPath) -> None:
        """Insert one already-validated path on its home shard and index it."""
        self._shards[self._landmark_shard[path.landmark_id]].insert_paths(
            [path], validate=False
        )
        self._peer_landmark[path.peer_id] = path.landmark_id
        self._paths[path.peer_id] = path
        self.stats.registrations += 1
        self._cache.note_membership_change()

    def _compute_neighbors(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Home-shard tree query plus (if short) the inter-shard fill merge."""
        k = k or self.neighbor_set_size
        landmark_id = self._peer_landmark[peer_id]
        home = self._shards[self._landmark_shard[landmark_id]]
        self.stats.tree_queries += 1
        neighbors = home.local_closest(peer_id, k)
        if len(neighbors) >= k:
            return neighbors[:k]

        own_hops = self._paths[peer_id].hop_count
        already = {peer for peer, _ in neighbors}
        for estimate, _, other_peer in self._inter_shard_candidates(
            peer_id, landmark_id, own_hops
        ):
            if len(neighbors) >= k:
                break
            if other_peer in already:
                continue
            neighbors.append((other_peer, estimate))
            already.add(other_peer)
        return neighbors

    def _inter_shard_candidates(
        self, peer_id: PeerId, landmark_id: LandmarkId, own_hops: int
    ) -> Iterator[Tuple[float, str, PeerId]]:
        """Heap-merge of per-shard candidate streams (the inter-shard protocol).

        The coordinator computes, per shard, the detour-estimate base of each
        of its landmarks; every shard lazily merges its local min-hop
        orderings into one sorted stream, and this merge interleaves the
        shard streams.  Because the stream elements ``(estimate, repr(peer),
        peer)`` are totally ordered, the merged sequence is independent of
        how landmarks are partitioned — the equivalence guarantee.
        """
        streams = []
        for shard_index, shard in enumerate(self._shards):
            bases = self._fill_bases(self._shard_landmarks[shard_index], landmark_id, own_hops)
            if bases:
                streams.append(shard.fill_candidates(bases, exclude_peer=peer_id))
        return heapq.merge(*streams)

    # ------------------------------------------------------------ degradation

    def health(self) -> PlaneHealth:
        """Per-shard liveness plus the degraded-query counter.

        Backends exposing ``health_check`` (process shards) are probed; pure
        in-process shards cannot fail independently and report alive.
        """
        reports = []
        for index, shard in enumerate(self._shards):
            name = str(getattr(shard, "name", f"shard-{index}"))
            probe = getattr(shard, "health_check", None)
            alive = bool(probe()) if callable(probe) else True
            reports.append(ShardHealth(index=index, name=name, alive=alive))
        return PlaneHealth(
            shards=tuple(reports), degraded_queries=self.stats.degraded_queries
        )

    def _degraded_neighbors(
        self, peer_id: PeerId, k: int, error: ShardUnavailableError
    ) -> Optional[DegradedResult]:
        """Best-effort ``closest_peers`` answer while a shard is down.

        Assembles up to ``k`` candidates from, in order: the coordinator's
        cached list for the peer (the best known answer as of the last
        successful compute), the home shard's tree (guarded — it is often
        the shard that just failed), and the healthy shards' fill streams.
        Every shard touch is guarded, so a still-dead shard narrows the
        answer instead of failing it.  The result is a
        :class:`DegradedResult` and is never written back to the cache; the
        next query after recovery recomputes the full answer.
        """
        if not self.degraded_reads:
            return None
        pairs: List[Tuple[PeerId, float]] = []
        already = {peer_id}
        if self.maintain_cache:
            for entry in self._cache.get(peer_id) or ():
                if entry.peer_id not in already:
                    pairs.append((entry.peer_id, entry.distance))
                    already.add(entry.peer_id)
        if len(pairs) < k:
            landmark_id = self._peer_landmark[peer_id]
            own_hops = self._paths[peer_id].hop_count
            try:
                local = self._shards[self._landmark_shard[landmark_id]].local_closest(
                    peer_id, k
                )
            except ShardUnavailableError:
                local = []
            for peer, distance in local:
                if len(pairs) >= k:
                    break
                if peer not in already:
                    pairs.append((peer, float(distance)))
                    already.add(peer)
        if len(pairs) < k:
            landmark_id = self._peer_landmark[peer_id]
            own_hops = self._paths[peer_id].hop_count
            streams = []
            for shard_index, shard in enumerate(self._shards):
                bases = self._fill_bases(
                    self._shard_landmarks[shard_index], landmark_id, own_hops
                )
                if not bases:
                    continue
                try:
                    # Process backends open lazily (first pull), but a
                    # backend may also refuse at call time — guard both.
                    stream = shard.fill_candidates(bases, exclude_peer=peer_id)
                except ShardUnavailableError:
                    continue
                streams.append(self._guarded_stream(stream))
            for estimate, _, other_peer in heapq.merge(*streams):
                if len(pairs) >= k:
                    break
                if other_peer not in already:
                    pairs.append((other_peer, float(estimate)))
                    already.add(other_peer)
        return DegradedResult(
            pairs[:k], shard=getattr(error, "shard", None), reason=str(error)
        )

    @staticmethod
    def _guarded_stream(
        stream: Iterator[Tuple[float, str, PeerId]],
    ) -> Iterator[Tuple[float, str, PeerId]]:
        """A fill stream that ends quietly if its shard becomes unavailable."""
        try:
            yield from stream
        except ShardUnavailableError:
            return

    def __repr__(self) -> str:
        return (
            f"ShardedManagementServer(shards={self.shard_count}, peers={self.peer_count}, "
            f"landmarks={len(self._landmark_shard)}, k={self.neighbor_set_size}, "
            f"cache={'on' if self.maintain_cache else 'off'})"
        )
