"""Network shard transport: asyncio shard servers, socket-backed shards.

The PR 3 wire protocol — length-prefixed frames, the typed path codec,
batched validate+insert, chunked lazy ``fill_candidates`` — was designed
transport-agnostic but only ran over :func:`multiprocessing.Pipe`.  This
module runs the *identical* protocol over real sockets so shards can leave
the machine: a :class:`ShardServer` (asyncio, TCP and Unix-domain) hosts a
``ManagementServer(maintain_cache=False)`` per **connection-scoped shard**,
and :class:`SocketShardBackend` is a full
:class:`~repro.core.sharded.ShardBackend` client over it.  The frame codec
(:mod:`repro.core.codec`), the request/reply dispatch
(:class:`~repro.core.remote.ShardRequestHandler`), the client-side backend
surface (:class:`~repro.core.remote.SupervisedShardBackend`) and the whole
journal/recovery/compaction story
(:class:`~repro.core.remote.ShardSupervisorBase`) are reused verbatim —
the only new code is how frames move and how a dead transport comes back.

Connection-scoped shards and the hello handshake
------------------------------------------------
A shard's state lives exactly as long as its connection.  The first frame a
client sends is ``hello`` carrying ``(PROTOCOL_VERSION,
neighbor_set_size)``; the server answers ``(PROTOCOL_VERSION, generation)``
after building a fresh ``ManagementServer`` for the connection.  A second
``hello`` on the same connection discards the shard and builds a new one —
which is how pooled connections are recycled without leaking a previous
tenant's peers.  Dying and reconnecting therefore lands on an *empty*
shard, exactly like a respawned worker process, and the supervisor heals it
the same way: replay the operation journal (snapshot-compacted or not) in
order, byte-identical by insert order, under the same
:class:`~repro.core.remote.RecoveryPolicy` backoff loop.  *Restart* and
*reconnect* are one concept with two transports.

Stale-epoch detection
---------------------
``generation`` is a server-wide monotonic counter bumped by every hello.
The client remembers the largest generation it has seen and refuses a
reconnect whose generation is not strictly newer — that is a **stale
epoch**: a server that lost time (restarted from an old state, or a
load-balancer sent us somewhere else) must not silently absorb a journal
replay meant for its successor.  A stale reconnect fails with a typed
:class:`~repro.exceptions.ShardUnavailableError`; under a
:class:`RecoveryPolicy` the next attempt dials again and succeeds once the
server is genuinely ahead.  The ``reconnect_stale_epoch`` chaos fault
scripts precisely this sequence.

Deadlines and fault surface
---------------------------
Every round trip draws its phases — dial, send, header read, body read —
from ONE :class:`~repro.core.budget.DeadlineBudget`, so worst-case wall
time is a single ``request_timeout`` no matter how the slowness is split
(the same budget discipline that fixed the 2x-timeout bug in the pipe
transport).  Every transport failure (refused dial, reset, truncated frame,
undecodable reply, deadline) raises ``ShardUnavailableError`` naming the
shard and poisons the connection so later requests fail fast until
reconnect.  :meth:`SocketShardSupervisor.sever` is the fault-injection
surface: ``close`` (silent death), ``reset`` (RST via ``SO_LINGER(0)``), and
``partial_frame`` (a frame whose header promises more bytes than follow —
the truncated-write corruption the length prefix exists to catch).

Topology
--------
One coordinator process drives N :class:`SocketShardBackend` shards, each
over its own connection, against one or many :class:`ShardServer`
processes (``repro-experiments shard-serve``).  For self-contained runs —
tests, perf, scenarios — :func:`socket_shard_factory` hosts a loopback
:class:`LocalShardServer` on a daemon thread (Unix socket where available,
else TCP on ``127.0.0.1``) and refcounts it away when the last shard
closes, so ``ShardedManagementServer.close()`` tears the whole plane down.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
import pickle
import socket
import struct
import tempfile
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..exceptions import ShardUnavailableError, WireProtocolError
from .budget import DeadlineBudget
from .codec import decode_frame, encode_frame
from .remote import (
    DEFAULT_FILL_CHUNK,
    DEFAULT_REQUEST_TIMEOUT,
    RecoveryPolicy,
    ShardRequestHandler,
    ShardSupervisorBase,
    SupervisedShardBackend,
)

__all__ = [
    "PROTOCOL_VERSION",
    "FramedConnection",
    "LocalShardServer",
    "ShardServer",
    "SocketConnectionPool",
    "SocketShardBackend",
    "SocketShardSupervisor",
    "build_serve_parser",
    "run_serve",
    "socket_shard_factory",
]

#: Version of the hello handshake + operation set.  Bump on incompatible
#: protocol changes; the handshake fails typed across a version skew.
PROTOCOL_VERSION = 1

#: Upper bound on one frame body — far above any real snapshot, low enough
#: that a corrupt header cannot make either side try to buffer gigabytes.
MAX_FRAME_BYTES = 1 << 30

#: Idle connections a :class:`SocketConnectionPool` keeps per address.
DEFAULT_POOL_IDLE = 4

_HEADER = struct.Struct("!I")

#: A shard server address: a Unix-socket path, or a ``(host, port)`` pair.
Address = Union[str, Tuple[str, int]]

_TRANSPORT_ERRORS = (OSError, EOFError, WireProtocolError, pickle.UnpicklingError)


def format_address(address: Address) -> str:
    """Human-readable form used in error messages and serve banners."""
    if isinstance(address, str):
        return f"unix:{address}"
    host, port = address
    return f"tcp:{host}:{port}"


def _dial(address: Address, timeout: float) -> socket.socket:
    """Open one blocking client socket to a shard server."""
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        # Request/reply with small frames: never wait for Nagle coalescing.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        sock.settimeout(timeout)
        sock.connect(address if isinstance(address, str) else tuple(address))
    except BaseException:
        sock.close()
        raise
    return sock


class FramedConnection:
    """One blocking client connection speaking length-prefixed frames.

    All blocking calls take a :class:`DeadlineBudget` and set the socket
    timeout to the budget's *remaining* time before each phase, so a send
    plus a multi-read reply is jointly bounded by one deadline.
    """

    def __init__(self, sock: socket.socket, address: Address) -> None:
        self.sock = sock
        self.address = address
        self.closed = False

    # ----------------------------------------------------------------- frames

    def send_frame(self, frame: bytes, budget: DeadlineBudget) -> None:
        self._arm_timeout(budget)
        self.sock.sendall(frame)

    def recv_frame(self, budget: DeadlineBudget) -> Tuple[object, ...]:
        header = self._recv_exact(_HEADER.size, budget)
        (declared,) = _HEADER.unpack(header)
        if declared > MAX_FRAME_BYTES:
            raise WireProtocolError(f"frame declares {declared} body bytes (limit {MAX_FRAME_BYTES})")
        body = self._recv_exact(declared, budget)
        return decode_frame(header + body)

    def _recv_exact(self, count: int, budget: DeadlineBudget) -> bytes:
        chunks: List[bytes] = []
        remaining = count
        while remaining > 0:
            self._arm_timeout(budget)
            chunk = self.sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise EOFError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _arm_timeout(self, budget: DeadlineBudget) -> None:
        remaining = budget.remaining()
        if remaining <= 0:
            raise TimeoutError("deadline budget exhausted")
        self.sock.settimeout(remaining)

    # -------------------------------------------------------- fault injection

    def close(self) -> None:
        """Orderly close (idempotent): FIN, then release the descriptor."""
        if self.closed:
            return
        self.closed = True
        with contextlib.suppress(OSError):
            self.sock.shutdown(socket.SHUT_RDWR)
        self.sock.close()

    def reset_close(self) -> None:
        """Abortive close: ``SO_LINGER(0)`` so TCP sends RST, not FIN."""
        if self.closed:
            return
        self.closed = True
        with contextlib.suppress(OSError):
            self.sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        self.sock.close()

    def send_partial_frame(self) -> None:
        """Send a frame whose header promises more bytes than follow, then die.

        This is the truncated-write corruption the length prefix exists to
        catch: the server reads a short body, hits EOF and drops the
        connection; the client side is closed immediately so its next
        request fails typed.
        """
        if self.closed:
            return
        with contextlib.suppress(OSError):
            self.sock.settimeout(1.0)
            self.sock.sendall(_HEADER.pack(64) + b"\x00\x01\x02")
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"FramedConnection({format_address(self.address)}, {state})"


class SocketConnectionPool:
    """Idle :class:`FramedConnection` objects for one shard server address.

    Reconnecting supervisors draw from the pool before dialling, and return
    still-healthy connections on teardown; the ``hello`` handshake resets
    the connection-scoped shard on every acquire, so a pooled connection
    can never leak a previous tenant's state.  Poisoned or severed
    connections are closed, never pooled.  The pool is refcounted by the
    backends of one factory and closes its idle sockets when the last
    backend closes.
    """

    def __init__(self, address: Address, max_idle: int = DEFAULT_POOL_IDLE) -> None:
        if max_idle < 0:
            raise ValueError(f"max_idle must be >= 0, got {max_idle}")
        self.address = address
        self.max_idle = max_idle
        self._idle: List[FramedConnection] = []
        self._lock = threading.Lock()
        self._refs = 0
        self._closed = False
        self.dials = 0
        self.reuses = 0

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    def acquire(self, budget: DeadlineBudget) -> FramedConnection:
        """An idle connection if one is pooled, else a fresh dial.

        A pooled connection may have died server-side while idle; the
        caller's hello handshake detects that and (under recovery) the next
        attempt dials fresh — the pool never vouches for liveness.
        """
        while True:
            with self._lock:
                conn = self._idle.pop() if self._idle else None
            if conn is None:
                break
            if not conn.closed:
                self.reuses += 1
                return conn
        remaining = budget.remaining()
        if remaining <= 0:
            raise TimeoutError("deadline budget exhausted before dialling")
        self.dials += 1
        return FramedConnection(_dial(self.address, remaining), self.address)

    def release(self, conn: FramedConnection) -> None:
        """Return a healthy connection to the pool (or close it)."""
        if conn.closed:
            return
        with self._lock:
            if not self._closed and len(self._idle) < self.max_idle:
                self._idle.append(conn)
                return
        conn.close()

    def add_ref(self) -> None:
        with self._lock:
            self._refs += 1
            self._closed = False

    def drop_ref(self) -> None:
        with self._lock:
            self._refs = max(0, self._refs - 1)
            last = self._refs == 0
        if last:
            self.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for conn in idle:
            conn.close()

    def __repr__(self) -> str:
        return (
            f"SocketConnectionPool({format_address(self.address)}, "
            f"idle={self.idle_count}, dials={self.dials}, reuses={self.reuses})"
        )


# ------------------------------------------------------------------ server


class ShardServer:
    """Asyncio server hosting one connection-scoped shard per client.

    Each connection runs the protocol of :func:`repro.core.remote._dispatch`
    through a :class:`~repro.core.remote.ShardRequestHandler` built at the
    connection's ``hello``; the server itself only owns the listen sockets
    and the monotonic ``generation`` counter the stale-epoch check rides on.
    Shard state is **per connection** — two clients never share a
    ``ManagementServer``, and a dropped connection takes its shard with it
    (the client's journal replay rebuilds it byte-identically on reconnect).
    """

    def __init__(self) -> None:
        self._generation = 0
        self._servers: List[asyncio.AbstractServer] = []
        self.addresses: List[Address] = []
        self.connections_served = 0

    @property
    def generation(self) -> int:
        """Hellos served so far — the stale-epoch reference counter."""
        return self._generation

    async def listen(self, address: Address) -> Address:
        """Bind one listen socket; returns the resolved address (port 0 → real)."""
        if isinstance(address, str):
            server = await asyncio.start_unix_server(self._handle_connection, path=address)
            resolved: Address = address
        else:
            host, port = address
            server = await asyncio.start_server(self._handle_connection, host=host, port=port)
            bound = server.sockets[0].getsockname()
            resolved = (bound[0], bound[1])
        self._servers.append(server)
        self.addresses.append(resolved)
        return resolved

    async def close(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()

    async def _handle_connection(self, reader: asyncio.StreamReader, writer) -> None:
        self.connections_served += 1
        handler: Optional[ShardRequestHandler] = None
        try:
            while True:
                message = await self._read_frame(reader)
                if message is None:
                    break
                request_id, op = message[0], message[1]
                args = message[2] if len(message) > 2 else ()
                if op == "shutdown":
                    break
                reply = self._apply(handler, request_id, op, args)
                if isinstance(reply, _HelloAccepted):
                    if handler is not None:
                        handler.close()
                    handler = reply.handler
                    reply = reply.reply
                if reply is not None:
                    try:
                        writer.write(encode_frame(reply))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        break
        finally:
            if handler is not None:
                handler.close()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_frame(self, reader: asyncio.StreamReader):
        """One decoded request, or ``None`` when the connection is done for.

        Truncated frames (EOF mid-body — the partial-frame corruption),
        oversized headers and undecodable bodies all drop the connection:
        once framing is in doubt, nothing later on the stream can be
        trusted, and the connection-scoped shard dies with it.
        """
        try:
            header = await reader.readexactly(_HEADER.size)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None
        (declared,) = _HEADER.unpack(header)
        if declared > MAX_FRAME_BYTES:
            return None
        try:
            body = await reader.readexactly(declared)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None
        try:
            return decode_frame(header + body)
        except (WireProtocolError, pickle.UnpicklingError, ValueError):
            return None

    def _apply(
        self,
        handler: Optional[ShardRequestHandler],
        request_id: int,
        op: str,
        args: Tuple[object, ...],
    ):
        if op == "hello":
            try:
                version, neighbor_set_size = args
            except (TypeError, ValueError):
                version, neighbor_set_size = None, None
            if version != PROTOCOL_VERSION:
                return (
                    request_id,
                    "err",
                    "WireProtocolError",
                    f"server speaks protocol {PROTOCOL_VERSION}, client sent {version!r}",
                ) if request_id else None
            self._generation += 1
            fresh = ShardRequestHandler(int(neighbor_set_size))  # type: ignore[arg-type]
            reply = (request_id, "ok", (PROTOCOL_VERSION, self._generation))
            return _HelloAccepted(fresh, reply if request_id else None)
        if handler is None:
            # Everything but hello needs a shard; answering typed (instead
            # of dropping the connection) lets the client fail fast with a
            # ShardUnavailableError naming the real problem.
            return (
                request_id,
                "err",
                "WireProtocolError",
                f"operation {op!r} before hello on this connection",
            ) if request_id else None
        return handler.handle(request_id, op, args)


class _HelloAccepted:
    """Internal marker: a hello swapped in a fresh handler for this connection."""

    __slots__ = ("handler", "reply")

    def __init__(self, handler: ShardRequestHandler, reply) -> None:
        self.handler = handler
        self.reply = reply


class LocalShardServer:
    """A loopback :class:`ShardServer` on a daemon thread, refcounted away.

    The self-contained deployment used by tests, scenarios and the perf
    suite: binds an ephemeral Unix socket (or ``127.0.0.1`` TCP where
    ``AF_UNIX`` is unavailable), serves until the last refcount holder
    releases it, then stops the loop and unlinks the socket — so closing
    every backend of a factory leaves no thread, socket or file behind.
    """

    def __init__(self) -> None:
        self.address: Optional[Address] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ShardServer] = None
        self._thread: Optional[threading.Thread] = None
        self._tempdir: Optional[str] = None
        self._refs = 0
        self._lock = threading.Lock()
        self._stopped = False
        self._start()

    @property
    def alive(self) -> bool:
        return not self._stopped

    @property
    def generation(self) -> int:
        server = self._server
        return server.generation if server is not None else 0

    def _pick_address(self) -> Address:
        if hasattr(socket, "AF_UNIX"):
            self._tempdir = tempfile.mkdtemp(prefix="repro-shard-")
            return os.path.join(self._tempdir, "shard.sock")
        return ("127.0.0.1", 0)

    def _start(self) -> None:
        started = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            server = ShardServer()
            try:
                self.address = loop.run_until_complete(server.listen(self._pick_address()))
            except BaseException as error:  # noqa: BLE001 - reported to starter
                failure.append(error)
                started.set()
                loop.close()
                return
            self._server = server
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(server.close())
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        thread = threading.Thread(target=run, name="repro-shard-server", daemon=True)
        self._thread = thread
        thread.start()
        started.wait()
        if failure:
            self._stopped = True
            self._cleanup_paths()
            raise ShardUnavailableError(
                "local-shard-server", f"could not bind loopback server: {failure[0]}"
            ) from failure[0]

    # ------------------------------------------------------------- refcounting

    def acquire(self) -> "LocalShardServer":
        with self._lock:
            if self._stopped:
                raise ShardUnavailableError("local-shard-server", "server already stopped")
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs = max(0, self._refs - 1)
            last = self._refs == 0 and not self._stopped
        if last:
            self.stop()

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._cleanup_paths()

    def _cleanup_paths(self) -> None:
        if self._tempdir is not None:
            sock_path = os.path.join(self._tempdir, "shard.sock")
            with contextlib.suppress(OSError):
                os.unlink(sock_path)
            with contextlib.suppress(OSError):
                os.rmdir(self._tempdir)
            self._tempdir = None

    def __repr__(self) -> str:
        state = "alive" if self.alive else "stopped"
        where = format_address(self.address) if self.address is not None else "unbound"
        return f"LocalShardServer({where}, {state}, refs={self._refs})"


# ------------------------------------------------------------------ client


class SocketShardSupervisor(ShardSupervisorBase):
    """Supervises one connection-scoped shard on a remote server.

    The socket instance of :class:`~repro.core.remote.ShardSupervisorBase`:
    journal, recovery loop and compaction are inherited unchanged — only
    the transport hooks differ.  *Restart* means reconnect (pool-first) +
    hello + journal replay; :attr:`epoch` counts connections exactly as the
    process supervisor counts worker incarnations, so fill-stream epoch
    guards behave identically.

    Chaos hooks: :meth:`sever` kills the connection in transport-shaped
    ways (``close`` / ``reset`` / ``partial_frame``) and
    :meth:`rewind_generation` makes the *next* reconnect look stale —
    together they script every network fault kind deterministically.
    """

    def __init__(
        self,
        name: str,
        address: Address,
        neighbor_set_size: int,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        recovery: Optional[RecoveryPolicy] = None,
        compact_watermark: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        pool: Optional[SocketConnectionPool] = None,
    ) -> None:
        super().__init__(
            name,
            request_timeout=request_timeout,
            recovery=recovery,
            compact_watermark=compact_watermark,
            clock=clock,
        )
        self.address = address
        self.neighbor_set_size = neighbor_set_size
        self._pool = pool
        self._conn: Optional[FramedConnection] = None
        self._seen_generation: Optional[int] = None
        self._establish_transport()

    @property
    def connection(self) -> Optional[FramedConnection]:
        """The live client connection (or ``None``)."""
        return self._conn

    @property
    def seen_generation(self) -> Optional[int]:
        """Largest server generation this supervisor has accepted."""
        return self._seen_generation

    # ------------------------------------------------------- transport hooks

    def _establish_transport(self) -> None:
        budget = self._budget(None)
        conn: Optional[FramedConnection] = None
        try:
            if self._pool is not None:
                conn = self._pool.acquire(budget)
            else:
                remaining = budget.remaining()
                if remaining <= 0:
                    raise TimeoutError("deadline budget exhausted before dialling")
                conn = FramedConnection(_dial(self.address, remaining), self.address)
            generation = self._hello(conn, budget)
        except ShardUnavailableError:
            if conn is not None:
                conn.close()
            raise
        except _TRANSPORT_ERRORS as error:
            if conn is not None:
                conn.close()
            raise ShardUnavailableError(
                self.name,
                f"connect to {format_address(self.address)} failed: "
                f"{type(error).__name__}: {error}",
            ) from error
        if self._seen_generation is not None and generation <= self._seen_generation:
            # A server whose generation did not advance past what we already
            # saw is running old state (restarted from scratch behind our
            # back, or we were routed to a stale replica): replaying the
            # journal into it could diverge silently, so fail typed and let
            # the recovery loop try again once the server is ahead.
            conn.close()
            raise ShardUnavailableError(
                self.name,
                f"reconnected to a stale epoch: server generation {generation} "
                f"<= last seen {self._seen_generation}",
            )
        self._seen_generation = generation
        self._conn = conn
        self._poisoned = None
        self._epoch += 1

    def _hello(self, conn: FramedConnection, budget: DeadlineBudget) -> int:
        request_id = next(self._next_request_id)
        conn.send_frame(
            encode_frame((request_id, "hello", (PROTOCOL_VERSION, self.neighbor_set_size))),
            budget,
        )
        reply = conn.recv_frame(budget)
        value = self._interpret_reply(reply, request_id, "hello")
        version, generation = value  # type: ignore[misc]
        if version != PROTOCOL_VERSION:
            raise WireProtocolError(
                f"server speaks protocol {version!r}, client {PROTOCOL_VERSION}"
            )
        return int(generation)  # type: ignore[arg-type]

    def _teardown_transport(self) -> None:
        conn, self._conn = self._conn, None
        if conn is None:
            return
        if self._pool is not None and self._poisoned is None and not conn.closed:
            self._pool.release(conn)
        else:
            conn.close()

    def _roundtrip(
        self, op: str, args: Tuple[object, ...], timeout: Optional[float] = None
    ) -> object:
        if self._closed:
            raise ShardUnavailableError(self.name, "supervisor is closed")
        if self._poisoned is not None:
            raise ShardUnavailableError(self.name, f"channel poisoned: {self._poisoned}")
        conn = self._conn
        if conn is None or conn.closed:
            raise ShardUnavailableError(self.name, "not connected to shard server")
        budget = self._budget(timeout)
        request_id = next(self._next_request_id)
        try:
            conn.send_frame(encode_frame((request_id, op, args)), budget)
            reply = conn.recv_frame(budget)
        except ShardUnavailableError:
            raise
        except _TRANSPORT_ERRORS as error:
            # Send or reply may be half-done: framing is desynchronised, so
            # poison the connection and fail fast until reconnect.
            self._poisoned = f"transport failure during {op!r}: {type(error).__name__}"
            raise ShardUnavailableError(
                self.name,
                f"connection failed during {op!r}: {type(error).__name__}: {error}",
            ) from error
        return self._interpret_reply(reply, request_id, op)

    def notify(self, op: str, args: Tuple[object, ...]) -> None:
        conn = self._conn
        if conn is None or conn.closed or self._poisoned is not None:
            return
        budget = DeadlineBudget(min(1.0, self.request_timeout), clock=self._clock)
        try:
            conn.send_frame(encode_frame((0, op, args)), budget)
        except _TRANSPORT_ERRORS:
            # A partially written notification desynchronises framing for
            # every later frame — unlike the message-atomic pipe transport,
            # a failed socket notify must poison the connection.
            self._poisoned = f"transport failure during notify {op!r}"

    # -------------------------------------------------------- fault injection

    def kill(self) -> None:
        """Destroy the transport abruptly (the generic chaos kill hook)."""
        self.sever("close")

    def sever(self, mode: str = "close") -> None:
        """Kill the live connection in a transport-shaped way.

        ``close``
            Silent death: the socket just goes away (FIN), like a crashed
            server host.
        ``reset``
            Abortive close: ``SO_LINGER(0)`` makes TCP send RST, the
            mid-operation connection-reset case.
        ``partial_frame``
            Send a frame whose header declares more bytes than follow, then
            close — the truncated-write corruption case.
        """
        conn = self._conn
        if conn is None:
            return
        if mode == "close":
            conn.close()
        elif mode == "reset":
            conn.reset_close()
        elif mode == "partial_frame":
            conn.send_partial_frame()
        else:
            raise ValueError(f"unknown sever mode {mode!r}")

    def rewind_generation(self, steps: int = 1) -> None:
        """Make the next reconnect look stale (chaos: ``reconnect_stale_epoch``).

        Advances the *expected* generation past the server's next hello, so
        exactly one reconnect attempt fails with the typed stale-epoch
        error (and, under recovery, the attempt after it succeeds — the
        rejected hello itself advanced the server).
        """
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if self._seen_generation is not None:
            self._seen_generation += steps

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("poisoned" if self._poisoned else "connected")
        return (
            f"SocketShardSupervisor(name={self.name!r}, "
            f"address={format_address(self.address)}, {state}, epoch={self._epoch})"
        )


class SocketShardBackend(SupervisedShardBackend):
    """A :class:`~repro.core.sharded.ShardBackend` living behind a socket.

    The client-side surface (batched validation, chunked lazy fill streams,
    diagnostics) is :class:`~repro.core.remote.SupervisedShardBackend`,
    shared byte for byte with the process backend; this class only wires a
    :class:`SocketShardSupervisor` under it.  Without an explicit
    ``address`` the backend hosts its own :class:`LocalShardServer`, making
    a standalone backend fully self-contained (tests, notebooks).

    Always :meth:`close` the backend (or use it as a context manager): the
    connection is a real socket and the loopback server a real thread.
    """

    def __init__(
        self,
        address: Optional[Address] = None,
        neighbor_set_size: int = 5,
        name: str = "socket-shard",
        fill_chunk_size: int = DEFAULT_FILL_CHUNK,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        recovery: Optional[RecoveryPolicy] = None,
        compact_watermark: Optional[int] = None,
        pool: Optional[SocketConnectionPool] = None,
        on_close: Optional[Callable[[], None]] = None,
    ) -> None:
        self.name = name
        self.fill_chunk_size = fill_chunk_size
        self._on_close = on_close
        self._released = False
        if address is None:
            server = LocalShardServer().acquire()
            address = server.address
            previous = on_close
            def release_owned(server=server, previous=previous):
                server.release()
                if previous is not None:
                    previous()
            self._on_close = release_owned
        try:
            self.supervisor = SocketShardSupervisor(
                name=name,
                address=address,  # type: ignore[arg-type]
                neighbor_set_size=neighbor_set_size,
                request_timeout=request_timeout,
                recovery=recovery,
                compact_watermark=compact_watermark,
                pool=pool,
            )
        except BaseException:
            self._release_once()
            raise

    def _release_once(self) -> None:
        if not self._released:
            self._released = True
            if self._on_close is not None:
                self._on_close()

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._release_once()

    def __repr__(self) -> str:
        return (
            f"SocketShardBackend(name={self.name!r}, "
            f"address={format_address(self.supervisor.address)})"
        )


def socket_shard_factory(
    neighbor_set_size: int = 5,
    addresses: Optional[Sequence[Address]] = None,
    fill_chunk_size: int = DEFAULT_FILL_CHUNK,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    recovery: Optional[RecoveryPolicy] = None,
    compact_watermark: Optional[int] = None,
    pool_idle: int = DEFAULT_POOL_IDLE,
) -> Callable[[], SocketShardBackend]:
    """A ``shard_factory`` for :class:`ShardedManagementServer` over sockets.

    With ``addresses``, shard *i* connects to ``addresses[i % len]`` —
    point it at ``repro-experiments shard-serve`` instances on other
    machines.  Without, the factory hosts ONE loopback
    :class:`LocalShardServer` shared by all its shards (each on its own
    connection, hence its own connection-scoped ``ManagementServer``) and
    refcounts it down when the last shard closes — so the existing
    ``ShardedManagementServer.close()`` / ``Scenario.close()`` flows tear
    the whole socket plane down without new plumbing.  Connections are
    pooled per address (shared by the factory's shards) so reconnects reuse
    warm sockets.
    """
    indexes = itertools.count()
    state: dict = {"server": None}
    pools: dict = {}

    def factory() -> SocketShardBackend:
        index = next(indexes)
        release: Optional[Callable[[], None]] = None
        if addresses:
            address = addresses[index % len(addresses)]
        else:
            server = state["server"]
            if server is None or not server.alive:
                server = LocalShardServer()
                state["server"] = server
            server.acquire()
            address = server.address
            release = server.release
        key = address if isinstance(address, str) else tuple(address)
        pool = pools.get(key)
        if pool is None:
            pool = pools[key] = SocketConnectionPool(address, max_idle=pool_idle)
        pool.add_ref()

        def on_close(pool=pool, release=release):
            pool.drop_ref()
            if release is not None:
                release()

        return SocketShardBackend(
            address=address,
            neighbor_set_size=neighbor_set_size,
            name=f"shard-{index}",
            fill_chunk_size=fill_chunk_size,
            request_timeout=request_timeout,
            recovery=recovery,
            compact_watermark=compact_watermark,
            pool=pool,
            on_close=on_close,
        )

    return factory


# --------------------------------------------------------------------- CLI


def build_serve_parser():
    """Argument parser for ``repro-experiments shard-serve``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-experiments shard-serve",
        description=(
            "Serve connection-scoped discovery shards over TCP and/or "
            "Unix-domain sockets. Each client connection gets its own "
            "ManagementServer; point a coordinator at this address via "
            "socket_shard_factory(addresses=[...]) or "
            "ScenarioConfig(backend='socket')."
        ),
    )
    parser.add_argument(
        "--tcp",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="bind a TCP listen socket (repeatable; PORT 0 picks a free port)",
    )
    parser.add_argument(
        "--unix",
        action="append",
        default=[],
        metavar="PATH",
        help="bind a Unix-domain listen socket (repeatable)",
    )
    return parser


def _parse_tcp(spec: str) -> Tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--tcp expects HOST:PORT, got {spec!r}")
    return (host, int(port))


async def _serve(addresses: Sequence[Address], ready=None) -> None:
    server = ShardServer()
    try:
        for address in addresses:
            resolved = await server.listen(address)
            print(f"listening {format_address(resolved)}", flush=True)
        if ready is not None:
            ready(server)
        await asyncio.Event().wait()
    finally:
        await server.close()


def run_serve(argv: Sequence[str]) -> int:
    """``repro-experiments shard-serve`` entry point; serves until interrupted."""
    options = build_serve_parser().parse_args(list(argv))
    addresses: List[Address] = []
    try:
        addresses.extend(_parse_tcp(spec) for spec in options.tcp)
    except ValueError as error:
        build_serve_parser().error(str(error))
    addresses.extend(options.unix)
    if not addresses:
        build_serve_parser().error("bind at least one of --tcp / --unix")
    try:
        asyncio.run(_serve(addresses))
    except KeyboardInterrupt:
        pass
    return 0
