"""Super-peer deployment of the management service (paper future work).

The paper notes: "we are investigating the opportunity to use some
super-peers."  A single management server is a scalability and availability
bottleneck; this module shards it across several **super-peers**, each
responsible for one or more landmarks (and therefore for the path tree of
every peer that registered under those landmarks).

Design
------
* :func:`partition_landmarks` splits the landmark set across super-peers,
  either round-robin or load-balanced by expected coverage.
* Each :class:`SuperPeer` embeds a regular
  :class:`~repro.core.management_server.ManagementServer` restricted to its
  landmarks, so all the single-server machinery (path trees, caches,
  cross-landmark estimates) is reused unchanged.
* The :class:`SuperPeerDirectory` is the thin routing layer a newcomer talks
  to: it forwards a registration to the super-peer owning the reported
  landmark and merges answers when a query needs candidates from other
  regions.

The directory implements the same ``register_peer`` / ``closest_peers`` /
``estimate_distance`` surface as the single server, so experiments can swap
one for the other (see ``examples/superpeer_deployment.py`` and the
``superpeer`` ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .._validation import require_one_of, require_positive_int
from ..exceptions import ConfigurationError, LandmarkError, RegistrationError, UnknownPeerError
from .management_server import ManagementServer
from .path import LandmarkId, NodeId, PeerId, RouterPath

PARTITION_ROUND_ROBIN = "round_robin"
PARTITION_CONTIGUOUS = "contiguous"
PARTITION_POLICIES = (PARTITION_ROUND_ROBIN, PARTITION_CONTIGUOUS)


def partition_landmarks(
    landmark_ids: Sequence[LandmarkId],
    super_peer_count: int,
    policy: str = PARTITION_ROUND_ROBIN,
) -> List[List[LandmarkId]]:
    """Split ``landmark_ids`` into ``super_peer_count`` groups.

    ``round_robin`` interleaves landmarks across super-peers (balances counts
    when landmark coverage is roughly uniform); ``contiguous`` slices the
    list, which keeps adjacent landmarks together when the caller pre-sorted
    them by region.
    """
    require_positive_int(super_peer_count, "super_peer_count")
    require_one_of(policy, PARTITION_POLICIES, "policy")
    if not landmark_ids:
        raise ConfigurationError("cannot partition an empty landmark list")
    if super_peer_count > len(landmark_ids):
        raise ConfigurationError(
            f"cannot spread {len(landmark_ids)} landmarks over {super_peer_count} super-peers"
        )
    groups: List[List[LandmarkId]] = [[] for _ in range(super_peer_count)]
    if policy == PARTITION_ROUND_ROBIN:
        for index, landmark in enumerate(landmark_ids):
            groups[index % super_peer_count].append(landmark)
    else:
        size = (len(landmark_ids) + super_peer_count - 1) // super_peer_count
        for index in range(super_peer_count):
            groups[index] = list(landmark_ids[index * size : (index + 1) * size])
    return groups


@dataclass
class SuperPeer:
    """One super-peer: a regional management server for a set of landmarks."""

    super_peer_id: Hashable
    server: ManagementServer
    landmark_ids: List[LandmarkId] = field(default_factory=list)

    @property
    def peer_count(self) -> int:
        """Peers currently registered at this super-peer."""
        return self.server.peer_count

    def owns_landmark(self, landmark_id: LandmarkId) -> bool:
        """True if this super-peer is responsible for ``landmark_id``."""
        return landmark_id in self.landmark_ids


class SuperPeerDirectory:
    """Routes registrations and queries to the responsible super-peer.

    Parameters
    ----------
    neighbor_set_size:
        Neighbours returned per query (k), forwarded to every regional server.
    landmark_distances:
        Global inter-landmark distance map; every regional server receives the
        full map so cross-landmark estimates keep working within a region, and
        the directory uses it for cross-region merging.
    """

    def __init__(
        self,
        neighbor_set_size: int = 5,
        landmark_distances: Optional[Dict[Tuple[LandmarkId, LandmarkId], float]] = None,
    ) -> None:
        self.neighbor_set_size = require_positive_int(neighbor_set_size, "neighbor_set_size")
        self._landmark_distances = dict(landmark_distances or {})
        self._super_peers: Dict[Hashable, SuperPeer] = {}
        self._landmark_owner: Dict[LandmarkId, Hashable] = {}
        self._peer_owner: Dict[PeerId, Hashable] = {}
        self.forwarded_registrations = 0
        self.cross_region_queries = 0

    # ------------------------------------------------------------ deployment

    def add_super_peer(
        self,
        super_peer_id: Hashable,
        landmarks: Sequence[Tuple[LandmarkId, NodeId]],
    ) -> SuperPeer:
        """Deploy a super-peer responsible for ``landmarks`` (id, router pairs)."""
        if super_peer_id in self._super_peers:
            raise ConfigurationError(f"super-peer {super_peer_id!r} already exists")
        if not landmarks:
            raise ConfigurationError("a super-peer must own at least one landmark")
        server = ManagementServer(
            neighbor_set_size=self.neighbor_set_size,
            landmark_distances=self._landmark_distances or None,
        )
        super_peer = SuperPeer(super_peer_id=super_peer_id, server=server)
        for landmark_id, router in landmarks:
            if landmark_id in self._landmark_owner:
                raise LandmarkError(
                    f"landmark {landmark_id!r} is already owned by super-peer "
                    f"{self._landmark_owner[landmark_id]!r}"
                )
            server.register_landmark(landmark_id, router)
            super_peer.landmark_ids.append(landmark_id)
            self._landmark_owner[landmark_id] = super_peer_id
        self._super_peers[super_peer_id] = super_peer
        return super_peer

    @classmethod
    def deploy(
        cls,
        landmarks: Sequence[Tuple[LandmarkId, NodeId]],
        super_peer_count: int,
        neighbor_set_size: int = 5,
        landmark_distances: Optional[Dict[Tuple[LandmarkId, LandmarkId], float]] = None,
        policy: str = PARTITION_ROUND_ROBIN,
    ) -> "SuperPeerDirectory":
        """Build a directory with ``super_peer_count`` super-peers in one call."""
        directory = cls(
            neighbor_set_size=neighbor_set_size, landmark_distances=landmark_distances
        )
        landmark_ids = [landmark_id for landmark_id, _ in landmarks]
        routers = dict(landmarks)
        groups = partition_landmarks(landmark_ids, super_peer_count, policy=policy)
        for index, group in enumerate(groups):
            if not group:
                continue
            directory.add_super_peer(
                f"sp{index}", [(landmark_id, routers[landmark_id]) for landmark_id in group]
            )
        return directory

    # --------------------------------------------------------------- lookups

    def super_peers(self) -> List[SuperPeer]:
        """All deployed super-peers."""
        return list(self._super_peers.values())

    def super_peer(self, super_peer_id: Hashable) -> SuperPeer:
        """Return one super-peer by id."""
        if super_peer_id not in self._super_peers:
            raise ConfigurationError(f"unknown super-peer {super_peer_id!r}")
        return self._super_peers[super_peer_id]

    def owner_of_landmark(self, landmark_id: LandmarkId) -> SuperPeer:
        """The super-peer responsible for ``landmark_id``."""
        if landmark_id not in self._landmark_owner:
            raise LandmarkError(f"no super-peer owns landmark {landmark_id!r}")
        return self._super_peers[self._landmark_owner[landmark_id]]

    def owner_of_peer(self, peer_id: PeerId) -> SuperPeer:
        """The super-peer a registered peer lives on."""
        if peer_id not in self._peer_owner:
            raise UnknownPeerError(peer_id)
        return self._super_peers[self._peer_owner[peer_id]]

    def landmarks(self) -> List[LandmarkId]:
        """All landmarks across all super-peers."""
        return list(self._landmark_owner)

    def landmark_router(self, landmark_id: LandmarkId) -> NodeId:
        """Router a landmark is attached to (directory-wide lookup)."""
        return self.owner_of_landmark(landmark_id).server.landmark_router(landmark_id)

    @property
    def peer_count(self) -> int:
        """Total peers registered across all super-peers."""
        return len(self._peer_owner)

    def has_peer(self, peer_id: PeerId) -> bool:
        """True if the peer is registered somewhere in the federation."""
        return peer_id in self._peer_owner

    def load_by_super_peer(self) -> Dict[Hashable, int]:
        """Registered-peer count per super-peer (load-balance diagnostic)."""
        return {spid: sp.peer_count for spid, sp in self._super_peers.items()}

    # --------------------------------------------------------- registrations

    def register_peer(self, path: RouterPath) -> List[Tuple[PeerId, float]]:
        """Forward the registration to the owning super-peer.

        The answer is that super-peer's regional neighbour list, padded with
        cross-region candidates when the region holds fewer than ``k`` peers.
        """
        owner = self.owner_of_landmark(path.landmark_id)
        if path.peer_id in self._peer_owner and self._peer_owner[path.peer_id] != owner.super_peer_id:
            # The peer moved to a landmark owned by another super-peer.
            self.unregister_peer(path.peer_id)
        neighbors = owner.server.register_peer(path)
        self._peer_owner[path.peer_id] = owner.super_peer_id
        self.forwarded_registrations += 1
        if len(neighbors) < self.neighbor_set_size:
            neighbors = self._pad_with_remote_candidates(path, owner, neighbors)
        return neighbors

    def unregister_peer(self, peer_id: PeerId) -> None:
        """Remove a departed peer from its super-peer."""
        owner = self.owner_of_peer(peer_id)
        owner.server.unregister_peer(peer_id)
        del self._peer_owner[peer_id]

    # ---------------------------------------------------------------- queries

    def closest_peers(self, peer_id: PeerId, k: Optional[int] = None) -> List[Tuple[PeerId, float]]:
        """Regional O(1) lookup, padded with cross-region estimates if short."""
        k = k or self.neighbor_set_size
        owner = self.owner_of_peer(peer_id)
        neighbors = owner.server.closest_peers(peer_id, k=k)
        if len(neighbors) < k:
            path = owner.server.peer_path(peer_id)
            neighbors = self._pad_with_remote_candidates(path, owner, neighbors, k=k)
        return neighbors[:k]

    def estimate_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """Estimated distance between any two registered peers (any region)."""
        owner_a = self.owner_of_peer(peer_a)
        owner_b = self.owner_of_peer(peer_b)
        if owner_a.super_peer_id == owner_b.super_peer_id:
            return owner_a.server.estimate_distance(peer_a, peer_b)
        path_a = owner_a.server.peer_path(peer_a)
        path_b = owner_b.server.peer_path(peer_b)
        between = self._landmark_distance(path_a.landmark_id, path_b.landmark_id)
        if between is None:
            raise LandmarkError(
                f"no inter-landmark distance between {path_a.landmark_id!r} and "
                f"{path_b.landmark_id!r}"
            )
        return float(path_a.hop_count + between + path_b.hop_count)

    # -------------------------------------------------------------- internals

    def _landmark_distance(self, a: LandmarkId, b: LandmarkId) -> Optional[float]:
        if a == b:
            return 0.0
        return self._landmark_distances.get((a, b), self._landmark_distances.get((b, a)))

    def _pad_with_remote_candidates(
        self,
        path: RouterPath,
        owner: SuperPeer,
        neighbors: List[Tuple[PeerId, float]],
        k: Optional[int] = None,
    ) -> List[Tuple[PeerId, float]]:
        """Ask the other super-peers for candidates when the region is sparse."""
        k = k or self.neighbor_set_size
        already = {peer for peer, _ in neighbors} | {path.peer_id}
        candidates: List[Tuple[float, str, PeerId]] = []
        for super_peer in self._super_peers.values():
            if super_peer.super_peer_id == owner.super_peer_id:
                continue
            self.cross_region_queries += 1
            for remote_peer in super_peer.server.peers():
                if remote_peer in already:
                    continue
                remote_path = super_peer.server.peer_path(remote_peer)
                between = self._landmark_distance(path.landmark_id, remote_path.landmark_id)
                if between is None:
                    continue
                estimate = path.hop_count + between + remote_path.hop_count
                candidates.append((float(estimate), repr(remote_peer), remote_peer))
        candidates.sort()
        padded = list(neighbors)
        for estimate, _, remote_peer in candidates:
            if len(padded) >= k:
                break
            padded.append((remote_peer, estimate))
            already.add(remote_peer)
        return padded

    def __repr__(self) -> str:
        return (
            f"SuperPeerDirectory(super_peers={len(self._super_peers)}, "
            f"landmarks={len(self._landmark_owner)}, peers={self.peer_count})"
        )
