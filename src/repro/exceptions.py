"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses are provided per
subsystem so that tests and applications can react to the precise failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Raised for malformed or inconsistent network topologies."""


class NodeNotFoundError(TopologyError):
    """Raised when a router or host id is not present in the topology."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} is not part of the topology")
        self.node_id = node_id


class EdgeNotFoundError(TopologyError):
    """Raised when an edge is requested between two unconnected nodes."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"no edge between {u!r} and {v!r}")
        self.u = u
        self.v = v


class DisconnectedGraphError(TopologyError):
    """Raised when an operation requires a connected graph but it is not."""


class GeneratorError(TopologyError):
    """Raised when a topology generator receives invalid parameters."""


class RoutingError(ReproError):
    """Raised for routing failures (no route, bad routing table, ...)."""


class NoRouteError(RoutingError):
    """Raised when no route exists between a source and a destination."""

    def __init__(self, source: object, destination: object) -> None:
        super().__init__(f"no route from {source!r} to {destination!r}")
        self.source = source
        self.destination = destination


class TracerouteError(RoutingError):
    """Raised when a simulated traceroute cannot produce a usable path."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulation engine."""


class ClockError(SimulationError):
    """Raised when an event is scheduled in the past."""


class ProtocolError(ReproError):
    """Raised when the join protocol receives an unexpected message."""


class RegistrationError(ProtocolError):
    """Raised when a peer registration at the management server is invalid."""


class UnknownPeerError(ProtocolError):
    """Raised when an operation references a peer the server does not know."""

    def __init__(self, peer_id: object) -> None:
        super().__init__(f"peer {peer_id!r} is not registered")
        self.peer_id = peer_id


class LandmarkError(ReproError):
    """Raised for landmark placement or lookup problems."""


class WireProtocolError(ReproError):
    """Raised when the shard wire protocol is violated.

    Covers malformed or truncated frames, unknown operations and unknown
    fill streams — transport-level corruption, deliberately distinct from
    :class:`ProtocolError` (the peer-facing *join* protocol) so handlers of
    registration errors never swallow a corrupt channel.  Client code
    normally sees these wrapped in :class:`ShardUnavailableError`.
    """


class StateSnapshotError(ReproError):
    """Raised when a serialised management-plane state snapshot is unusable.

    Covers malformed snapshot tuples and unsupported snapshot versions —
    both mean a compacted journal cannot be replayed, so the error is
    deliberately distinct from transport-level :class:`WireProtocolError`
    (the snapshot decoded fine; its *content* is the problem).
    """


class ShardUnavailableError(ReproError):
    """Raised when a management-plane shard backend cannot serve a request.

    Carries the shard's name so operators (and fault-injection tests) can
    tell *which* shard failed, and a reason describing how it failed
    (crashed worker, closed channel, timeout, protocol violation).
    """

    def __init__(self, shard: object, reason: str) -> None:
        super().__init__(f"shard {shard!r} is unavailable: {reason}")
        self.shard = shard
        self.reason = reason


class OverlayError(ReproError):
    """Raised for overlay bookkeeping inconsistencies."""


class StreamingError(ReproError):
    """Raised by the mesh streaming workload model."""


class ConfigurationError(ReproError):
    """Raised when an experiment or scenario configuration is invalid."""


class MetricError(ReproError):
    """Raised when a metric cannot be computed from the provided data."""
