"""Experiment harness: the paper's figure, claim checks and ablations."""

from .results import ResultTable, merge_seed_tables
from .figure1 import (
    Figure1Config,
    PAPER_PEER_COUNTS,
    evaluate_population,
    quick_figure1_config,
    run_figure1,
    run_single_seed,
)
from .ablations import (
    churn_study,
    superpeer_study,
    landmark_count_sweep,
    landmark_placement_sweep,
    neighbor_set_size_sweep,
    traceroute_noise_sweep,
    tree_accuracy_study,
)
from .analysis import branch_point_analysis
from .convergence import run_convergence_study
from .runner import (
    EXPERIMENTS,
    available_experiments,
    load_table,
    run_experiment,
    run_experiments,
    save_table,
)

__all__ = [
    "ResultTable",
    "merge_seed_tables",
    "Figure1Config",
    "PAPER_PEER_COUNTS",
    "evaluate_population",
    "quick_figure1_config",
    "run_figure1",
    "run_single_seed",
    "churn_study",
    "superpeer_study",
    "landmark_count_sweep",
    "landmark_placement_sweep",
    "neighbor_set_size_sweep",
    "traceroute_noise_sweep",
    "tree_accuracy_study",
    "run_convergence_study",
    "branch_point_analysis",
    "EXPERIMENTS",
    "available_experiments",
    "load_table",
    "run_experiment",
    "run_experiments",
    "save_table",
]
