"""Ablation studies around the paper's stated claims and future work.

Each function returns a :class:`~repro.experiments.results.ResultTable` whose
rows are the series the corresponding benchmark prints:

* :func:`landmark_count_sweep` / :func:`landmark_placement_sweep` — the
  paper's future-work question F1 (how many landmarks, where);
* :func:`neighbor_set_size_sweep` — sensitivity to ``k``;
* :func:`tree_accuracy_study` — claim C3, ``dtree ≈ d`` for most pairs;
* :func:`traceroute_noise_sweep` — robustness to anonymous routers / probe
  loss (the "decreased version" of traceroute the paper mentions);
* :func:`churn_study` — future-work question F2, neighbour quality under
  departures and re-joins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.brute_force import BruteForceOracle
from ..core.distance import evaluate_estimator, sample_peer_pairs, true_hop_distances
from ..metrics.proximity import compare_strategies
from ..metrics.ranking import precision_at_k
from ..overlay.churn import ChurnModel, EVENT_JOIN
from ..routing.traceroute import TracerouteConfig
from ..sim.rng import RandomStreams
from ..topology.internet_mapper import RouterMapConfig
from ..workloads.scenarios import ScenarioConfig, build_scenario
from .figure1 import evaluate_population
from .results import ResultTable

_SMALL_MAP = dict(
    core_size=20,
    core_attachment=3,
    transit_size=100,
    transit_attachment=2,
    stub_size=480,
    stub_attachment=1,
)


def _small_map_config(seed: int) -> RouterMapConfig:
    return RouterMapConfig(seed=seed, **_SMALL_MAP)


def landmark_count_sweep(
    landmark_counts: Sequence[int] = (1, 2, 4, 8, 16),
    peer_count: int = 120,
    neighbor_set_size: int = 3,
    seed: int = 11,
) -> ResultTable:
    """How the D ratio depends on the number of deployed landmarks."""
    table = ResultTable(
        name="landmark_count_sweep",
        columns=["landmarks", "scheme_ratio", "random_ratio"],
        metadata={"peers": peer_count, "k": neighbor_set_size, "seed": seed},
    )
    streams = RandomStreams(seed)
    for count in landmark_counts:
        config = ScenarioConfig(
            peer_count=peer_count,
            landmark_count=count,
            neighbor_set_size=neighbor_set_size,
            router_map_config=_small_map_config(streams.seed_for("map")),
            seed=streams.seed_for(f"scenario-{count}"),
        )
        scenario = build_scenario(config)
        comparison = evaluate_population(scenario, random_seed=streams.seed_for(f"rand-{count}"))
        table.add_row(
            landmarks=count,
            scheme_ratio=comparison.scheme_ratio,
            random_ratio=comparison.random_ratio,
        )
    return table


def landmark_placement_sweep(
    strategies: Sequence[str] = ("medium_degree", "random", "high_degree", "betweenness", "spread"),
    peer_count: int = 120,
    landmark_count: int = 4,
    neighbor_set_size: int = 3,
    seed: int = 13,
) -> ResultTable:
    """How the D ratio depends on where landmarks are placed."""
    table = ResultTable(
        name="landmark_placement_sweep",
        columns=["strategy", "scheme_ratio", "random_ratio"],
        metadata={"peers": peer_count, "landmarks": landmark_count, "seed": seed},
    )
    streams = RandomStreams(seed)
    map_seed = streams.seed_for("map")
    for strategy in strategies:
        config = ScenarioConfig(
            peer_count=peer_count,
            landmark_count=landmark_count,
            neighbor_set_size=neighbor_set_size,
            landmark_strategy=strategy,
            router_map_config=_small_map_config(map_seed),
            seed=streams.seed_for(f"scenario-{strategy}"),
        )
        scenario = build_scenario(config)
        comparison = evaluate_population(
            scenario, random_seed=streams.seed_for(f"rand-{strategy}")
        )
        table.add_row(
            strategy=strategy,
            scheme_ratio=comparison.scheme_ratio,
            random_ratio=comparison.random_ratio,
        )
    return table


def neighbor_set_size_sweep(
    sizes: Sequence[int] = (1, 2, 3, 5, 8),
    peer_count: int = 120,
    landmark_count: int = 4,
    seed: int = 17,
) -> ResultTable:
    """Sensitivity of the ratios to the neighbour-set size ``k``."""
    table = ResultTable(
        name="neighbor_set_size_sweep",
        columns=["k", "scheme_ratio", "random_ratio"],
        metadata={"peers": peer_count, "landmarks": landmark_count, "seed": seed},
    )
    streams = RandomStreams(seed)
    map_seed = streams.seed_for("map")
    for k in sizes:
        config = ScenarioConfig(
            peer_count=peer_count,
            landmark_count=landmark_count,
            neighbor_set_size=k,
            router_map_config=_small_map_config(map_seed),
            seed=streams.seed_for(f"scenario-{k}"),
        )
        scenario = build_scenario(config)
        comparison = evaluate_population(scenario, random_seed=streams.seed_for(f"rand-{k}"))
        table.add_row(
            k=k,
            scheme_ratio=comparison.scheme_ratio,
            random_ratio=comparison.random_ratio,
        )
    return table


def tree_accuracy_study(
    peer_count: int = 150,
    landmark_count: int = 4,
    pair_samples: int = 400,
    seed: int = 19,
) -> ResultTable:
    """Claim C3: distribution of ``dtree`` vs true distance over random pairs."""
    streams = RandomStreams(seed)
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=landmark_count,
        neighbor_set_size=3,
        router_map_config=_small_map_config(streams.seed_for("map")),
        seed=streams.seed_for("scenario"),
    )
    scenario = build_scenario(config)
    scenario.join_all()

    # Restrict to same-landmark pairs (the tree distance proper) and to
    # cross-landmark pairs separately, so both estimates are characterised.
    same_landmark_pairs = []
    cross_landmark_pairs = []
    pairs = sample_peer_pairs(scenario.peer_ids, pair_samples, seed=streams.seed_for("pairs"))
    for peer_a, peer_b in pairs:
        if scenario.server.peer_landmark(peer_a) == scenario.server.peer_landmark(peer_b):
            same_landmark_pairs.append((peer_a, peer_b))
        else:
            cross_landmark_pairs.append((peer_a, peer_b))

    table = ResultTable(
        name="tree_accuracy",
        columns=[
            "pair_type",
            "pairs",
            "exact_fraction",
            "mean_abs_error",
            "mean_stretch",
            "p90_stretch",
        ],
        metadata={"peers": peer_count, "landmarks": landmark_count, "seed": seed},
    )
    for label, subset in (("same_landmark", same_landmark_pairs), ("cross_landmark", cross_landmark_pairs)):
        if len(subset) < 2:
            continue
        truths = true_hop_distances(
            scenario.router_map.graph,
            {peer: router for peer, router in scenario.peer_routers.items()},
            subset,
        )
        report = evaluate_estimator(scenario.server, truths)
        table.add_row(
            pair_type=label,
            pairs=report.pairs,
            exact_fraction=report.exact_fraction,
            mean_abs_error=report.mean_absolute_error,
            mean_stretch=report.mean_stretch,
            p90_stretch=report.p90_stretch,
        )
    return table


def traceroute_noise_sweep(
    anonymous_probabilities: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    peer_count: int = 120,
    landmark_count: int = 4,
    neighbor_set_size: int = 3,
    seed: int = 23,
) -> ResultTable:
    """Robustness of the scheme to anonymous routers in the traceroute output."""
    table = ResultTable(
        name="traceroute_noise_sweep",
        columns=["anonymous_probability", "scheme_ratio", "random_ratio"],
        metadata={"peers": peer_count, "landmarks": landmark_count, "seed": seed},
    )
    streams = RandomStreams(seed)
    map_seed = streams.seed_for("map")
    for probability in anonymous_probabilities:
        config = ScenarioConfig(
            peer_count=peer_count,
            landmark_count=landmark_count,
            neighbor_set_size=neighbor_set_size,
            router_map_config=_small_map_config(map_seed),
            traceroute_config=TracerouteConfig(
                anonymous_router_probability=probability,
                seed=streams.seed_for(f"trace-{probability}"),
            ),
            seed=streams.seed_for(f"scenario-{probability}"),
        )
        scenario = build_scenario(config)
        comparison = evaluate_population(
            scenario, random_seed=streams.seed_for(f"rand-{probability}")
        )
        table.add_row(
            anonymous_probability=probability,
            scheme_ratio=comparison.scheme_ratio,
            random_ratio=comparison.random_ratio,
        )
    return table


def superpeer_study(
    super_peer_counts: Sequence[int] = (1, 2, 4),
    peer_count: int = 120,
    landmark_count: int = 8,
    neighbor_set_size: int = 3,
    seed: int = 37,
) -> ResultTable:
    """Future work: sharding the management server across super-peers.

    The same peer population (same paths) is registered once per configuration
    into a :class:`~repro.core.superpeers.SuperPeerDirectory` with a varying
    number of super-peers, and the resulting neighbour quality is compared
    against the brute-force optimum.  The table also reports how evenly the
    load (registered peers) spreads and how many cross-region lookups were
    needed to fill neighbour lists.
    """
    from ..core.superpeers import SuperPeerDirectory

    streams = RandomStreams(seed)
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=landmark_count,
        neighbor_set_size=neighbor_set_size,
        router_map_config=_small_map_config(streams.seed_for("map")),
        seed=streams.seed_for("scenario"),
    )
    scenario = build_scenario(config)
    scenario.join_all()
    oracle = scenario.oracle
    k = neighbor_set_size
    landmark_pairs = [
        (landmark.landmark_id, landmark.router) for landmark in scenario.landmark_set
    ]
    landmark_distances = (
        scenario.landmark_set.pairwise_hop_distances() if len(scenario.landmark_set) > 1 else {}
    )
    paths = [scenario.server.peer_path(peer) for peer in scenario.peer_ids]

    table = ResultTable(
        name="superpeer_study",
        columns=["super_peers", "scheme_ratio", "max_load_fraction", "cross_region_queries"],
        metadata={"peers": peer_count, "landmarks": landmark_count, "k": k, "seed": seed},
    )
    for count in super_peer_counts:
        directory = SuperPeerDirectory.deploy(
            landmark_pairs,
            super_peer_count=count,
            neighbor_set_size=k,
            landmark_distances=landmark_distances,
        )
        for path in paths:
            directory.register_peer(path)
        neighbor_sets = {
            peer: [p for p, _ in directory.closest_peers(peer, k=k)]
            for peer in scenario.peer_ids
        }
        scheme_cost = sum(
            oracle.neighbor_cost(peer, neighbors)
            for peer, neighbors in neighbor_sets.items()
            if neighbors
        )
        optimal_cost = sum(
            oracle.neighbor_cost(peer, oracle.select_neighbors(peer, k=len(neighbors)))
            for peer, neighbors in neighbor_sets.items()
            if neighbors
        )
        load = directory.load_by_super_peer()
        max_load_fraction = max(load.values()) / max(1, directory.peer_count)
        table.add_row(
            super_peers=count,
            scheme_ratio=scheme_cost / optimal_cost if optimal_cost else float("nan"),
            max_load_fraction=max_load_fraction,
            cross_region_queries=directory.cross_region_queries,
        )
    return table


def churn_study(
    peer_count: int = 120,
    landmark_count: int = 4,
    neighbor_set_size: int = 3,
    departure_fraction: float = 0.3,
    seed: int = 29,
) -> ResultTable:
    """Future work F2: neighbour quality after a wave of departures and re-joins.

    Three measurements of ``D / D_closest`` over the peers that stayed online:

    * ``initial`` — right after every peer joined;
    * ``after_departures`` — after ``departure_fraction`` of the peers left
      (their entries removed from the trees and caches), *without* the
      remaining peers refreshing their neighbour lists;
    * ``after_refresh`` — after the remaining peers re-queried the server.
    """
    streams = RandomStreams(seed)
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=landmark_count,
        neighbor_set_size=neighbor_set_size,
        router_map_config=_small_map_config(streams.seed_for("map")),
        seed=streams.seed_for("scenario"),
    )
    scenario = build_scenario(config)
    scenario.join_all()

    oracle = scenario.oracle
    k = neighbor_set_size
    rng = streams.stream("departures")
    peers = scenario.peer_ids
    departing = set(rng.sample(peers, int(len(peers) * departure_fraction)))
    survivors = [peer for peer in peers if peer not in departing]

    def ratio_for(neighbor_sets: Dict) -> float:
        scheme_cost = 0.0
        optimal_cost = 0.0
        for peer in survivors:
            neighbors = [n for n in neighbor_sets[peer] if n not in departing][:k]
            if not neighbors:
                continue
            # Compare against the optimum over the SAME number of neighbours,
            # otherwise a peer whose stale list shrank would look better than
            # the optimum simply by summing fewer terms.
            optimal = oracle.select_neighbors(peer, population=survivors, k=len(neighbors))
            if not optimal:
                continue
            scheme_cost += oracle.neighbor_cost(peer, neighbors)
            optimal_cost += oracle.neighbor_cost(peer, optimal)
        return scheme_cost / optimal_cost if optimal_cost else float("nan")

    initial_sets = scenario.scheme_neighbor_sets()
    initial_ratio = ratio_for(initial_sets)

    for peer in departing:
        scenario.server.unregister_peer(peer)

    stale_ratio = ratio_for(initial_sets)

    refreshed_sets = {
        peer: [p for p, _ in scenario.server.closest_peers(peer, k=k)] for peer in survivors
    }
    # Pad with the stale set so every survivor has an entry for ratio_for.
    refreshed_full = dict(initial_sets)
    refreshed_full.update(refreshed_sets)
    refreshed_ratio = ratio_for(refreshed_full)

    table = ResultTable(
        name="churn_study",
        columns=["phase", "scheme_ratio", "online_peers"],
        metadata={
            "peers": peer_count,
            "departed": len(departing),
            "k": k,
            "seed": seed,
        },
    )
    table.add_row(phase="initial", scheme_ratio=initial_ratio, online_peers=len(peers))
    table.add_row(phase="after_departures", scheme_ratio=stale_ratio, online_peers=len(survivors))
    table.add_row(phase="after_refresh", scheme_ratio=refreshed_ratio, online_peers=len(survivors))
    return table
