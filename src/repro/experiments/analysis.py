"""Graph-oriented analysis of why the path-tree inference works.

The paper closes with the wish for "a formal proof based on a graph-oriented
analysis".  A full proof is out of scope for a reproduction, but the argument
it would formalise is empirical and checkable:

1. betweenness centrality is concentrated on a small core of the router
   graph (heavy-tailed degrees ⇒ most shortest paths cross the core);
2. the *branch router* of two peers (where their landmark paths merge) is
   almost always one of those core routers;
3. whenever the true shortest path between the two peers also crosses that
   branch router, ``dtree`` is exact; the error otherwise is bounded by how
   far the branch router sits from the true path.

:func:`branch_point_analysis` measures all three statements on a generated
scenario and returns them as a result table, giving the empirical backbone a
formal proof would need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.distance import sample_peer_pairs
from ..sim.rng import RandomStreams
from ..topology.centrality import approximate_betweenness, centrality_concentration
from ..topology.internet_mapper import RouterMapConfig
from ..workloads.scenarios import ScenarioConfig, build_scenario
from .results import ResultTable

_SMALL_MAP = dict(
    core_size=20,
    core_attachment=3,
    transit_size=100,
    transit_attachment=2,
    stub_size=480,
    stub_attachment=1,
)


def branch_point_analysis(
    peer_count: int = 120,
    landmark_count: int = 4,
    pair_samples: int = 300,
    core_fraction: float = 0.1,
    seed: int = 41,
) -> ResultTable:
    """Quantify the core-centrality argument behind ``dtree ≈ d``.

    Returns a one-row-per-statement table:

    * ``core_betweenness_share`` — fraction of total betweenness carried by
      the top ``core_fraction`` of routers (statement 1);
    * ``branch_in_core_fraction`` — fraction of sampled same-landmark peer
      pairs whose branch router belongs to that core (statement 2);
    * ``exact_when_branch_on_true_path`` / ``exact_otherwise`` — fraction of
      pairs with an exact ``dtree`` split by whether the branch router lies on
      a true shortest path between the peers (statement 3).
    """
    streams = RandomStreams(seed)
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=landmark_count,
        neighbor_set_size=3,
        router_map_config=RouterMapConfig(seed=streams.seed_for("map"), **_SMALL_MAP),
        seed=streams.seed_for("scenario"),
    )
    scenario = build_scenario(config)
    scenario.join_all()
    graph = scenario.router_map.graph

    # Statement 1: betweenness concentration.
    concentration = centrality_concentration(
        graph, top_fraction=core_fraction, pivots=32, seed=streams.seed_for("pivots")
    )
    centrality = approximate_betweenness(graph, pivots=32, seed=streams.seed_for("pivots"))
    core_size = max(1, int(round(graph.node_count * core_fraction)))
    core_routers = set(sorted(centrality, key=centrality.get, reverse=True)[:core_size])

    # Statements 2 and 3 over sampled same-landmark pairs.
    pairs = sample_peer_pairs(scenario.peer_ids, pair_samples, seed=streams.seed_for("pairs"))
    same_landmark = [
        (a, b)
        for a, b in pairs
        if scenario.server.peer_landmark(a) == scenario.server.peer_landmark(b)
    ]

    branch_in_core = 0
    exact_on_path = [0, 0]   # [exact, total] when the branch lies on a true shortest path
    exact_off_path = [0, 0]  # [exact, total] otherwise
    # One engine snapshot for the whole analysis: distance vectors from the
    # attachment routers and branch routers are cached across the pair loop
    # instead of populating a per-router dict of independent BFS results.
    engine = scenario.distance_engine
    # One tree view per landmark for the whole pair loop: with a process
    # shard backend, server.tree() ships and rebuilds a full snapshot, so
    # fetching it per pair would serialise the tree O(pairs) times.
    tree_cache: Dict = {}

    for peer_a, peer_b in same_landmark:
        landmark_id = scenario.server.peer_landmark(peer_a)
        tree = tree_cache.get(landmark_id)
        if tree is None:
            tree = tree_cache[landmark_id] = scenario.server.tree(landmark_id)
        branch = tree.lowest_common_ancestor(peer_a, peer_b).router
        if not graph.has_node(branch):
            continue
        if branch in core_routers:
            branch_in_core += 1
        router_a = scenario.peer_routers[peer_a]
        router_b = scenario.peer_routers[peer_b]
        true_distance = engine.hop_distance(router_a, router_b) + 2
        dtree = scenario.server.estimate_distance(peer_a, peer_b)
        exact = abs(dtree - true_distance) < 1e-9
        on_true_path = (
            engine.hop_distance(router_a, branch)
            + engine.hop_between(branch, router_b, default=10 ** 9)
            == engine.hop_distance(router_a, router_b)
        )
        bucket = exact_on_path if on_true_path else exact_off_path
        bucket[1] += 1
        if exact:
            bucket[0] += 1

    table = ResultTable(
        name="branch_point_analysis",
        columns=["statement", "value"],
        metadata={
            "peers": peer_count,
            "landmarks": landmark_count,
            "core_fraction": core_fraction,
            "same_landmark_pairs": len(same_landmark),
            "seed": seed,
        },
    )
    table.add_row(statement="core_betweenness_share", value=concentration)
    table.add_row(
        statement="branch_in_core_fraction",
        value=branch_in_core / len(same_landmark) if same_landmark else float("nan"),
    )
    table.add_row(
        statement="branch_on_true_path_fraction",
        value=exact_on_path[1] / len(same_landmark) if same_landmark else float("nan"),
    )
    table.add_row(
        statement="exact_when_branch_on_true_path",
        value=exact_on_path[0] / exact_on_path[1] if exact_on_path[1] else float("nan"),
    )
    table.add_row(
        statement="exact_otherwise",
        value=exact_off_path[0] / exact_off_path[1] if exact_off_path[1] else float("nan"),
    )
    return table
