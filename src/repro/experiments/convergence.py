"""Motivation M1: "quicker" than coordinate systems.

The paper's selling point is not higher accuracy but *speed*: a newcomer gets
a useful neighbour list after one traceroute and one server round-trip, while
network coordinate systems need many RTT samples before their estimates are
good enough to rank peers.  This experiment quantifies that trade-off:

* the path-tree scheme is evaluated immediately after the join;
* Vivaldi is evaluated after increasing numbers of gossip rounds;
* GNP and binning are evaluated after their fixed landmark-measurement phase;

and for every configuration we report the neighbour-quality ratio
(``D / D_closest``) together with the number of active measurements the
newcomer had to make and the modelled wall-clock setup time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.binning import BinningSystem
from ..baselines.gnp import GnpSystem
from ..baselines.vivaldi import VivaldiSystem
from ..metrics.latency_stats import ProbeCostModel
from ..metrics.proximity import population_cost
from ..sim.rng import RandomStreams
from ..topology.internet_mapper import RouterMapConfig
from ..workloads.scenarios import Scenario, ScenarioConfig, build_scenario
from .results import ResultTable

_SMALL_MAP = dict(
    core_size=20,
    core_attachment=3,
    transit_size=100,
    transit_attachment=2,
    stub_size=480,
    stub_attachment=1,
)


def _neighbor_ratio(
    scenario: Scenario, neighbor_sets: Dict, k: int
) -> float:
    """``D / D_closest`` for an arbitrary strategy's neighbour sets."""
    oracle_sets = {
        peer: scenario.oracle.select_neighbors(peer, k=k) for peer in scenario.peer_ids
    }
    scheme = population_cost(neighbor_sets, scenario.true_distance)
    optimal = population_cost(oracle_sets, scenario.true_distance)
    return scheme / optimal


def run_convergence_study(
    peer_count: int = 100,
    landmark_count: int = 4,
    neighbor_set_size: int = 3,
    vivaldi_round_schedule: Sequence[int] = (1, 2, 4, 8, 16, 32),
    seed: int = 31,
    probe_cost: Optional[ProbeCostModel] = None,
) -> ResultTable:
    """Compare neighbour quality vs measurement effort across schemes."""
    probe_cost = probe_cost or ProbeCostModel()
    streams = RandomStreams(seed)
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=landmark_count,
        neighbor_set_size=neighbor_set_size,
        router_map_config=RouterMapConfig(seed=streams.seed_for("map"), **_SMALL_MAP),
        seed=streams.seed_for("scenario"),
    )
    scenario = build_scenario(config)
    scenario.join_all()
    k = neighbor_set_size

    table = ResultTable(
        name="convergence",
        columns=["scheme", "measurements_per_peer", "setup_time_ms", "scheme_ratio"],
        metadata={"peers": peer_count, "landmarks": landmark_count, "k": k, "seed": seed},
    )

    # --- Path-tree scheme: ready right after the join. -----------------------
    scheme_sets = scenario.scheme_neighbor_sets()
    mean_hops = sum(r.path.hop_count for r in scenario.join_results.values()) / len(
        scenario.join_results
    )
    table.add_row(
        scheme="path_tree",
        measurements_per_peer=float(landmark_count),  # one traceroute per landmark probed
        setup_time_ms=probe_cost.path_tree_setup_time(int(round(mean_hops)), landmark_count),
        scheme_ratio=_neighbor_ratio(scenario, scheme_sets, k),
    )

    # --- Shared RTT model for the coordinate systems. ------------------------
    # Latency vectors come from the scenario's shared distance engine (one
    # batched Dijkstra per distinct source router, cached on its snapshot).
    engine = scenario.distance_engine

    def latency_between_routers(router_a, router_b) -> float:
        return engine.latency_between(router_a, router_b, default=float("inf"))

    def peer_rtt(peer_a, peer_b) -> float:
        return 2.0 * latency_between_routers(
            scenario.peer_routers[peer_a], scenario.peer_routers[peer_b]
        )

    def peer_landmark_rtt(peer, landmark_id) -> float:
        return 2.0 * latency_between_routers(
            scenario.peer_routers[peer], scenario.server.landmark_router(landmark_id)
        )

    # --- Vivaldi after various numbers of rounds. -----------------------------
    for rounds in vivaldi_round_schedule:
        vivaldi = VivaldiSystem(rtt=peer_rtt, seed=streams.seed_for(f"vivaldi-{rounds}"))
        for peer in scenario.peer_ids:
            vivaldi.add_peer(peer)
        vivaldi.run(rounds, samples_per_peer=1)
        vivaldi_sets = {
            peer: vivaldi.select_neighbors(peer, scenario.peer_ids, k=k)
            for peer in scenario.peer_ids
        }
        table.add_row(
            scheme=f"vivaldi_r{rounds}",
            measurements_per_peer=float(rounds),
            setup_time_ms=probe_cost.coordinate_setup_time(rounds),
            scheme_ratio=_neighbor_ratio(scenario, vivaldi_sets, k),
        )

    # --- GNP: fixed landmark measurements. ------------------------------------
    landmark_ids = scenario.server.landmarks()
    landmark_rtts = {}
    for i, lid_a in enumerate(landmark_ids):
        for lid_b in landmark_ids[i + 1 :]:
            landmark_rtts[(lid_a, lid_b)] = 2.0 * latency_between_routers(
                scenario.server.landmark_router(lid_a), scenario.server.landmark_router(lid_b)
            )
    gnp = GnpSystem(
        landmark_ids,
        landmark_rtts,
        rtt_to_landmark=peer_landmark_rtt,
        seed=streams.seed_for("gnp"),
    )
    for peer in scenario.peer_ids:
        gnp.add_peer(peer)
    gnp_sets = {
        peer: gnp.select_neighbors(peer, scenario.peer_ids, k=k) for peer in scenario.peer_ids
    }
    table.add_row(
        scheme="gnp",
        measurements_per_peer=float(len(landmark_ids)),
        setup_time_ms=probe_cost.landmark_measurement_time(len(landmark_ids)),
        scheme_ratio=_neighbor_ratio(scenario, gnp_sets, k),
    )

    # --- Binning: same measurements as GNP, coarser answer. -------------------
    binning = BinningSystem(landmark_ids, rtt_to_landmark=peer_landmark_rtt)
    for peer in scenario.peer_ids:
        binning.add_peer(peer)
    binning_sets = {
        peer: binning.select_neighbors(peer, scenario.peer_ids, k=k)
        for peer in scenario.peer_ids
    }
    table.add_row(
        scheme="binning",
        measurements_per_peer=float(len(landmark_ids)),
        setup_time_ms=probe_cost.landmark_measurement_time(len(landmark_ids)),
        scheme_ratio=_neighbor_ratio(scenario, binning_sets, k),
    )

    # --- Random: zero measurements, worst quality. -----------------------------
    random_sets = scenario.random_neighbor_sets(seed=streams.seed_for("random"))
    table.add_row(
        scheme="random",
        measurements_per_peer=0.0,
        setup_time_ms=0.0,
        scheme_ratio=_neighbor_ratio(scenario, random_sets, k),
    )
    return table
