"""Reproduction of the paper's Figure 1.

The figure plots, against the number of peers (600 … 1400), the two ratios

* ``D_random / D_closest`` — random neighbour selection vs the brute-force
  optimum (≈ 2.0–2.4 in the paper, growing slowly), and
* ``D / D_closest`` — the proposed path-tree scheme vs the optimum
  (≈ 1.1–1.4 in the paper, flat).

``D`` is the sum over all peers of the hop distances to their assigned
neighbours.  The harness rebuilds the paper's setup (peers on degree-1
routers, landmarks on medium-degree routers), joins every peer through the
management server, and evaluates the three neighbour-set families with the
brute-force oracle's true distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .._validation import require_positive_int
from ..metrics.proximity import ProximityComparison, compare_strategies
from ..sim.rng import RandomStreams
from ..topology.internet_mapper import RouterMapConfig
from ..workloads.scenarios import Scenario, ScenarioConfig, build_scenario
from .results import ResultTable, merge_seed_tables

PAPER_PEER_COUNTS = (600, 800, 1000, 1200, 1400)
"""Population sizes on the x-axis of the paper's figure."""


@dataclass
class Figure1Config:
    """Parameters of the Figure 1 reproduction."""

    peer_counts: Sequence[int] = PAPER_PEER_COUNTS
    landmark_count: int = 10
    neighbor_set_size: int = 5
    seeds: Sequence[int] = (1, 2, 3)
    router_map_config: Optional[RouterMapConfig] = None
    landmark_strategy: str = "medium_degree"

    def __post_init__(self) -> None:
        for count in self.peer_counts:
            require_positive_int(count, "peer count")
        require_positive_int(self.landmark_count, "landmark_count")
        require_positive_int(self.neighbor_set_size, "neighbor_set_size")
        if not self.seeds:
            raise ValueError("at least one seed is required")


def quick_figure1_config(seed: int = 7) -> Figure1Config:
    """A scaled-down configuration that runs in seconds (tests / smoke runs)."""
    return Figure1Config(
        peer_counts=(60, 90, 120),
        landmark_count=4,
        neighbor_set_size=3,
        seeds=(seed,),
        router_map_config=RouterMapConfig(
            core_size=20,
            core_attachment=3,
            transit_size=100,
            transit_attachment=2,
            stub_size=480,
            stub_attachment=1,
            seed=seed,
        ),
    )


def evaluate_population(scenario: Scenario, random_seed: Optional[int] = None) -> ProximityComparison:
    """Join all peers of ``scenario`` and compare the three strategies."""
    scenario.join_all()
    scheme_sets = scenario.scheme_neighbor_sets()
    oracle_sets = scenario.oracle_neighbor_sets()
    random_sets = scenario.random_neighbor_sets(seed=random_seed)
    return compare_strategies(
        scheme_sets,
        oracle_sets,
        random_sets,
        distance=scenario.true_distance,
        neighbor_set_size=scenario.config.neighbor_set_size,
    )


def run_single_seed(config: Figure1Config, seed: int) -> ResultTable:
    """One seed's sweep over the configured population sizes."""
    table = ResultTable(
        name="figure1",
        columns=["peers", "scheme_ratio", "random_ratio", "D", "D_closest", "D_random"],
        metadata={
            "seed": seed,
            "landmarks": config.landmark_count,
            "k": config.neighbor_set_size,
            "landmark_strategy": config.landmark_strategy,
        },
    )
    streams = RandomStreams(seed)
    for peer_count in config.peer_counts:
        map_config = config.router_map_config
        if map_config is not None:
            # Re-seed the shared map config so each seed gets its own map but
            # population sizes within a seed share the same one.
            map_config = RouterMapConfig(
                core_size=map_config.core_size,
                core_attachment=map_config.core_attachment,
                transit_size=map_config.transit_size,
                transit_attachment=map_config.transit_attachment,
                stub_size=map_config.stub_size,
                stub_attachment=map_config.stub_attachment,
                extra_peering_probability=map_config.extra_peering_probability,
                seed=streams.seed_for("router-map"),
            )
        scenario_config = ScenarioConfig(
            peer_count=peer_count,
            landmark_count=config.landmark_count,
            neighbor_set_size=config.neighbor_set_size,
            landmark_strategy=config.landmark_strategy,
            router_map_config=map_config,
            seed=streams.seed_for(f"scenario-{peer_count}"),
        )
        scenario = build_scenario(scenario_config)
        comparison = evaluate_population(
            scenario, random_seed=streams.seed_for(f"random-{peer_count}")
        )
        table.add_row(
            peers=peer_count,
            scheme_ratio=comparison.scheme_ratio,
            random_ratio=comparison.random_ratio,
            D=comparison.cost_scheme,
            D_closest=comparison.cost_closest,
            D_random=comparison.cost_random,
        )
    return table


def run_figure1(config: Optional[Figure1Config] = None) -> ResultTable:
    """Run the full Figure 1 reproduction (averaged over the configured seeds)."""
    config = config or Figure1Config()
    per_seed = [run_single_seed(config, seed) for seed in config.seeds]
    if len(per_seed) == 1:
        return per_seed[0]
    return merge_seed_tables(per_seed, key_column="peers")
