"""Lossy-wire discovery experiments: the protocol layer under stress.

The paper evaluates discovery *quality* (are the returned neighbours
actually close?) but drives the management plane with function calls.
This experiment family drives it the way a deployment would — through
:class:`~repro.protocol.simulation.ProtocolSimulation`'s beacons over a
lossy wire — and measures the protocol-level costs the paper leaves
implicit:

* **discovery latency** — first beacon sent to first ack heard, i.e.
  how long a newcomer stays invisible;
* **staleness** — for mobility handovers, how long the plane keeps
  answering with the pre-handover path;
* **maintenance traffic** — beacon + ack bytes per peer per second, the
  price of the chosen beacon interval.

Three workload families, each swept over beacon interval × loss rate:

* ``flash-crowd`` — most peers arrive in a short ramp
  (:func:`~repro.workloads.arrivals.flash_crowd_arrivals`), the paper's
  flash-crowd motivation;
* ``streaming-join`` — Poisson arrivals, a steady streaming audience;
* ``mobility-handover`` — a steady population in which half the peers
  switch access routers mid-run, the mobile-peer story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.path import RouterPath
from ..perf.workloads import synthetic_paths
from ..protocol.peer import BeaconConfig
from ..protocol.simulation import ProtocolMetrics, ProtocolSimulation
from ..sim.rng import derive_seed
from ..workloads.arrivals import flash_crowd_arrivals, poisson_arrivals
from .results import ResultTable

FAMILIES = ("flash-crowd", "streaming-join", "mobility-handover")


@dataclass(frozen=True)
class ProtocolSimConfig:
    """Sweep configuration for the protocol experiments."""

    peers: int = 60
    beacon_intervals_ms: Tuple[float, ...] = (250.0, 500.0, 1000.0)
    loss_rates: Tuple[float, ...] = (0.0, 0.1, 0.3)
    duration_ms: float = 10_000.0
    duplicate_probability: float = 0.02
    reorder_probability: float = 0.02
    handover_fraction: float = 0.5
    seed: int = 11


def quick_protocol_sim_config() -> ProtocolSimConfig:
    """Small sweep for CI smoke runs (seconds, not minutes)."""
    return ProtocolSimConfig(
        peers=16,
        beacon_intervals_ms=(250.0, 500.0),
        loss_rates=(0.0, 0.2),
        duration_ms=4_000.0,
    )


def _start_times(
    family: str, paths: List[RouterPath], config: ProtocolSimConfig, interval_ms: float
) -> List[float]:
    """Per-peer beaconing start times (ms) for one workload family."""
    peer_ids = [path.peer_id for path in paths]
    window_s = config.duration_ms / 1000.0 / 2.0  # arrivals in the first half
    if family == "flash-crowd":
        arrivals = flash_crowd_arrivals(
            peer_ids, duration_s=window_s, seed=derive_seed(config.seed, "flash")
        )
    elif family == "streaming-join":
        rate = max(1.0, len(peer_ids) / window_s)
        arrivals = poisson_arrivals(
            peer_ids, rate_per_s=rate, seed=derive_seed(config.seed, "poisson")
        )
    else:  # mobility-handover: everyone present early, staggered over one interval
        return [interval_ms * index / max(1, len(peer_ids)) for index in range(len(peer_ids))]
    by_peer = {arrival.peer_id: arrival.time_s * 1000.0 for arrival in arrivals}
    # Poisson tails can outrun the run; clamp so every peer starts in time
    # to be discovered before the cutoff.
    latest = config.duration_ms * 0.75
    return [min(by_peer[peer_id], latest) for peer_id in peer_ids]


def _handover_path(paths: List[RouterPath], index: int) -> RouterPath:
    """The post-handover path of peer ``index``: another peer's access chain."""
    donor = paths[(index + len(paths) // 2) % len(paths)]
    return RouterPath.from_routers(
        paths[index].peer_id, donor.landmark_id, donor.routers, rtt_ms=donor.rtt_ms
    )


def run_protocol_family(
    family: str,
    config: ProtocolSimConfig,
    interval_ms: float,
    loss: float,
) -> ProtocolMetrics:
    """One cell of the sweep: run ``family`` at one interval × loss point."""
    if family not in FAMILIES:
        raise ValueError(f"unknown protocol family {family!r}; expected one of {FAMILIES}")
    paths = synthetic_paths(config.peers, seed=derive_seed(config.seed, "paths"))
    sim = ProtocolSimulation(
        paths,
        beacon_config=BeaconConfig(beacon_interval_ms=interval_ms),
        start_times_ms=_start_times(family, paths, config, interval_ms),
        loss_probability=loss,
        duplicate_probability=config.duplicate_probability,
        reorder_probability=config.reorder_probability,
        seed=derive_seed(config.seed, f"{family}-{interval_ms}-{loss}"),
    )
    if family == "mobility-handover":
        handovers = max(1, int(len(paths) * config.handover_fraction))
        for index in range(handovers):
            sim.schedule_path_update(
                paths[index].peer_id, config.duration_ms / 2.0, _handover_path(paths, index)
            )
    try:
        return sim.run(config.duration_ms)
    finally:
        sim.close()


def run_protocol_sim(config: Optional[ProtocolSimConfig] = None) -> ResultTable:
    """The full sweep: families × beacon intervals × loss rates."""
    config = config or ProtocolSimConfig()
    table = ResultTable(
        name="protocol-sim",
        columns=[
            "family",
            "beacon_interval_ms",
            "loss",
            "peers",
            "discovered",
            "live",
            "discovery_p50_ms",
            "discovery_p99_ms",
            "staleness_p50_ms",
            "messages_per_sec",
            "bytes_per_peer_s",
            "retransmissions",
            "expired",
        ],
        metadata={
            "duration_ms": config.duration_ms,
            "duplicate_probability": config.duplicate_probability,
            "reorder_probability": config.reorder_probability,
            "seed": config.seed,
        },
    )
    for family in FAMILIES:
        for interval_ms in config.beacon_intervals_ms:
            for loss in config.loss_rates:
                metrics = run_protocol_family(family, config, interval_ms, loss)
                table.add_row(
                    family=family,
                    beacon_interval_ms=interval_ms,
                    loss=loss,
                    peers=metrics.peers,
                    discovered=metrics.discovered_peers,
                    live=metrics.live_peers,
                    discovery_p50_ms=(
                        metrics.discovery_latency.median if metrics.discovery_latency else None
                    ),
                    discovery_p99_ms=(
                        metrics.discovery_latency.p99 if metrics.discovery_latency else None
                    ),
                    staleness_p50_ms=(metrics.staleness.median if metrics.staleness else None),
                    messages_per_sec=metrics.messages_per_sec,
                    bytes_per_peer_s=metrics.maintenance_bytes_per_peer_s,
                    retransmissions=metrics.retransmissions,
                    expired=metrics.host_counters.get("peers_expired", 0),
                )
    return table


def run_protocol_sim_quick() -> ResultTable:
    """CI-sized variant of :func:`run_protocol_sim`."""
    return run_protocol_sim(quick_protocol_sim_config())
