"""Result containers for experiments: tables, series, plain-text rendering.

The experiment harness prints the same rows/series the paper reports, so the
output of every experiment is a :class:`ResultTable` (rows of named columns)
that can be rendered as aligned text, exported to CSV-like strings, or turned
into plain dicts for JSON dumps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..exceptions import ConfigurationError


@dataclass
class ResultTable:
    """A named table of result rows."""

    name: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        """Append a row; every declared column must be provided."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ConfigurationError(f"row for table {self.name!r} is missing columns {missing}")
        self.rows.append({column: values[column] for column in self.columns})

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigurationError(f"table {self.name!r} has no column {name!r}")
        return [row[name] for row in self.rows]

    def sorted_by(self, column: str) -> "ResultTable":
        """Return a copy sorted by ``column``."""
        table = ResultTable(
            name=self.name, columns=list(self.columns), metadata=dict(self.metadata)
        )
        table.rows = sorted(self.rows, key=lambda row: row[column])
        return table

    # ---------------------------------------------------------------- exports

    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Aligned plain-text rendering (what the CLI prints)."""

        def render(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = list(self.columns)
        body = [[render(row[column]) for column in header] for row in self.rows]
        widths = [
            max(len(header[index]), *(len(line[index]) for line in body)) if body else len(header[index])
            for index in range(len(header))
        ]
        lines = [self.name]
        lines.append("  ".join(column.ljust(widths[index]) for index, column in enumerate(header)))
        lines.append("  ".join("-" * widths[index] for index in range(len(header))))
        for line in body:
            lines.append("  ".join(line[index].ljust(widths[index]) for index in range(len(header))))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (header + rows)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(str(row[column]) for column in self.columns))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict export."""
        return {
            "name": self.name,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "metadata": dict(self.metadata),
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON export."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def __len__(self) -> int:
        return len(self.rows)


def mean_of(values: Iterable[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    values = list(values)
    if not values:
        raise ConfigurationError("cannot average an empty sequence")
    return sum(values) / len(values)


def merge_seed_tables(tables: Sequence[ResultTable], key_column: str) -> ResultTable:
    """Average numeric columns across per-seed tables.

    All tables must share the same columns and the same set of values in
    ``key_column`` (e.g. the population size).  Non-numeric columns keep the
    first table's value.
    """
    if not tables:
        raise ConfigurationError("no tables to merge")
    columns = tables[0].columns
    for table in tables:
        if table.columns != columns:
            raise ConfigurationError("cannot merge tables with different columns")

    merged = ResultTable(
        name=tables[0].name,
        columns=list(columns),
        metadata={"seeds_merged": len(tables), **tables[0].metadata},
    )
    keys = [row[key_column] for row in tables[0].rows]
    for key in keys:
        per_table_rows = []
        for table in tables:
            matching = [row for row in table.rows if row[key_column] == key]
            if len(matching) != 1:
                raise ConfigurationError(
                    f"table {table.name!r} must have exactly one row with {key_column}={key!r}"
                )
            per_table_rows.append(matching[0])
        merged_row: Dict[str, Any] = {}
        for column in columns:
            values = [row[column] for row in per_table_rows]
            if all(isinstance(value, (int, float)) and not isinstance(value, bool) for value in values):
                merged_row[column] = sum(float(value) for value in values) / len(values)
            else:
                merged_row[column] = values[0]
        merged_row[key_column] = key
        merged.add_row(**merged_row)
    return merged
