"""Experiment registry and runner.

``repro-experiments`` (the console entry point in :mod:`repro.cli`) looks up
experiments by name here, runs them, prints their tables and optionally dumps
them as JSON.  Each experiment is a zero-argument callable (quick variants
are provided for everything so the whole suite can be smoke-run in CI).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from .ablations import (
    churn_study,
    superpeer_study,
    landmark_count_sweep,
    landmark_placement_sweep,
    neighbor_set_size_sweep,
    traceroute_noise_sweep,
    tree_accuracy_study,
)
from .analysis import branch_point_analysis
from .convergence import run_convergence_study
from .figure1 import Figure1Config, quick_figure1_config, run_figure1
from .protocol_sim import run_protocol_sim, run_protocol_sim_quick
from .results import ResultTable

ExperimentFunction = Callable[[], ResultTable]


def _figure1_full() -> ResultTable:
    return run_figure1(Figure1Config())


def _figure1_quick() -> ResultTable:
    return run_figure1(quick_figure1_config())


EXPERIMENTS: Dict[str, ExperimentFunction] = {
    "figure1": _figure1_full,
    "figure1-quick": _figure1_quick,
    "landmark-count": landmark_count_sweep,
    "landmark-placement": landmark_placement_sweep,
    "neighbor-set-size": neighbor_set_size_sweep,
    "tree-accuracy": tree_accuracy_study,
    "traceroute-noise": traceroute_noise_sweep,
    "churn": churn_study,
    "superpeers": superpeer_study,
    "convergence": run_convergence_study,
    "branch-analysis": branch_point_analysis,
    "protocol-sim": run_protocol_sim,
    "protocol-sim-quick": run_protocol_sim_quick,
}
"""All runnable experiments by name."""


def available_experiments() -> List[str]:
    """Names accepted by :func:`run_experiment`."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str) -> ResultTable:
    """Run one experiment by name and return its result table."""
    if name not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        )
    return EXPERIMENTS[name]()


def run_experiments(names: Sequence[str]) -> Dict[str, ResultTable]:
    """Run several experiments and return their tables keyed by name."""
    return {name: run_experiment(name) for name in names}


def save_table(table: ResultTable, output_dir: Path, stem: Optional[str] = None) -> Path:
    """Write a table to ``output_dir`` as JSON; returns the file path."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"{stem or table.name}.json"
    path.write_text(table.to_json())
    return path


def load_table(path: Path) -> ResultTable:
    """Load a table previously written by :func:`save_table`."""
    data = json.loads(Path(path).read_text())
    table = ResultTable(
        name=data["name"], columns=list(data["columns"]), metadata=dict(data.get("metadata", {}))
    )
    for row in data["rows"]:
        table.add_row(**row)
    return table
