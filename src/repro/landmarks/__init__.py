"""Landmark deployment: placement strategies and landmark-set management."""

from .placement import (
    PLACEMENT_STRATEGIES,
    place_betweenness,
    place_high_degree,
    place_landmarks,
    place_medium_degree,
    place_on_router_map,
    place_random,
    place_spread,
)
from .manager import Landmark, LandmarkSet

__all__ = [
    "PLACEMENT_STRATEGIES",
    "place_betweenness",
    "place_high_degree",
    "place_landmarks",
    "place_medium_degree",
    "place_on_router_map",
    "place_random",
    "place_spread",
    "Landmark",
    "LandmarkSet",
]
