"""Landmark set management.

A :class:`LandmarkSet` groups the deployed landmarks, knows which router each
one is attached to, and can compute the inter-landmark distance matrix the
management server needs for cross-landmark estimates.  It also offers the
closest-landmark lookup that an *oracle* would give a peer — useful in tests
to verify that the client-side RTT-based selection finds the same landmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import LandmarkError
from ..routing.shortest_path import bfs_shortest_paths, dijkstra_shortest_paths
from ..topology.graph import Graph

NodeId = Hashable
LandmarkId = Hashable


@dataclass(frozen=True)
class Landmark:
    """One deployed landmark."""

    landmark_id: LandmarkId
    router: NodeId


@dataclass
class LandmarkSet:
    """The set of deployed landmarks plus distance bookkeeping."""

    graph: Graph
    landmarks: List[Landmark] = field(default_factory=list)
    _by_id: Dict[LandmarkId, Landmark] = field(default_factory=dict, repr=False)

    @classmethod
    def from_routers(
        cls, graph: Graph, routers: Sequence[NodeId], prefix: str = "lm"
    ) -> "LandmarkSet":
        """Create landmarks named ``lm0, lm1, ...`` attached to ``routers``."""
        landmark_set = cls(graph=graph)
        for index, router in enumerate(routers):
            landmark_set.add(f"{prefix}{index}", router)
        return landmark_set

    def add(self, landmark_id: LandmarkId, router: NodeId) -> Landmark:
        """Add a landmark attached to ``router``."""
        if landmark_id in self._by_id:
            raise LandmarkError(f"landmark {landmark_id!r} already exists")
        if not self.graph.has_node(router):
            raise LandmarkError(f"router {router!r} is not part of the topology")
        landmark = Landmark(landmark_id=landmark_id, router=router)
        self.landmarks.append(landmark)
        self._by_id[landmark_id] = landmark
        return landmark

    def remove(self, landmark_id: LandmarkId) -> None:
        """Remove a landmark (e.g. for a placement sweep)."""
        if landmark_id not in self._by_id:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        landmark = self._by_id.pop(landmark_id)
        self.landmarks.remove(landmark)

    def get(self, landmark_id: LandmarkId) -> Landmark:
        """Return the landmark with the given id."""
        if landmark_id not in self._by_id:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._by_id[landmark_id]

    def ids(self) -> List[LandmarkId]:
        """All landmark identifiers."""
        return [landmark.landmark_id for landmark in self.landmarks]

    def routers(self) -> List[NodeId]:
        """All landmark attachment routers."""
        return [landmark.router for landmark in self.landmarks]

    def __len__(self) -> int:
        return len(self.landmarks)

    def __iter__(self) -> Iterator[Landmark]:
        return iter(self.landmarks)

    def __contains__(self, landmark_id: LandmarkId) -> bool:
        return landmark_id in self._by_id

    # -------------------------------------------------------------- distances

    def pairwise_hop_distances(self) -> Dict[Tuple[LandmarkId, LandmarkId], float]:
        """Hop distances between every pair of landmarks (both orders)."""
        result: Dict[Tuple[LandmarkId, LandmarkId], float] = {}
        for landmark in self.landmarks:
            distances, _ = bfs_shortest_paths(self.graph, landmark.router)
            for other in self.landmarks:
                if other.landmark_id == landmark.landmark_id:
                    continue
                if other.router not in distances:
                    raise LandmarkError(
                        f"landmarks {landmark.landmark_id!r} and {other.landmark_id!r} "
                        "are not connected"
                    )
                result[(landmark.landmark_id, other.landmark_id)] = float(
                    distances[other.router]
                )
        return result

    def closest_landmark_by_hops(self, router: NodeId) -> Tuple[Landmark, int]:
        """Oracle lookup: the landmark with the fewest hops from ``router``."""
        if not self.landmarks:
            raise LandmarkError("the landmark set is empty")
        distances, _ = bfs_shortest_paths(self.graph, router)
        best: Optional[Tuple[int, str, Landmark]] = None
        for landmark in self.landmarks:
            if landmark.router not in distances:
                continue
            key = (distances[landmark.router], repr(landmark.landmark_id), landmark)
            if best is None or key[:2] < best[:2]:
                best = key
        if best is None:
            raise LandmarkError(f"router {router!r} cannot reach any landmark")
        return best[2], best[0]

    def closest_landmark_by_latency(self, router: NodeId) -> Tuple[Landmark, float]:
        """Oracle lookup: the landmark with the lowest latency from ``router``."""
        if not self.landmarks:
            raise LandmarkError("the landmark set is empty")
        distances, _ = dijkstra_shortest_paths(self.graph, router)
        best: Optional[Tuple[float, str, Landmark]] = None
        for landmark in self.landmarks:
            if landmark.router not in distances:
                continue
            key = (distances[landmark.router], repr(landmark.landmark_id), landmark)
            if best is None or key[:2] < best[:2]:
                best = key
        if best is None:
            raise LandmarkError(f"router {router!r} cannot reach any landmark")
        return best[2], best[0]

    def coverage_histogram(self, routers: Sequence[NodeId]) -> Dict[LandmarkId, int]:
        """How many of ``routers`` have each landmark as their hop-closest one.

        A very unbalanced histogram indicates a poor placement (one landmark
        serves almost everyone), which degrades cross-landmark estimates.
        """
        histogram: Dict[LandmarkId, int] = {landmark.landmark_id: 0 for landmark in self.landmarks}
        for router in routers:
            landmark, _ = self.closest_landmark_by_hops(router)
            histogram[landmark.landmark_id] += 1
        return histogram
