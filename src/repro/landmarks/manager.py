"""Landmark set management.

A :class:`LandmarkSet` groups the deployed landmarks, knows which router each
one is attached to, and can compute the inter-landmark distance matrix the
management server needs for cross-landmark estimates.  It also offers the
closest-landmark lookup that an *oracle* would give a peer — useful in tests
to verify that the client-side RTT-based selection finds the same landmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import LandmarkError, NodeNotFoundError
from ..routing.distance_engine import HopDistanceEngine
from ..topology.graph import Graph

NodeId = Hashable
LandmarkId = Hashable


@dataclass(frozen=True)
class Landmark:
    """One deployed landmark."""

    landmark_id: LandmarkId
    router: NodeId


@dataclass
class LandmarkSet:
    """The set of deployed landmarks plus distance bookkeeping.

    All hop/latency questions are answered through one shared
    :class:`HopDistanceEngine` (injectable so a scenario can pass its own):
    the inter-landmark matrix is one batched multi-source pass, and the
    closest-landmark oracle reads the per-landmark distance vectors instead
    of running a fresh BFS per queried router (hop distances on an
    undirected graph are symmetric), which turns coverage sweeps from one
    BFS per router into one BFS per landmark.
    """

    graph: Graph
    landmarks: List[Landmark] = field(default_factory=list)
    engine: Optional[HopDistanceEngine] = field(default=None, repr=False)
    _by_id: Dict[LandmarkId, Landmark] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = HopDistanceEngine(self.graph)
        else:
            self.engine.check_graph(self.graph)

    @classmethod
    def from_routers(
        cls,
        graph: Graph,
        routers: Sequence[NodeId],
        prefix: str = "lm",
        engine: Optional[HopDistanceEngine] = None,
    ) -> "LandmarkSet":
        """Create landmarks named ``lm0, lm1, ...`` attached to ``routers``."""
        landmark_set = cls(graph=graph, engine=engine)
        for index, router in enumerate(routers):
            landmark_set.add(f"{prefix}{index}", router)
        return landmark_set

    def add(self, landmark_id: LandmarkId, router: NodeId) -> Landmark:
        """Add a landmark attached to ``router``."""
        if landmark_id in self._by_id:
            raise LandmarkError(f"landmark {landmark_id!r} already exists")
        if not self.graph.has_node(router):
            raise LandmarkError(f"router {router!r} is not part of the topology")
        landmark = Landmark(landmark_id=landmark_id, router=router)
        self.landmarks.append(landmark)
        self._by_id[landmark_id] = landmark
        return landmark

    def remove(self, landmark_id: LandmarkId) -> None:
        """Remove a landmark (e.g. for a placement sweep)."""
        if landmark_id not in self._by_id:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        landmark = self._by_id.pop(landmark_id)
        self.landmarks.remove(landmark)

    def get(self, landmark_id: LandmarkId) -> Landmark:
        """Return the landmark with the given id."""
        if landmark_id not in self._by_id:
            raise LandmarkError(f"unknown landmark {landmark_id!r}")
        return self._by_id[landmark_id]

    def ids(self) -> List[LandmarkId]:
        """All landmark identifiers."""
        return [landmark.landmark_id for landmark in self.landmarks]

    def routers(self) -> List[NodeId]:
        """All landmark attachment routers."""
        return [landmark.router for landmark in self.landmarks]

    def __len__(self) -> int:
        return len(self.landmarks)

    def __iter__(self) -> Iterator[Landmark]:
        return iter(self.landmarks)

    def __contains__(self, landmark_id: LandmarkId) -> bool:
        return landmark_id in self._by_id

    # -------------------------------------------------------------- distances

    def pairwise_hop_distances(self) -> Dict[Tuple[LandmarkId, LandmarkId], float]:
        """Hop distances between every pair of landmarks (both orders).

        One batched multi-source pass over the shared engine snapshot: each
        landmark's distance vector is computed once and every pair is a flat
        lookup.
        """
        result: Dict[Tuple[LandmarkId, LandmarkId], float] = {}
        self.engine.warm_hops(landmark.router for landmark in self.landmarks)
        for landmark in self.landmarks:
            for other in self.landmarks:
                if other.landmark_id == landmark.landmark_id:
                    continue
                distance = self.engine.hop_between(landmark.router, other.router)
                if distance is None:
                    raise LandmarkError(
                        f"landmarks {landmark.landmark_id!r} and {other.landmark_id!r} "
                        "are not connected"
                    )
                result[(landmark.landmark_id, other.landmark_id)] = float(distance)
        return result

    def closest_landmark_by_hops(self, router: NodeId) -> Tuple[Landmark, int]:
        """Oracle lookup: the landmark with the fewest hops from ``router``.

        Hop distances on the undirected router graph are symmetric, so this
        reads the cached per-*landmark* vectors — no per-router BFS.
        """
        if not self.landmarks:
            raise LandmarkError("the landmark set is empty")
        if not self.graph.has_node(router):
            raise NodeNotFoundError(router)
        best: Optional[Tuple[int, str, Landmark]] = None
        for landmark in self.landmarks:
            # A landmark whose router left the topology is simply not a
            # candidate (it would be absent from a BFS rooted at ``router``);
            # the guard keeps it from becoming an unknown BFS *source* now
            # that the lookup reads the symmetric per-landmark vectors.
            if not self.graph.has_node(landmark.router):
                continue
            distance = self.engine.hop_between(landmark.router, router)
            if distance is None:
                continue
            key = (distance, repr(landmark.landmark_id), landmark)
            if best is None or key[:2] < best[:2]:
                best = key
        if best is None:
            raise LandmarkError(f"router {router!r} cannot reach any landmark")
        return best[2], best[0]

    def closest_landmark_by_latency(self, router: NodeId) -> Tuple[Landmark, float]:
        """Oracle lookup: the landmark with the lowest latency from ``router``.

        Latency sums are kept source-rooted at ``router`` (one engine
        Dijkstra, cached) so the floats match the reference implementation
        bit-for-bit.
        """
        if not self.landmarks:
            raise LandmarkError("the landmark set is empty")
        best: Optional[Tuple[float, str, Landmark]] = None
        for landmark in self.landmarks:
            distance = self.engine.latency_between(router, landmark.router)
            if distance is None:
                continue
            key = (distance, repr(landmark.landmark_id), landmark)
            if best is None or key[:2] < best[:2]:
                best = key
        if best is None:
            raise LandmarkError(f"router {router!r} cannot reach any landmark")
        return best[2], best[0]

    def coverage_histogram(self, routers: Sequence[NodeId]) -> Dict[LandmarkId, int]:
        """How many of ``routers`` have each landmark as their hop-closest one.

        A very unbalanced histogram indicates a poor placement (one landmark
        serves almost everyone), which degrades cross-landmark estimates.
        """
        histogram: Dict[LandmarkId, int] = {landmark.landmark_id: 0 for landmark in self.landmarks}
        for router in routers:
            landmark, _ = self.closest_landmark_by_hops(router)
            histogram[landmark.landmark_id] += 1
        return histogram
