"""Landmark placement strategies.

The paper places "few landmarks" at "routers with medium-size degree" and
explicitly lists studying the number and placement of landmarks as future
work.  This module implements that default plus the alternatives the
ablation benchmarks compare:

* ``medium_degree`` — the paper's choice: routers whose degree sits between
  the stub routers and the top of the distribution.
* ``random`` — uniformly random routers.
* ``high_degree`` — the highest-degree (core) routers.
* ``betweenness`` — the highest-betweenness routers (sampled estimate).
* ``spread`` — greedy farthest-point placement, maximising pairwise hop
  distance between landmarks so each region of the map has a nearby landmark.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from .._validation import coerce_seed, require_positive_int
from ..exceptions import LandmarkError
from ..topology.centrality import approximate_betweenness
from ..topology.graph import Graph
from ..topology.internet_mapper import RouterMap
from ..topology.metrics import bfs_distances

NodeId = Hashable

PlacementFunction = Callable[..., List[NodeId]]


def _candidate_routers(graph: Graph, candidates: Optional[Sequence[NodeId]]) -> List[NodeId]:
    pool = list(candidates) if candidates is not None else list(graph.nodes())
    if not pool:
        raise LandmarkError("no candidate routers available for landmark placement")
    return pool


def place_random(
    graph: Graph,
    count: int,
    candidates: Optional[Sequence[NodeId]] = None,
    seed: Optional[int] = None,
) -> List[NodeId]:
    """Pick ``count`` routers uniformly at random (without replacement)."""
    require_positive_int(count, "count")
    rng = random.Random(coerce_seed(seed))
    pool = _candidate_routers(graph, candidates)
    if count >= len(pool):
        return list(pool)
    return rng.sample(pool, count)


def place_medium_degree(
    graph: Graph,
    count: int,
    candidates: Optional[Sequence[NodeId]] = None,
    seed: Optional[int] = None,
    low_percentile: float = 0.5,
    high_percentile: float = 0.9,
) -> List[NodeId]:
    """The paper's placement: routers with medium-size degree.

    "Medium" is interpreted as the [``low_percentile``, ``high_percentile``]
    band of the degree distribution restricted to routers with degree >= 2
    (degree-1 routers host peers, not landmarks).  Within the band the choice
    is random, so different seeds give different but equally valid placements.
    """
    require_positive_int(count, "count")
    rng = random.Random(coerce_seed(seed))
    pool = _candidate_routers(graph, candidates)
    eligible = [node for node in pool if graph.degree(node) >= 2]
    if not eligible:
        raise LandmarkError("no routers with degree >= 2 to host landmarks")
    eligible.sort(key=lambda node: (graph.degree(node), repr(node)))
    low_index = int(len(eligible) * low_percentile)
    high_index = max(low_index + 1, int(len(eligible) * high_percentile))
    band = eligible[low_index:high_index]
    if len(band) < count:
        band = eligible
    if count >= len(band):
        return list(band)
    return rng.sample(band, count)


def place_high_degree(
    graph: Graph,
    count: int,
    candidates: Optional[Sequence[NodeId]] = None,
    seed: Optional[int] = None,
) -> List[NodeId]:
    """Pick the ``count`` highest-degree routers (deterministic)."""
    require_positive_int(count, "count")
    pool = _candidate_routers(graph, candidates)
    ranked = sorted(pool, key=lambda node: (-graph.degree(node), repr(node)))
    return ranked[:count]


def place_betweenness(
    graph: Graph,
    count: int,
    candidates: Optional[Sequence[NodeId]] = None,
    seed: Optional[int] = None,
    pivots: int = 32,
) -> List[NodeId]:
    """Pick the routers with the highest (sampled) betweenness centrality."""
    require_positive_int(count, "count")
    pool = set(_candidate_routers(graph, candidates))
    centrality = approximate_betweenness(graph, pivots=pivots, seed=seed)
    ranked = sorted(
        (node for node in centrality if node in pool),
        key=lambda node: (-centrality[node], repr(node)),
    )
    if not ranked:
        raise LandmarkError("no candidate routers with computable betweenness")
    return ranked[:count]


def place_spread(
    graph: Graph,
    count: int,
    candidates: Optional[Sequence[NodeId]] = None,
    seed: Optional[int] = None,
) -> List[NodeId]:
    """Greedy farthest-point placement.

    The first landmark is the highest-degree candidate; each subsequent
    landmark is the candidate maximising its hop distance to the already
    chosen set.  This spreads landmarks across the map, which helps when
    peers must find a *nearby* landmark.
    """
    require_positive_int(count, "count")
    pool = _candidate_routers(graph, candidates)
    chosen: List[NodeId] = []
    first = max(pool, key=lambda node: (graph.degree(node), repr(node)))
    chosen.append(first)
    # Track, for every candidate, its distance to the closest chosen landmark.
    closest: Dict[NodeId, float] = {}
    distances = bfs_distances(graph, first)
    for node in pool:
        closest[node] = float(distances.get(node, float("inf")))
    while len(chosen) < min(count, len(pool)):
        best = max(
            (node for node in pool if node not in chosen),
            key=lambda node: (closest[node], graph.degree(node), repr(node)),
        )
        chosen.append(best)
        distances = bfs_distances(graph, best)
        for node in pool:
            candidate_distance = float(distances.get(node, float("inf")))
            if candidate_distance < closest[node]:
                closest[node] = candidate_distance
    return chosen


PLACEMENT_STRATEGIES: Dict[str, PlacementFunction] = {
    "random": place_random,
    "medium_degree": place_medium_degree,
    "high_degree": place_high_degree,
    "betweenness": place_betweenness,
    "spread": place_spread,
}
"""Registry of placement strategies by name (used by scenarios and the CLI)."""


def place_landmarks(
    graph: Graph,
    count: int,
    strategy: str = "medium_degree",
    candidates: Optional[Sequence[NodeId]] = None,
    seed: Optional[int] = None,
    **kwargs,
) -> List[NodeId]:
    """Place ``count`` landmarks using a named strategy."""
    if strategy not in PLACEMENT_STRATEGIES:
        raise LandmarkError(
            f"unknown placement strategy {strategy!r}; available: {sorted(PLACEMENT_STRATEGIES)}"
        )
    return PLACEMENT_STRATEGIES[strategy](graph, count, candidates=candidates, seed=seed, **kwargs)


def place_on_router_map(
    router_map: RouterMap,
    count: int,
    strategy: str = "medium_degree",
    seed: Optional[int] = None,
    **kwargs,
) -> List[NodeId]:
    """Place landmarks on a :class:`~repro.topology.internet_mapper.RouterMap`.

    For the ``medium_degree`` strategy the candidate pool is restricted to the
    map's medium-degree routers (the paper's setup); other strategies consider
    every router with degree >= 2.
    """
    if strategy == "medium_degree":
        candidates = router_map.medium_degree_routers()
    else:
        candidates = router_map.graph.nodes_with_degree_between(2, 10 ** 9)
    return place_landmarks(
        router_map.graph, count, strategy=strategy, candidates=candidates, seed=seed, **kwargs
    )
