"""Evaluation metrics: the paper's D ratios, ranking quality, delay statistics."""

from .proximity import (
    ProximityComparison,
    compare_strategies,
    mean_population_cost,
    neighbor_cost,
    per_peer_ratios,
    population_cost,
)
from .ranking import (
    kendall_tau,
    precision_at_k,
    recall_at_k,
    relative_rank_loss,
    top_k_overlap_curve,
)
from .latency_stats import DelaySummary, ProbeCostModel, compare_delay_distributions

__all__ = [
    "ProximityComparison",
    "compare_strategies",
    "mean_population_cost",
    "neighbor_cost",
    "per_peer_ratios",
    "population_cost",
    "kendall_tau",
    "precision_at_k",
    "recall_at_k",
    "relative_rank_loss",
    "top_k_overlap_curve",
    "DelaySummary",
    "ProbeCostModel",
    "compare_delay_distributions",
]
