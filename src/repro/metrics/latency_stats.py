"""Latency and setup-delay statistics.

Used by the streaming examples and the convergence benchmark: summarise
per-peer setup delays, compare distributions between schemes, and convert
message counts into wall-clock estimates under a simple probing-cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import MetricError


@dataclass
class DelaySummary:
    """Summary of a delay distribution (milliseconds)."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "DelaySummary":
        """Build the summary from raw samples."""
        if not samples:
            raise MetricError("cannot summarise an empty delay sample set")
        ordered = sorted(float(sample) for sample in samples)
        count = len(ordered)

        def percentile(fraction: float) -> float:
            index = min(count - 1, max(0, int(math.ceil(fraction * count)) - 1))
            return ordered[index]

        return cls(
            count=count,
            mean=sum(ordered) / count,
            median=percentile(0.5),
            p90=percentile(0.9),
            p99=percentile(0.99),
            maximum=ordered[-1],
        )


def compare_delay_distributions(
    baseline: Sequence[float], candidate: Sequence[float]
) -> Dict[str, float]:
    """Relative improvement of ``candidate`` over ``baseline`` (mean / median / p90).

    Values above 0 mean the candidate is faster; 0.5 means 50% faster.
    """
    baseline_summary = DelaySummary.from_samples(baseline)
    candidate_summary = DelaySummary.from_samples(candidate)

    def improvement(base: float, cand: float) -> float:
        if base == 0:
            raise MetricError("baseline delay is zero; improvement undefined")
        return (base - cand) / base

    return {
        "mean_improvement": improvement(baseline_summary.mean, candidate_summary.mean),
        "median_improvement": improvement(baseline_summary.median, candidate_summary.median),
        "p90_improvement": improvement(baseline_summary.p90, candidate_summary.p90),
    }


@dataclass
class ProbeCostModel:
    """Converts protocol message counts into a wall-clock setup-time estimate.

    The paper's argument is about *time to first good neighbour list*: the
    path-tree scheme needs one traceroute (tens of probes, each a fraction of
    the path RTT) plus one server round-trip, while coordinate systems need
    many RTT measurements spread over gossip rounds.  This model makes the
    comparison explicit and tunable.
    """

    per_probe_rtt_ms: float = 40.0
    probes_in_parallel: int = 4
    per_round_interval_ms: float = 500.0
    server_round_trip_ms: float = 30.0

    def traceroute_time(self, hop_count: int, landmarks_probed: int = 1) -> float:
        """Time to traceroute ``landmarks_probed`` landmarks of ``hop_count`` hops."""
        if hop_count <= 0:
            raise MetricError(f"hop_count must be positive, got {hop_count}")
        batches = math.ceil(hop_count / max(1, self.probes_in_parallel))
        return batches * self.per_probe_rtt_ms * max(1, landmarks_probed)

    def path_tree_setup_time(self, hop_count: int, landmarks_probed: int = 1) -> float:
        """Total setup time for the paper's scheme (probe + one server round trip)."""
        return self.traceroute_time(hop_count, landmarks_probed) + self.server_round_trip_ms

    def coordinate_setup_time(self, rounds: int, samples_per_round: int = 1) -> float:
        """Setup time for a gossip-based coordinate system after ``rounds`` rounds."""
        if rounds < 0:
            raise MetricError(f"rounds must be >= 0, got {rounds}")
        per_round = max(self.per_round_interval_ms, samples_per_round * self.per_probe_rtt_ms)
        return rounds * per_round

    def landmark_measurement_time(self, landmark_count: int) -> float:
        """Time for a GNP/binning newcomer to measure every landmark once."""
        if landmark_count <= 0:
            raise MetricError(f"landmark_count must be positive, got {landmark_count}")
        batches = math.ceil(landmark_count / max(1, self.probes_in_parallel))
        return batches * self.per_probe_rtt_ms
