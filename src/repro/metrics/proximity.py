"""The paper's neighbour-quality metric and its ratios.

For a peer ``p`` with neighbour set ``N``, the paper computes
``D = sum of hop distances between p and the members of N`` and reports the
ratios ``D / D_closest`` (proposed scheme vs brute-force optimum) and
``D_random / D_closest`` (random selection vs optimum) as the population
grows.  This module computes those quantities given any distance function,
which in the experiments is the true hop distance from the brute-force
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

from ..exceptions import MetricError

PeerId = Hashable
DistanceFunction = Callable[[PeerId, PeerId], float]


def neighbor_cost(
    peer_id: PeerId, neighbors: Sequence[PeerId], distance: DistanceFunction
) -> float:
    """``D`` for one peer: sum of distances to its neighbours."""
    if not neighbors:
        raise MetricError(f"peer {peer_id!r} has no neighbours; D is undefined")
    return float(sum(distance(peer_id, neighbor) for neighbor in neighbors))


def population_cost(
    neighbor_sets: Mapping[PeerId, Sequence[PeerId]], distance: DistanceFunction
) -> float:
    """Sum of ``D`` over a whole population."""
    if not neighbor_sets:
        raise MetricError("cannot compute a population cost over zero peers")
    return sum(
        neighbor_cost(peer_id, neighbors, distance)
        for peer_id, neighbors in neighbor_sets.items()
    )


def mean_population_cost(
    neighbor_sets: Mapping[PeerId, Sequence[PeerId]], distance: DistanceFunction
) -> float:
    """Average ``D`` per peer."""
    return population_cost(neighbor_sets, distance) / len(neighbor_sets)


@dataclass
class ProximityComparison:
    """The paper's figure datapoint for one population size.

    Attributes mirror the figure's two curves plus the raw sums they are
    computed from.
    """

    peers: int
    neighbor_set_size: int
    cost_scheme: float
    cost_closest: float
    cost_random: float

    @property
    def scheme_ratio(self) -> float:
        """``D / D_closest`` — the proposed scheme's curve."""
        if self.cost_closest == 0:
            raise MetricError("D_closest is zero; ratio undefined")
        return self.cost_scheme / self.cost_closest

    @property
    def random_ratio(self) -> float:
        """``D_random / D_closest`` — the random baseline's curve."""
        if self.cost_closest == 0:
            raise MetricError("D_closest is zero; ratio undefined")
        return self.cost_random / self.cost_closest

    def as_row(self) -> Dict[str, float]:
        """Figure-1 row: population size and the two ratios."""
        return {
            "peers": float(self.peers),
            "scheme_ratio": self.scheme_ratio,
            "random_ratio": self.random_ratio,
        }


def compare_strategies(
    scheme_sets: Mapping[PeerId, Sequence[PeerId]],
    closest_sets: Mapping[PeerId, Sequence[PeerId]],
    random_sets: Mapping[PeerId, Sequence[PeerId]],
    distance: DistanceFunction,
    neighbor_set_size: int,
) -> ProximityComparison:
    """Build a :class:`ProximityComparison` from three strategies' neighbour sets.

    All three mappings must cover the same peers (the comparison is
    per-population, not per-peer).
    """
    peers = set(scheme_sets)
    if set(closest_sets) != peers or set(random_sets) != peers:
        raise MetricError("the three strategies must cover the same peer population")
    return ProximityComparison(
        peers=len(peers),
        neighbor_set_size=neighbor_set_size,
        cost_scheme=population_cost(scheme_sets, distance),
        cost_closest=population_cost(closest_sets, distance),
        cost_random=population_cost(random_sets, distance),
    )


def per_peer_ratios(
    scheme_sets: Mapping[PeerId, Sequence[PeerId]],
    closest_sets: Mapping[PeerId, Sequence[PeerId]],
    distance: DistanceFunction,
) -> Dict[PeerId, float]:
    """Per-peer ``D / D_closest`` (used to inspect the ratio distribution)."""
    ratios: Dict[PeerId, float] = {}
    for peer_id, neighbors in scheme_sets.items():
        closest = closest_sets.get(peer_id)
        if closest is None:
            raise MetricError(f"peer {peer_id!r} missing from the oracle neighbour sets")
        optimal = neighbor_cost(peer_id, closest, distance)
        if optimal == 0:
            continue
        ratios[peer_id] = neighbor_cost(peer_id, neighbors, distance) / optimal
    return ratios
