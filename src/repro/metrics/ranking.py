"""Ranking-quality metrics for proximity estimators.

Beyond the paper's ``D`` ratios, it is useful to quantify how well an
estimator *ranks* peers by proximity (that is what neighbour selection
actually consumes).  The standard measures implemented here:

* ``precision_at_k`` — fraction of the estimator's top-k that are in the true
  top-k;
* ``recall_at_k`` — same set-overlap viewed from the true top-k (identical to
  precision when both lists have k entries, provided for readability);
* ``relative_rank_loss`` — how much farther (in true distance) the selected
  neighbours are compared to the optimal ones (equals ``D/D_closest - 1``);
* ``kendall_tau`` — rank correlation between estimated and true distance
  orderings over a candidate set.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Sequence, Tuple

from ..exceptions import MetricError

PeerId = Hashable
DistanceFunction = Callable[[PeerId, PeerId], float]


def precision_at_k(selected: Sequence[PeerId], optimal: Sequence[PeerId], k: int) -> float:
    """Fraction of the first ``k`` selected peers that appear in the true top-k."""
    if k <= 0:
        raise MetricError(f"k must be positive, got {k}")
    selected_top = list(selected)[:k]
    if not selected_top:
        return 0.0
    optimal_top = set(list(optimal)[:k])
    hits = sum(1 for peer in selected_top if peer in optimal_top)
    return hits / len(selected_top)


def recall_at_k(selected: Sequence[PeerId], optimal: Sequence[PeerId], k: int) -> float:
    """Fraction of the true top-k that the selection recovered."""
    if k <= 0:
        raise MetricError(f"k must be positive, got {k}")
    optimal_top = list(optimal)[:k]
    if not optimal_top:
        return 0.0
    selected_set = set(list(selected)[:k])
    hits = sum(1 for peer in optimal_top if peer in selected_set)
    return hits / len(optimal_top)


def relative_rank_loss(
    peer_id: PeerId,
    selected: Sequence[PeerId],
    optimal: Sequence[PeerId],
    distance: DistanceFunction,
) -> float:
    """``(D_selected - D_optimal) / D_optimal`` for one peer (0 = optimal)."""
    if not selected or not optimal:
        raise MetricError("both neighbour lists must be non-empty")
    selected_cost = sum(distance(peer_id, neighbor) for neighbor in selected)
    optimal_cost = sum(distance(peer_id, neighbor) for neighbor in optimal)
    if optimal_cost == 0:
        raise MetricError("optimal cost is zero; relative loss undefined")
    return (selected_cost - optimal_cost) / optimal_cost


def kendall_tau(
    pairs: Sequence[Tuple[float, float]],
) -> float:
    """Kendall rank correlation between two paired score lists.

    ``pairs`` holds ``(estimated, true)`` values for each candidate.  Returns
    a value in [-1, 1]; 1 means the estimator orders candidates exactly like
    the truth.  Ties count as neither concordant nor discordant (tau-a).
    """
    n = len(pairs)
    if n < 2:
        raise MetricError("kendall_tau needs at least two pairs")
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            estimated_delta = pairs[i][0] - pairs[j][0]
            true_delta = pairs[i][1] - pairs[j][1]
            product = estimated_delta * true_delta
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total = n * (n - 1) / 2
    return (concordant - discordant) / total


def top_k_overlap_curve(
    selected_ranking: Sequence[PeerId],
    optimal_ranking: Sequence[PeerId],
    max_k: int,
) -> List[float]:
    """Precision@k for every k from 1 to ``max_k`` (a quality curve)."""
    if max_k <= 0:
        raise MetricError(f"max_k must be positive, got {max_k}")
    return [
        precision_at_k(selected_ranking, optimal_ranking, k) for k in range(1, max_k + 1)
    ]
