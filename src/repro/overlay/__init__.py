"""Overlay layer: peers, neighbour bookkeeping, selection strategies, churn."""

from .peer import Peer
from .overlay import Overlay
from .neighbor_selection import (
    NeighborSelectionStrategy,
    OracleStrategy,
    PathTreeSelection,
    RandomStrategy,
    build_overlay_with_strategy,
)
from .churn import (
    EVENT_CRASH,
    EVENT_JOIN,
    EVENT_LEAVE,
    ChurnEvent,
    ChurnModel,
    churn_statistics,
)
from .mobility import HandoverManager, HandoverReport, MobilityModel, Move
from .maintenance import MaintenancePolicy, MaintenanceStats, OverlayMaintainer

__all__ = [
    "Peer",
    "Overlay",
    "NeighborSelectionStrategy",
    "OracleStrategy",
    "PathTreeSelection",
    "RandomStrategy",
    "build_overlay_with_strategy",
    "EVENT_CRASH",
    "EVENT_JOIN",
    "EVENT_LEAVE",
    "ChurnEvent",
    "ChurnModel",
    "churn_statistics",
    "HandoverManager",
    "HandoverReport",
    "MobilityModel",
    "Move",
    "MaintenancePolicy",
    "MaintenanceStats",
    "OverlayMaintainer",
]
