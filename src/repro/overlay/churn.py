"""Churn models: peer arrivals, departures and failure injection.

The paper lists "managing both faulty peers and handover" as future work; the
churn benchmarks quantify how the path-tree scheme behaves when peers leave
(gracefully or by crashing) and new ones keep arriving.  The model is a
simple alternating-renewal description: session lengths and off-times are
drawn from configurable exponential distributions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from .._validation import coerce_seed, require_positive_float, require_probability
from ..exceptions import ConfigurationError

PeerId = Hashable

EVENT_JOIN = "join"
EVENT_LEAVE = "leave"
EVENT_CRASH = "crash"


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled churn event."""

    time: float
    kind: str
    peer_id: PeerId


@dataclass
class ChurnModel:
    """Exponential ON/OFF churn.

    Parameters
    ----------
    mean_session_s:
        Mean time a peer stays online before leaving.
    mean_offtime_s:
        Mean time a departed peer waits before re-joining (None = never
        returns).
    crash_fraction:
        Fraction of departures that are crashes (no LeaveNotice sent), the
        "faulty peers" case from the paper's future work.
    seed:
        RNG seed.
    """

    mean_session_s: float = 300.0
    mean_offtime_s: Optional[float] = 120.0
    crash_fraction: float = 0.1
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require_positive_float(self.mean_session_s, "mean_session_s")
        if self.mean_offtime_s is not None:
            require_positive_float(self.mean_offtime_s, "mean_offtime_s")
        require_probability(self.crash_fraction, "crash_fraction")
        self._rng = random.Random(coerce_seed(self.seed))

    def session_length(self) -> float:
        """Draw one online-session duration."""
        return self._rng.expovariate(1.0 / self.mean_session_s)

    def offtime_length(self) -> Optional[float]:
        """Draw one offline duration (None if peers never return)."""
        if self.mean_offtime_s is None:
            return None
        return self._rng.expovariate(1.0 / self.mean_offtime_s)

    def departure_kind(self) -> str:
        """Whether the next departure is graceful or a crash."""
        return EVENT_CRASH if self._rng.random() < self.crash_fraction else EVENT_LEAVE

    def schedule(
        self,
        peer_ids: List[PeerId],
        horizon_s: float,
        initial_join_spread_s: float = 60.0,
    ) -> List[ChurnEvent]:
        """Generate the full churn event list for ``peer_ids`` up to ``horizon_s``.

        Every peer first joins at a uniformly random time within
        ``initial_join_spread_s``, then alternates sessions and off-times
        until the horizon.  Events are returned sorted by time.
        """
        if horizon_s <= 0:
            raise ConfigurationError(f"horizon_s must be > 0, got {horizon_s}")
        events: List[ChurnEvent] = []
        for peer_id in peer_ids:
            time = self._rng.uniform(0.0, initial_join_spread_s)
            online = False
            while time < horizon_s:
                if not online:
                    events.append(ChurnEvent(time=time, kind=EVENT_JOIN, peer_id=peer_id))
                    online = True
                    time += self.session_length()
                else:
                    kind = self.departure_kind()
                    events.append(ChurnEvent(time=time, kind=kind, peer_id=peer_id))
                    online = False
                    offtime = self.offtime_length()
                    if offtime is None:
                        break
                    time += offtime
        events.sort(key=lambda event: (event.time, repr(event.peer_id)))
        return events


def churn_statistics(events: List[ChurnEvent]) -> Tuple[int, int, int]:
    """Return ``(joins, graceful_leaves, crashes)`` counts for an event list."""
    joins = sum(1 for event in events if event.kind == EVENT_JOIN)
    leaves = sum(1 for event in events if event.kind == EVENT_LEAVE)
    crashes = sum(1 for event in events if event.kind == EVENT_CRASH)
    return joins, leaves, crashes
