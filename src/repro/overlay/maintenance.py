"""Periodic overlay maintenance: keeping neighbour lists fresh.

The management server keeps its cached lists up to date as peers come and go,
but a peer only benefits once it *re-queries* the server (or is told to).
This module provides the client-side maintenance loop a deployed system would
run, in a simulation-friendly form:

* :class:`MaintenancePolicy` decides when a peer should refresh (fixed period,
  plus an immediate refresh when too many of its neighbours disappeared);
* :class:`OverlayMaintainer` applies refreshes to an
  :class:`~repro.overlay.overlay.Overlay` backed by a management server (or a
  super-peer directory — anything with ``closest_peers``), and keeps counters
  that the churn experiments report (refreshes performed, neighbours replaced,
  dead neighbours detected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set

from .._validation import require_positive_float, require_positive_int, require_probability
from ..exceptions import OverlayError
from .overlay import Overlay

PeerId = Hashable


@dataclass
class MaintenancePolicy:
    """When should a peer refresh its neighbour list?

    Parameters
    ----------
    refresh_period_s:
        Nominal time between two periodic refreshes of the same peer.
    dead_neighbor_threshold:
        Fraction of a peer's neighbours that may disappear before an
        immediate (out-of-period) refresh is triggered.
    """

    refresh_period_s: float = 60.0
    dead_neighbor_threshold: float = 0.5

    def __post_init__(self) -> None:
        require_positive_float(self.refresh_period_s, "refresh_period_s")
        require_probability(self.dead_neighbor_threshold, "dead_neighbor_threshold")

    def next_refresh_time(self, last_refresh_s: float) -> float:
        """Absolute time of the next periodic refresh."""
        return last_refresh_s + self.refresh_period_s

    def needs_immediate_refresh(self, total_neighbors: int, dead_neighbors: int) -> bool:
        """True if enough neighbours died to warrant refreshing right away."""
        if total_neighbors == 0:
            return True
        return dead_neighbors / total_neighbors >= self.dead_neighbor_threshold


@dataclass
class MaintenanceStats:
    """Counters describing the maintenance activity."""

    refreshes: int = 0
    immediate_refreshes: int = 0
    dead_neighbors_detected: int = 0
    neighbors_replaced: int = 0


class OverlayMaintainer:
    """Keeps an overlay's neighbour lists aligned with the management server.

    Parameters
    ----------
    overlay:
        The overlay to maintain; neighbour lists are replaced in place.
    server:
        Anything exposing ``closest_peers(peer_id, k)`` and ``has_peer`` —
        the single :class:`~repro.core.management_server.ManagementServer` or
        a :class:`~repro.core.superpeers.SuperPeerDirectory`.
    neighbor_set_size:
        Target neighbour-list size (k).
    policy:
        Refresh policy; defaults to a 60 s period with a 50 % dead threshold.
    """

    def __init__(
        self,
        overlay: Overlay,
        server,
        neighbor_set_size: int,
        policy: Optional[MaintenancePolicy] = None,
    ) -> None:
        self.overlay = overlay
        self.server = server
        self.neighbor_set_size = require_positive_int(neighbor_set_size, "neighbor_set_size")
        self.policy = policy or MaintenancePolicy()
        self.stats = MaintenanceStats()
        self._last_refresh: Dict[PeerId, float] = {}

    # --------------------------------------------------------------- refresh

    def refresh_peer(self, peer_id: PeerId, now_s: float = 0.0, immediate: bool = False) -> List[PeerId]:
        """Re-query the server for ``peer_id`` and install the fresh list."""
        if not self.overlay.has_peer(peer_id):
            raise OverlayError(f"peer {peer_id!r} is not in the overlay")
        if not self.server.has_peer(peer_id):
            raise OverlayError(f"peer {peer_id!r} is not registered at the server")
        old = set(self.overlay.neighbors_of(peer_id))
        fresh = [p for p, _ in self.server.closest_peers(peer_id, k=self.neighbor_set_size)]
        fresh = [p for p in fresh if self.overlay.has_peer(p)]
        self.overlay.set_neighbors(peer_id, fresh)
        self._last_refresh[peer_id] = now_s
        self.stats.refreshes += 1
        if immediate:
            self.stats.immediate_refreshes += 1
        self.stats.neighbors_replaced += len(set(fresh) - old)
        return fresh

    def handle_departures(self, departed: Sequence[PeerId], now_s: float = 0.0) -> List[PeerId]:
        """Drop departed peers from every list; refresh peers that lost too many.

        Returns the peers that received an immediate refresh.
        """
        departed_set = set(departed)
        refreshed: List[PeerId] = []
        for peer_id in self.overlay.peers():
            if peer_id in departed_set:
                continue
            neighbors = self.overlay.neighbors_of(peer_id)
            dead = [n for n in neighbors if n in departed_set]
            if not dead:
                continue
            self.stats.dead_neighbors_detected += len(dead)
            surviving = [n for n in neighbors if n not in departed_set]
            self.overlay.set_neighbors(peer_id, surviving)
            if self.policy.needs_immediate_refresh(len(neighbors), len(dead)):
                self.refresh_peer(peer_id, now_s=now_s, immediate=True)
                refreshed.append(peer_id)
        return refreshed

    def run_periodic_round(self, now_s: float) -> List[PeerId]:
        """Refresh every peer whose periodic timer has expired."""
        refreshed: List[PeerId] = []
        for peer_id in self.overlay.peers():
            last = self._last_refresh.get(peer_id, float("-inf"))
            if now_s >= self.policy.next_refresh_time(last) or last == float("-inf"):
                if self.server.has_peer(peer_id):
                    self.refresh_peer(peer_id, now_s=now_s)
                    refreshed.append(peer_id)
        return refreshed

    def staleness(self, now_s: float) -> Dict[PeerId, float]:
        """Seconds since each peer's last refresh (``inf`` if never refreshed)."""
        return {
            peer_id: (now_s - self._last_refresh[peer_id])
            if peer_id in self._last_refresh
            else float("inf")
            for peer_id in self.overlay.peers()
        }
