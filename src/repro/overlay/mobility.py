"""Mobility and handover (paper future work).

The paper notes that "the mobility will require specific algorithms, managing
both faulty peers and handover".  This module provides the handover half: a
peer whose host moves to a different access router must re-probe its (possibly
new) closest landmark, re-register at the management server, and refresh its
overlay neighbours — ideally without interrupting an ongoing streaming
session.

Two pieces are provided:

* :class:`MobilityModel` — generates synthetic movement traces (each move
  re-attaches a peer to a new degree-1 router, biased towards routers in the
  same region or uniformly random, modelling small hand-offs vs big jumps);
* :class:`HandoverManager` — executes one handover against a scenario's
  management server and reports what changed (new landmark?, neighbour-set
  overlap, how much the neighbour cost degraded before the refresh).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .._validation import coerce_seed, require_positive_float, require_positive_int, require_probability
from ..core.newcomer import NewcomerClient
from ..exceptions import ConfigurationError
from ..routing.distance_engine import HopDistanceEngine

PeerId = Hashable
NodeId = Hashable


@dataclass(frozen=True)
class Move:
    """One peer relocation."""

    time_s: float
    peer_id: PeerId
    new_router: NodeId


@dataclass
class MobilityModel:
    """Synthetic relocation traces over a router map.

    Parameters
    ----------
    candidate_routers:
        Degree-1 routers a moving peer may re-attach to.
    local_move_probability:
        Probability that a move is *local*: the new router is one of the
        ``locality_radius`` hop-closest candidates to the old router (a Wi-Fi
        to cellular style hand-off).  Other moves pick uniformly at random
        (the user went somewhere else entirely).
    mean_pause_s:
        Mean time between two moves of the same peer (exponential).
    engine:
        Optional shared :class:`HopDistanceEngine` owned by the session
        (e.g. ``scenario.distance_engine``); without one, the model keeps a
        private engine per graph, so ranking candidates for a local move is
        a cached-vector lookup instead of a fresh BFS per handover step.
    """

    candidate_routers: Sequence[NodeId]
    local_move_probability: float = 0.7
    locality_radius: int = 16
    mean_pause_s: float = 120.0
    seed: Optional[int] = None
    engine: Optional[HopDistanceEngine] = None
    _rng: random.Random = field(init=False, repr=False)
    _private_engine: Optional[HopDistanceEngine] = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if not self.candidate_routers:
            raise ConfigurationError("candidate_routers must not be empty")
        require_probability(self.local_move_probability, "local_move_probability")
        require_positive_int(self.locality_radius, "locality_radius")
        require_positive_float(self.mean_pause_s, "mean_pause_s")
        self._rng = random.Random(coerce_seed(self.seed))

    def _engine_for(self, graph) -> HopDistanceEngine:
        """The shared engine if it matches ``graph``, else a cached private one."""
        if self.engine is not None and self.engine.graph is graph:
            return self.engine
        if self._private_engine is None or self._private_engine.graph is not graph:
            self._private_engine = HopDistanceEngine(graph)
        return self._private_engine

    def next_router(self, graph, current_router: NodeId) -> NodeId:
        """Pick the router a peer moves to from ``current_router``."""
        candidates = [router for router in self.candidate_routers if router != current_router]
        if not candidates:
            return current_router
        if self._rng.random() < self.local_move_probability:
            distances = self._engine_for(graph).hop_distances_to(
                current_router, candidates, default=float("inf")
            )
            ranked = sorted(
                (distance, repr(router), router)
                for distance, router in zip(distances, candidates)
            )
            pool = [router for _, _, router in ranked[: self.locality_radius]]
            return self._rng.choice(pool)
        return self._rng.choice(candidates)

    def trace(
        self,
        graph,
        initial_attachment: Dict[PeerId, NodeId],
        horizon_s: float,
        mobile_fraction: float = 0.3,
    ) -> List[Move]:
        """Generate a movement trace for a fraction of the population."""
        require_positive_float(horizon_s, "horizon_s")
        require_probability(mobile_fraction, "mobile_fraction")
        peers = list(initial_attachment)
        mobile_count = int(round(len(peers) * mobile_fraction))
        mobile_peers = self._rng.sample(peers, mobile_count) if mobile_count else []
        moves: List[Move] = []
        for peer in mobile_peers:
            time = self._rng.expovariate(1.0 / self.mean_pause_s)
            current = initial_attachment[peer]
            while time < horizon_s:
                current = self.next_router(graph, current)
                moves.append(Move(time_s=time, peer_id=peer, new_router=current))
                time += self._rng.expovariate(1.0 / self.mean_pause_s)
        moves.sort(key=lambda move: (move.time_s, repr(move.peer_id)))
        return moves


@dataclass
class HandoverReport:
    """What one handover changed."""

    peer_id: PeerId
    old_router: NodeId
    new_router: NodeId
    old_landmark: Hashable
    new_landmark: Hashable
    landmark_changed: bool
    old_neighbors: List[PeerId]
    new_neighbors: List[PeerId]
    stale_neighbor_cost: float
    refreshed_neighbor_cost: float

    @property
    def neighbor_overlap(self) -> float:
        """Fraction of the old neighbour set kept after the handover."""
        if not self.old_neighbors:
            return 1.0
        kept = len(set(self.old_neighbors) & set(self.new_neighbors))
        return kept / len(self.old_neighbors)

    @property
    def refresh_gain(self) -> float:
        """How much the refresh improved the neighbour cost (>= 0 is better)."""
        if self.stale_neighbor_cost == 0:
            return 0.0
        return (self.stale_neighbor_cost - self.refreshed_neighbor_cost) / self.stale_neighbor_cost


class HandoverManager:
    """Executes peer handovers against a scenario's management server.

    The manager needs the scenario pieces a real client would have: the
    traceroute tool, the management server, and (for reporting only) the
    brute-force oracle to price neighbour sets in true hop distances.
    """

    def __init__(self, scenario) -> None:
        self.scenario = scenario
        self.handovers_executed = 0

    def move_peer(self, peer_id: PeerId, new_router: NodeId) -> HandoverReport:
        """Re-attach ``peer_id`` to ``new_router`` and refresh its state."""
        scenario = self.scenario
        if peer_id not in scenario.peer_routers:
            raise ConfigurationError(f"unknown peer {peer_id!r}")
        if not scenario.router_map.graph.has_node(new_router):
            raise ConfigurationError(f"unknown router {new_router!r}")

        old_router = scenario.peer_routers[peer_id]
        old_landmark = scenario.server.peer_landmark(peer_id)
        k = scenario.config.neighbor_set_size
        old_neighbors = [p for p, _ in scenario.server.closest_peers(peer_id, k=k)]

        # Cost of keeping the stale neighbour set from the NEW position.
        scenario.oracle.add_peer(peer_id, new_router)
        scenario.peer_routers[peer_id] = new_router
        stale_cost = (
            scenario.oracle.neighbor_cost(peer_id, old_neighbors) if old_neighbors else 0.0
        )

        # Re-run the join protocol from the new attachment point.
        client = NewcomerClient(
            peer_id=peer_id,
            access_router=new_router,
            traceroute=scenario.traceroute,
            landmark_selection=scenario.config.landmark_selection,
        )
        result = client.join(scenario.server)
        scenario.join_results[peer_id] = result
        new_neighbors = [p for p, _ in scenario.server.closest_peers(peer_id, k=k)]
        refreshed_cost = (
            scenario.oracle.neighbor_cost(peer_id, new_neighbors) if new_neighbors else 0.0
        )
        self.handovers_executed += 1

        return HandoverReport(
            peer_id=peer_id,
            old_router=old_router,
            new_router=new_router,
            old_landmark=old_landmark,
            new_landmark=result.landmark_id,
            landmark_changed=result.landmark_id != old_landmark,
            old_neighbors=old_neighbors,
            new_neighbors=new_neighbors,
            stale_neighbor_cost=stale_cost,
            refreshed_neighbor_cost=refreshed_cost,
        )

    def run_trace(self, moves: Sequence[Move]) -> List[HandoverReport]:
        """Execute a whole movement trace, in order."""
        return [self.move_peer(move.peer_id, move.new_router) for move in moves]
