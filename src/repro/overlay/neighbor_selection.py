"""Uniform interface over all neighbour-selection strategies.

The figure-1 experiment builds three overlays over the *same* peer population
— one per strategy — and compares their neighbour costs.  To make that loop
trivial, every strategy is wrapped behind the small
:class:`NeighborSelectionStrategy` protocol (``select_neighbors(peer, population,
k)``) and this module provides adapters for:

* the management-server scheme (the paper's proposal),
* the random baseline,
* the brute-force oracle,
* the coordinate systems (Vivaldi / GNP) and binning, which already expose
  a compatible ``select_neighbors``.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Protocol, Sequence, Set

from ..baselines.brute_force import BruteForceOracle
from ..baselines.random_selection import RandomSelection
from ..core.management_server import ManagementServer
from ..exceptions import OverlayError

PeerId = Hashable


class NeighborSelectionStrategy(Protocol):
    """Common strategy interface (structural typing; no registration needed)."""

    name: str

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Sequence[PeerId],
        k: int,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Return up to ``k`` neighbour ids for ``peer_id``."""
        ...


class PathTreeSelection:
    """Adapter exposing the management server as a selection strategy.

    The population argument is ignored (the server already knows the
    registered peers); peers in ``exclude`` are filtered out of the answer
    and replaced by the next-closest candidates when possible.
    """

    name = "path_tree"

    def __init__(self, server: ManagementServer) -> None:
        self.server = server

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Optional[Sequence[PeerId]] = None,
        k: int = 5,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Ask the management server for the closest peers."""
        if not self.server.has_peer(peer_id):
            raise OverlayError(
                f"peer {peer_id!r} must register with the management server before "
                "asking for neighbours"
            )
        excluded = set(exclude) if exclude else set()
        # Over-fetch so exclusions can be compensated without a second query
        # in the common case.
        fetch = k + len(excluded)
        candidates = self.server.closest_peers(peer_id, k=fetch)
        selected = [peer for peer, _ in candidates if peer not in excluded]
        return selected[:k]


class RandomStrategy:
    """Adapter for the random baseline (thin wrapper kept for naming symmetry)."""

    name = "random"

    def __init__(self, selection: Optional[RandomSelection] = None, seed: Optional[int] = None) -> None:
        self.selection = selection or RandomSelection(seed=seed)

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Sequence[PeerId],
        k: int = 5,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Delegate to :class:`~repro.baselines.random_selection.RandomSelection`."""
        return self.selection.select_neighbors(peer_id, population, k, exclude=exclude)


class OracleStrategy:
    """Adapter for the brute-force oracle."""

    name = "brute_force"

    def __init__(self, oracle: BruteForceOracle) -> None:
        self.oracle = oracle

    def select_neighbors(
        self,
        peer_id: PeerId,
        population: Optional[Sequence[PeerId]] = None,
        k: int = 5,
        exclude: Optional[Set[PeerId]] = None,
    ) -> List[PeerId]:
        """Delegate to :class:`~repro.baselines.brute_force.BruteForceOracle`."""
        return self.oracle.select_neighbors(peer_id, population=population, k=k, exclude=exclude)


def build_overlay_with_strategy(
    overlay,
    strategy: NeighborSelectionStrategy,
    k: int,
    population: Optional[Sequence[PeerId]] = None,
) -> None:
    """Assign neighbours to every peer of ``overlay`` using ``strategy``.

    The population defaults to the overlay's full membership; each peer's
    neighbours are chosen among the *other* peers (the strategy receives the
    full population and must exclude the peer itself, which all provided
    strategies do).
    """
    peer_ids = list(population) if population is not None else overlay.peers()
    for peer_id in overlay.peers():
        neighbors = strategy.select_neighbors(peer_id, peer_ids, k)
        overlay.set_neighbors(peer_id, neighbors)
