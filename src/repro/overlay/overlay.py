"""Overlay bookkeeping: the directory of peers and their neighbour links.

The overlay is *directed by construction* (each peer keeps the list of
neighbours it selected) but exposes symmetric views because mesh streaming
treats chunk exchange links as bidirectional.  The class also computes the
paper's quality metric ``D`` (sum of true hop distances from a peer to its
neighbours) when given a distance oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, List, Optional, Set, Tuple

from ..exceptions import OverlayError
from .peer import Peer

PeerId = Hashable
NodeId = Hashable
DistanceFunction = Callable[[PeerId, PeerId], float]


class Overlay:
    """Directory of peers plus their (directed) neighbour selections."""

    def __init__(self) -> None:
        self._peers: Dict[PeerId, Peer] = {}

    # ------------------------------------------------------------------ peers

    def add_peer(self, peer: Peer) -> None:
        """Add a peer to the overlay."""
        if peer.peer_id in self._peers:
            raise OverlayError(f"peer {peer.peer_id!r} is already in the overlay")
        self._peers[peer.peer_id] = peer

    def create_peer(self, peer_id: PeerId, access_router: NodeId, **kwargs) -> Peer:
        """Create and add a peer in one step."""
        peer = Peer(peer_id=peer_id, access_router=access_router, **kwargs)
        self.add_peer(peer)
        return peer

    def remove_peer(self, peer_id: PeerId) -> None:
        """Remove a peer and drop it from every other peer's neighbour list."""
        if peer_id not in self._peers:
            raise OverlayError(f"peer {peer_id!r} is not in the overlay")
        del self._peers[peer_id]
        for peer in self._peers.values():
            peer.remove_neighbor(peer_id)

    def peer(self, peer_id: PeerId) -> Peer:
        """Return the peer record."""
        if peer_id not in self._peers:
            raise OverlayError(f"peer {peer_id!r} is not in the overlay")
        return self._peers[peer_id]

    def has_peer(self, peer_id: PeerId) -> bool:
        """True if the peer is in the overlay."""
        return peer_id in self._peers

    def peers(self) -> List[PeerId]:
        """All peer identifiers."""
        return list(self._peers)

    def peer_records(self) -> List[Peer]:
        """All peer records."""
        return list(self._peers.values())

    @property
    def size(self) -> int:
        """Number of peers."""
        return len(self._peers)

    def __len__(self) -> int:
        return len(self._peers)

    def __iter__(self) -> Iterator[PeerId]:
        return iter(self._peers)

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._peers

    # ------------------------------------------------------------- neighbours

    def set_neighbors(self, peer_id: PeerId, neighbors: List[PeerId]) -> None:
        """Set the (directed) neighbour list of ``peer_id``.

        Every neighbour must be a known peer; unknown identifiers raise.
        """
        unknown = [neighbor for neighbor in neighbors if neighbor not in self._peers]
        if unknown:
            raise OverlayError(f"unknown neighbours for peer {peer_id!r}: {unknown!r}")
        self.peer(peer_id).set_neighbors(neighbors)

    def neighbors_of(self, peer_id: PeerId) -> List[PeerId]:
        """Directed neighbour list of ``peer_id``."""
        return list(self.peer(peer_id).neighbors)

    def symmetric_neighbors_of(self, peer_id: PeerId) -> Set[PeerId]:
        """Neighbours in either direction (selected-by or selected)."""
        result = set(self.peer(peer_id).neighbors)
        for other_id, other in self._peers.items():
            if other_id != peer_id and peer_id in other.neighbors:
                result.add(other_id)
        return result

    def edges(self) -> List[Tuple[PeerId, PeerId]]:
        """All directed overlay edges ``(selector, selected)``."""
        return [
            (peer_id, neighbor)
            for peer_id, peer in self._peers.items()
            for neighbor in peer.neighbors
        ]

    def in_degree(self, peer_id: PeerId) -> int:
        """How many peers selected ``peer_id`` as a neighbour."""
        if peer_id not in self._peers:
            raise OverlayError(f"peer {peer_id!r} is not in the overlay")
        return sum(1 for peer in self._peers.values() if peer_id in peer.neighbors)

    # ---------------------------------------------------------------- metrics

    def neighbor_cost(self, peer_id: PeerId, distance: DistanceFunction) -> float:
        """The paper's ``D`` for one peer: sum of distances to its neighbours."""
        peer = self.peer(peer_id)
        return sum(distance(peer_id, neighbor) for neighbor in peer.neighbors)

    def total_neighbor_cost(self, distance: DistanceFunction) -> float:
        """Sum of ``D`` over all peers with at least one neighbour."""
        return sum(
            self.neighbor_cost(peer_id, distance)
            for peer_id, peer in self._peers.items()
            if peer.neighbors
        )

    def mean_neighbor_cost(self, distance: DistanceFunction) -> float:
        """Average ``D`` over peers with at least one neighbour."""
        costs = [
            self.neighbor_cost(peer_id, distance)
            for peer_id, peer in self._peers.items()
            if peer.neighbors
        ]
        if not costs:
            raise OverlayError("no peer has any neighbour; cannot compute a mean cost")
        return sum(costs) / len(costs)

    def is_connected(self) -> bool:
        """True if the symmetric overlay graph is connected (and non-empty)."""
        if not self._peers:
            return False
        start = next(iter(self._peers))
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: List[PeerId] = []
            for peer_id in frontier:
                for neighbor in self.symmetric_neighbors_of(peer_id):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return len(seen) == len(self._peers)
