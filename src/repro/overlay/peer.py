"""Peer records used by the overlay bookkeeping layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set

from ..exceptions import OverlayError

PeerId = Hashable
NodeId = Hashable


@dataclass
class Peer:
    """One participating peer.

    Attributes
    ----------
    peer_id:
        Unique identifier.
    access_router:
        The router the peer's host is attached to.
    landmark_id:
        Landmark the peer registered under (None before joining).
    joined_at:
        Simulated time of join completion (None before joining).
    neighbors:
        Current overlay neighbours (peer ids), closest first if the selection
        strategy provides an order.
    """

    peer_id: PeerId
    access_router: NodeId
    landmark_id: Optional[Hashable] = None
    joined_at: Optional[float] = None
    neighbors: List[PeerId] = field(default_factory=list)
    upload_capacity: float = 1.0
    online: bool = True

    def set_neighbors(self, neighbors: List[PeerId]) -> None:
        """Replace the neighbour list (self-references are rejected)."""
        if self.peer_id in neighbors:
            raise OverlayError(f"peer {self.peer_id!r} cannot be its own neighbour")
        self.neighbors = list(neighbors)

    def add_neighbor(self, neighbor: PeerId) -> None:
        """Add one neighbour if not already present."""
        if neighbor == self.peer_id:
            raise OverlayError(f"peer {self.peer_id!r} cannot be its own neighbour")
        if neighbor not in self.neighbors:
            self.neighbors.append(neighbor)

    def remove_neighbor(self, neighbor: PeerId) -> None:
        """Remove one neighbour if present (no error if absent)."""
        if neighbor in self.neighbors:
            self.neighbors.remove(neighbor)

    @property
    def degree(self) -> int:
        """Number of overlay neighbours."""
        return len(self.neighbors)

    def neighbor_set(self) -> Set[PeerId]:
        """Neighbours as a set."""
        return set(self.neighbors)
