"""Perf harness: wall-clock/op-count instrumentation for the discovery hot path.

``repro-experiments perf`` (see :mod:`repro.cli`) runs the workloads in
:mod:`repro.perf.workloads` at several population sizes and writes
``BENCH_discovery.json`` — the perf trajectory future PRs regress against.
"""

from .compare import CellDelta, ComparisonResult, compare_reports
from .report import PerfRecord, PerfReport
from .timer import OpTimer, Timing, time_ops
from .workloads import (
    DEFAULT_POPULATIONS,
    DEFAULT_READER_COUNTS,
    SHARDED_LANDMARK_COUNT,
    build_populated_server,
    run_churn_workload,
    run_departure_workload,
    run_discovery_suite,
    run_insert_workload,
    run_query_workload,
    run_serving_workload,
    synthetic_paths,
    synthetic_sharded_paths,
    workload_rng,
)

__all__ = [
    "CellDelta",
    "ComparisonResult",
    "DEFAULT_POPULATIONS",
    "DEFAULT_READER_COUNTS",
    "OpTimer",
    "PerfRecord",
    "PerfReport",
    "SHARDED_LANDMARK_COUNT",
    "Timing",
    "build_populated_server",
    "compare_reports",
    "run_churn_workload",
    "run_departure_workload",
    "run_discovery_suite",
    "run_insert_workload",
    "run_query_workload",
    "run_serving_workload",
    "synthetic_paths",
    "synthetic_sharded_paths",
    "time_ops",
    "workload_rng",
]
