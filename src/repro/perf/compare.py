"""Perf-regression comparison: fail the run when a cell got slower.

``repro-experiments perf --compare BENCH_discovery.json`` re-runs the suite
and compares the fresh report against the saved baseline, cell by cell —
a cell is one ``(workload, population, shards, backend, batch_size,
readers, loss)`` combination — and exits non-zero when any cell's per-op cost
regressed by more than the threshold (25% by default).  This turns the perf
trajectory from something eyeballed into something CI can gate on.

Cells present in only one report are listed but never fail the comparison
(a new dimension — ``--shards`` in schema v2, ``--backend`` in v3, the
arrival workload's ``batch_size`` in v5, the serving workload's
``readers`` in v8, the protocol workload's ``loss`` in v9 — must not
break comparisons
against older baselines: a record without the dimension loads with its
default, so pre-existing cells still line up, while cells along the new
axis are "new cells, not compared"), and cells whose baseline measured 0 µs
are skipped as noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .report import PerfRecord, PerfReport

DEFAULT_THRESHOLD = 0.25

CellKey = Tuple[str, int, Optional[int], str, Optional[int], Optional[int], Optional[float]]


def _cell_text(key: CellKey) -> str:
    workload, population, shards, backend, batch_size, readers, loss = key
    shard_text = "-" if shards is None else str(shards)
    text = f"{workload}@{population}/shards={shard_text}/{backend}"
    if batch_size is not None:
        text += f"/batch={batch_size}"
    if readers is not None:
        text += f"/readers={readers}"
    if loss is not None:
        text += f"/loss={loss}"
    return text


@dataclass
class CellDelta:
    """Per-op cost of one cell in the baseline vs. the current report."""

    workload: str
    population: int
    shards: Optional[int]
    baseline_us: float
    current_us: float
    backend: str = "inline"
    batch_size: Optional[int] = None
    readers: Optional[int] = None
    loss: Optional[float] = None

    @property
    def key(self) -> CellKey:
        """The cell identity this delta compares."""
        return (
            self.workload,
            self.population,
            self.shards,
            self.backend,
            self.batch_size,
            self.readers,
            self.loss,
        )

    @property
    def ratio(self) -> float:
        """Current cost relative to baseline (1.0 = unchanged)."""
        if self.baseline_us <= 0.0:
            return 1.0 if self.current_us <= 0.0 else float("inf")
        return self.current_us / self.baseline_us

    def is_regression(self, threshold: float) -> bool:
        """True when the cell got more than ``threshold`` slower.

        Zero-µs baselines are unmeasurable (timer resolution), so they never
        count as regressions.
        """
        return self.baseline_us > 0.0 and self.current_us > self.baseline_us * (1.0 + threshold)


@dataclass
class ComparisonResult:
    """Outcome of comparing a current report against a baseline."""

    deltas: List[CellDelta]
    threshold: float
    baseline_only: List[CellKey]
    current_only: List[CellKey]

    @property
    def regressions(self) -> List[CellDelta]:
        """The cells that regressed beyond the threshold."""
        return [delta for delta in self.deltas if delta.is_regression(self.threshold)]

    @property
    def ok(self) -> bool:
        """True when no compared cell regressed beyond the threshold.

        An empty comparison (no overlapping cells) is trivially ok here;
        callers gating on a baseline must also check that ``deltas`` is
        non-empty, or the gate passes without measuring anything (the CLI
        treats that as an error).
        """
        return not self.regressions

    def to_text(self) -> str:
        """Aligned human-readable comparison table."""
        header = (
            f"{'workload':<12} {'population':>10} {'shards':>7} {'backend':>8} {'batch':>6} "
            f"{'readers':>7} {'loss':>5} {'baseline_us':>12} {'current_us':>12} {'ratio':>7}"
        )
        lines = [header, "-" * len(header)]
        for delta in self.deltas:
            shards = "-" if delta.shards is None else str(delta.shards)
            batch = "-" if delta.batch_size is None else str(delta.batch_size)
            readers = "-" if delta.readers is None else str(delta.readers)
            loss = "-" if delta.loss is None else f"{delta.loss:.2f}"
            flag = "  REGRESSION" if delta.is_regression(self.threshold) else ""
            lines.append(
                f"{delta.workload:<12} {delta.population:>10} {shards:>7} "
                f"{delta.backend:>8} {batch:>6} {readers:>7} {loss:>5} "
                f"{delta.baseline_us:>12.2f} {delta.current_us:>12.2f} "
                f"{delta.ratio:>7.2f}{flag}"
            )
        for key in self.baseline_only:
            lines.append(f"(baseline only, not compared: {_cell_text(key)})")
        for key in self.current_only:
            lines.append(f"(new cell, not compared: {_cell_text(key)})")
        verdict = (
            f"OK: no cell regressed by more than {self.threshold:.0%}"
            if self.ok
            else f"FAIL: {len(self.regressions)} cell(s) regressed by more than {self.threshold:.0%}"
        )
        lines.append(verdict)
        return "\n".join(lines)


def compare_reports(
    baseline: PerfReport,
    current: PerfReport,
    threshold: float = DEFAULT_THRESHOLD,
) -> ComparisonResult:
    """Compare two perf reports cell by cell.

    Cells are keyed by ``(workload, population, shards, backend,
    batch_size, readers, loss)``; a duplicated cell keeps its last record.
    Deltas are listed in baseline order.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    baseline_cells: Dict[CellKey, PerfRecord] = {r.cell: r for r in baseline.records}
    current_cells: Dict[CellKey, PerfRecord] = {r.cell: r for r in current.records}
    deltas = [
        CellDelta(
            workload=key[0],
            population=key[1],
            shards=key[2],
            backend=key[3],
            batch_size=key[4],
            readers=key[5],
            loss=key[6],
            baseline_us=record.per_op_us,
            current_us=current_cells[key].per_op_us,
        )
        for key, record in baseline_cells.items()
        if key in current_cells
    ]
    return ComparisonResult(
        deltas=deltas,
        threshold=threshold,
        baseline_only=[key for key in baseline_cells if key not in current_cells],
        current_only=[key for key in current_cells if key not in baseline_cells],
    )
