"""Perf report: structured per-workload timings written to ``BENCH_*.json``.

The report is the regression anchor for the discovery hot path: every record
carries the workload name, the population it ran at, wall-clock timings from
:mod:`repro.perf.timer`, and the management server's
:class:`~repro.core.management_server.ServerStats` counters observed during
the measured phase, so later PRs can compare both time *and* algorithmic
work (tree-node visits, cache updates, departure repairs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .timer import Timing

# v2 added the shards dimension, v3 the backend dimension, v4 the
# scenario-build workload (``workload == "build"``, whose ops count is the
# peer count and whose counters come from the distance engine), v5 the
# arrival workload's batch-size dimension (``batch_size``, None for every
# other workload) plus the insert-side trie work counters, v6 the recovery
# workloads (``"recovery"`` / ``"recovery-compacted"``) whose counters carry
# ``journal_len``, ``snapshot_bytes`` and ``recovery_us`` so journal
# compaction regresses like a time regression, v7 the socket backend
# (``backend == "socket"``: connection-scoped shards behind an asyncio
# shard server; recovery cells now exist per remote backend), v8 the
# serving-plane workload (``workload == "serving"``) with its
# concurrent-clients ``readers`` dimension (None for every other workload)
# and its throughput/publish-lag counters, plus ``peak_rss_kb`` /
# ``bytes_per_peer`` memory counters in every cell, v9 the protocol
# workload (``workload == "protocol"``: the beaconing discovery protocol
# over the event sim's lossy wire) with its ``loss`` dimension (the wire
# loss probability, None for every other workload) and simulated-time
# counters (messages/sec, maintenance bytes per peer per second,
# discovery-latency quantiles).  All are additive: older reports load
# with defaults and their cells still compare (new cells show as
# current-only, never as failures).
SCHEMA_VERSION = 9


@dataclass
class PerfRecord:
    """One workload measurement at one population size.

    ``shards`` is the shard count of the sharded management plane the cell
    ran on, or ``None`` for the classic single-server cells (schema v1
    reports load as ``None``).  ``backend`` says where the shards lived:
    ``"inline"`` (in-process, the only pre-v3 behaviour — older reports load
    as ``"inline"``) or ``"process"`` (one worker process per shard via
    :class:`~repro.core.remote.ProcessShardBackend`).  ``batch_size`` is the
    arrival workload's co-arriving batch size; every other workload (and
    every pre-v5 record) loads as ``None``.  ``readers`` is the serving
    workload's concurrent reader count (schema v8); every other workload
    (and every pre-v8 record) loads as ``None``.  ``loss`` is the protocol
    workload's wire loss probability (schema v9); every other workload
    (and every pre-v9 record) loads as ``None``.
    """

    workload: str
    population: int
    ops: int
    total_s: float
    counters: Dict[str, int] = field(default_factory=dict)
    shards: Optional[int] = None
    backend: str = "inline"
    batch_size: Optional[int] = None
    readers: Optional[int] = None
    loss: Optional[float] = None

    @property
    def per_op_us(self) -> float:
        """Mean microseconds per operation."""
        return (self.total_s / self.ops) * 1e6 if self.ops else 0.0

    @classmethod
    def from_timing(
        cls,
        workload: str,
        population: int,
        timing: Timing,
        counters: Optional[Dict[str, int]] = None,
        shards: Optional[int] = None,
        backend: str = "inline",
        batch_size: Optional[int] = None,
        readers: Optional[int] = None,
        loss: Optional[float] = None,
    ) -> "PerfRecord":
        """Build a record from a :class:`~repro.perf.timer.Timing`."""
        return cls(
            workload=workload,
            population=population,
            ops=timing.ops,
            total_s=timing.total_s,
            counters=dict(counters or {}),
            shards=shards,
            backend=backend,
            batch_size=batch_size,
            readers=readers,
            loss=loss,
        )

    @property
    def cell(self) -> tuple:
        """The report cell this record measures (regression-comparison key)."""
        return (
            self.workload,
            self.population,
            self.shards,
            self.backend,
            self.batch_size,
            self.readers,
            self.loss,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (adds the derived per-op cost)."""
        return {
            "workload": self.workload,
            "population": self.population,
            "ops": self.ops,
            "total_s": self.total_s,
            "per_op_us": self.per_op_us,
            "counters": dict(self.counters),
            "shards": self.shards,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "readers": self.readers,
            "loss": self.loss,
        }


@dataclass
class PerfReport:
    """A set of perf records plus run metadata."""

    records: List[PerfRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add(self, record: PerfRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation of the whole report."""
        return {
            "schema_version": SCHEMA_VERSION,
            "metadata": dict(self.metadata),
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        """The report serialised as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: Union[str, Path]) -> Path:
        """Write the JSON report to ``path`` and return it."""
        target = Path(path)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerfReport":
        """Rebuild a report from :meth:`to_dict` output (regression tooling)."""
        records = [
            PerfRecord(
                workload=str(entry["workload"]),
                population=int(entry["population"]),
                ops=int(entry["ops"]),
                total_s=float(entry["total_s"]),
                counters=dict(entry.get("counters", {})),  # type: ignore[arg-type]
                shards=None if entry.get("shards") is None else int(entry["shards"]),  # type: ignore[arg-type]
                backend=str(entry.get("backend", "inline")),  # type: ignore[arg-type]
                batch_size=(
                    None if entry.get("batch_size") is None else int(entry["batch_size"])  # type: ignore[arg-type]
                ),
                readers=(
                    None if entry.get("readers") is None else int(entry["readers"])  # type: ignore[arg-type]
                ),
                loss=(
                    None if entry.get("loss") is None else float(entry["loss"])  # type: ignore[arg-type]
                ),
            )
            for entry in data.get("records", [])  # type: ignore[union-attr]
        ]
        return cls(records=records, metadata=dict(data.get("metadata", {})))  # type: ignore[arg-type]

    def to_text(self) -> str:
        """Aligned human-readable table for the CLI."""
        header = (
            f"{'workload':<12} {'population':>10} {'shards':>7} {'backend':>8} {'batch':>6} "
            f"{'readers':>7} {'loss':>5} {'ops':>8} {'total_s':>10} {'per_op_us':>12}"
        )
        lines = [header, "-" * len(header)]
        for record in self.records:
            shards = "-" if record.shards is None else str(record.shards)
            batch = "-" if record.batch_size is None else str(record.batch_size)
            readers = "-" if record.readers is None else str(record.readers)
            loss = "-" if record.loss is None else f"{record.loss:.2f}"
            lines.append(
                f"{record.workload:<12} {record.population:>10} {shards:>7} "
                f"{record.backend:>8} {batch:>6} {readers:>7} {loss:>5} {record.ops:>8} "
                f"{record.total_s:>10.4f} {record.per_op_us:>12.2f}"
            )
        return "\n".join(lines)
