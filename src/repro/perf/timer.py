"""Lightweight wall-clock / op-count instrumentation for the perf harness.

Deliberately tiny: a monotonic stopwatch that also counts operations, so the
workloads can report per-operation costs without pulling in pytest-benchmark
(which is reserved for the asserting benchmark suite).  All times come from
:func:`time.perf_counter`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass
class Timing:
    """Elapsed wall-clock time for a counted batch of operations."""

    ops: int
    total_s: float

    @property
    def per_op_s(self) -> float:
        """Mean seconds per operation (0.0 when nothing ran)."""
        return self.total_s / self.ops if self.ops else 0.0

    @property
    def per_op_us(self) -> float:
        """Mean microseconds per operation."""
        return self.per_op_s * 1e6

    @property
    def ops_per_s(self) -> float:
        """Operation throughput (inf for a zero-duration batch)."""
        if self.total_s <= 0.0:
            return float("inf")
        return self.ops / self.total_s


class OpTimer:
    """Context-manager stopwatch with an operation counter.

    Usage::

        timer = OpTimer()
        with timer:
            for item in work:
                do(item)
                timer.add_ops()
        print(timer.timing.per_op_us)

    Re-entering accumulates, so one timer can cover several measured bursts
    with unmeasured setup in between.
    """

    def __init__(self) -> None:
        self.ops = 0
        self.total_s = 0.0
        self._started_at: float = 0.0

    def __enter__(self) -> "OpTimer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.total_s += time.perf_counter() - self._started_at

    def add_ops(self, count: int = 1) -> None:
        """Record ``count`` completed operations."""
        self.ops += count

    @property
    def timing(self) -> Timing:
        """Snapshot of the accumulated measurement."""
        return Timing(ops=self.ops, total_s=self.total_s)


def time_ops(fn: Callable[[], T], ops: int = 1) -> Timing:
    """Time one call of ``fn`` that performs ``ops`` operations."""
    started = time.perf_counter()
    fn()
    return Timing(ops=ops, total_s=time.perf_counter() - started)
