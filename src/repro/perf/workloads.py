"""Discovery hot-path workloads measured by ``repro-experiments perf``.

Each workload builds a management server populated with synthetic paths over
a three-level access hierarchy (the same shape the complexity benchmarks
use: it reproduces real landmark-tree fan-out without paying for a full
router-map build at every population size), then times one hot-path
operation class:

* ``insert``    — batch arrival of fresh newcomers via
  :meth:`~repro.core.management_server.ManagementServer.register_peers`;
* ``query``     — cached closest-peer lookups (the O(1) claim);
* ``departure`` — peer removals repaired through the reverse neighbour
  index (the O(k) claim);
* ``churn``     — interleaved leave / re-join cycles, the membership-dynamics
  mix the paper defers to future work.

Every record carries the :class:`~repro.core.management_server.ServerStats`
counter deltas observed during the measured phase plus the landmark trees'
node-visit counters, so regressions in algorithmic work are visible even on
noisy machines.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.management_server import ManagementServer
from ..core.path import RouterPath
from .report import PerfRecord, PerfReport
from .timer import OpTimer

DEFAULT_POPULATIONS = (200, 800, 3200, 12800)
DEFAULT_LANDMARK = "lmk"


def synthetic_paths(
    count: int,
    seed: int = 3,
    landmark: str = DEFAULT_LANDMARK,
    prefix: str = "peer",
) -> List[RouterPath]:
    """``count`` synthetic peer paths over a three-level access hierarchy."""
    rng = random.Random(seed)
    paths: List[RouterPath] = []
    for index in range(count):
        region = rng.randrange(12)
        pop = rng.randrange(30)
        access = rng.randrange(60)
        routers = [
            f"access-{region}-{pop}-{access}",
            f"pop-{region}-{pop}",
            f"region-{region}",
            "core",
            landmark,
        ]
        paths.append(RouterPath.from_routers(f"{prefix}{index}", landmark, routers))
    return paths


def build_populated_server(
    population: int,
    neighbor_set_size: int = 5,
    seed: int = 3,
) -> ManagementServer:
    """A server pre-loaded with ``population`` synthetic peers (batch path)."""
    server = ManagementServer(neighbor_set_size=neighbor_set_size)
    server.register_landmark(DEFAULT_LANDMARK, DEFAULT_LANDMARK)
    server.register_peers(synthetic_paths(population, seed=seed))
    return server


def _tree_visits(server: ManagementServer) -> int:
    """Total trie nodes visited by closest-peer queries across all trees."""
    return sum(server.tree(landmark).total_query_visits for landmark in server.landmarks())


def _measured_counters(server: ManagementServer, visits_before: int) -> Dict[str, int]:
    counters = server.stats.as_dict()
    counters["tree_node_visits"] = _tree_visits(server) - visits_before
    return counters


def run_insert_workload(
    population: int,
    ops: int = 200,
    seed: int = 3,
    neighbor_set_size: int = 5,
) -> PerfRecord:
    """Batch arrival of ``ops`` newcomers on top of ``population`` peers."""
    server = build_populated_server(population, neighbor_set_size, seed=seed)
    newcomers = synthetic_paths(ops, seed=seed + 1, prefix="newcomer")
    server.stats.reset()
    visits = _tree_visits(server)
    timer = OpTimer()
    with timer:
        server.register_peers(newcomers)
        timer.add_ops(len(newcomers))
    return PerfRecord.from_timing(
        "insert", population, timer.timing, _measured_counters(server, visits)
    )


def run_query_workload(
    population: int,
    ops: int = 2000,
    seed: int = 3,
    neighbor_set_size: int = 5,
) -> PerfRecord:
    """Cached closest-peer lookups against a steady population."""
    server = build_populated_server(population, neighbor_set_size, seed=seed)
    rng = random.Random(seed + 2)
    peers = server.peers()
    sample = [rng.choice(peers) for _ in range(ops)]
    server.stats.reset()
    visits = _tree_visits(server)
    timer = OpTimer()
    with timer:
        for peer in sample:
            server.closest_peers(peer)
            timer.add_ops()
    return PerfRecord.from_timing(
        "query", population, timer.timing, _measured_counters(server, visits)
    )


def run_departure_workload(
    population: int,
    ops: int = 200,
    seed: int = 3,
    neighbor_set_size: int = 5,
) -> PerfRecord:
    """Departures repaired through the reverse neighbour index."""
    server = build_populated_server(population, neighbor_set_size, seed=seed)
    rng = random.Random(seed + 3)
    ops = min(ops, population - 1)
    departing = rng.sample(server.peers(), ops)
    server.stats.reset()
    visits = _tree_visits(server)
    timer = OpTimer()
    with timer:
        for peer in departing:
            server.unregister_peer(peer)
            timer.add_ops()
    return PerfRecord.from_timing(
        "departure", population, timer.timing, _measured_counters(server, visits)
    )


def run_churn_workload(
    population: int,
    ops: int = 200,
    seed: int = 3,
    neighbor_set_size: int = 5,
) -> PerfRecord:
    """Interleaved leave / re-join cycles at a steady population."""
    server = build_populated_server(population, neighbor_set_size, seed=seed)
    rng = random.Random(seed + 4)
    churners = rng.sample(server.peers(), min(ops, population - 1))
    replacement_paths = {
        path.peer_id: path for path in synthetic_paths(population, seed=seed)
    }
    server.stats.reset()
    visits = _tree_visits(server)
    timer = OpTimer()
    with timer:
        for peer in churners:
            server.unregister_peer(peer)
            server.register_peers([replacement_paths[peer]])
            timer.add_ops()
    return PerfRecord.from_timing(
        "churn", population, timer.timing, _measured_counters(server, visits)
    )


def run_discovery_suite(
    populations: Sequence[int] = DEFAULT_POPULATIONS,
    ops: Optional[int] = None,
    seed: int = 3,
    neighbor_set_size: int = 5,
) -> PerfReport:
    """Run every discovery workload at every population size.

    ``ops`` overrides each workload's default operation count (useful for
    smoke runs in CI); ``None`` keeps the defaults.
    """
    report = PerfReport(
        metadata={
            "suite": "discovery",
            "populations": list(populations),
            "neighbor_set_size": neighbor_set_size,
            "seed": seed,
        }
    )
    overrides = {} if ops is None else {"ops": ops}
    for population in populations:
        report.add(run_insert_workload(population, seed=seed, neighbor_set_size=neighbor_set_size, **overrides))
        report.add(run_query_workload(population, seed=seed, neighbor_set_size=neighbor_set_size, **overrides))
        report.add(run_departure_workload(population, seed=seed, neighbor_set_size=neighbor_set_size, **overrides))
        report.add(run_churn_workload(population, seed=seed, neighbor_set_size=neighbor_set_size, **overrides))
    return report
