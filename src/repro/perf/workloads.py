"""Discovery hot-path workloads measured by ``repro-experiments perf``.

Each workload builds a management plane populated with synthetic paths over
a three-level access hierarchy (the same shape the complexity benchmarks
use: it reproduces real landmark-tree fan-out without paying for a full
router-map build at every population size), then times one hot-path
operation class:

* ``insert``    — batch arrival of fresh newcomers via ``register_peers``;
* ``query``     — cached closest-peer lookups (the O(1) claim);
* ``departure`` — peer removals repaired through the reverse neighbour
  index (the O(k) claim);
* ``churn``     — interleaved leave / re-join cycles, the membership-dynamics
  mix the paper defers to future work;
* ``arrival``   — a flash crowd joining in batches of ``batch_size``
  (schema v5).  Arrivals are drawn from a deliberately *concentrated*
  access locality (a few regions/PoPs, the way real flash crowds share
  access networks), so larger batches put co-arriving peers on shared
  attachment routers and exercise the batch-aware neighbour phase's
  one-frontier-per-cluster amortisation; ``batch_size=1`` is the
  sequential-arrival baseline on the same peer stream.  One workload run
  registers ``ops`` newcomers total regardless of batch size, so per-op
  cost across the batch axis isolates batch amortisation itself.

The ``build`` workload (schema v4) is different in kind: instead of a
synthetic plane it measures the **scenario-build distance plane** — a full
:func:`~repro.workloads.scenarios.build_scenario` over a router map scaled
to the population (paper-scale ~4 000 routers at the suite's largest
population) followed by :meth:`~repro.workloads.scenarios.Scenario.
warm_distance_plane` (landmark pairwise distances, landmark-rooted routing
trees, true-hop-distance vectors from every distinct peer attachment
router).  Map *generation* happens outside the timed phase — it is a
topology-generator concern the distance engine does not touch — so the cell
regression-gates exactly the code the
:mod:`repro.routing.distance_engine` owns.  One build is one cell;
``per_op_us`` divides by the peer count.

The ``serving`` workload (schema v8) measures the lock-free serving plane:
a :class:`~repro.core.serving.SnapshotPublisher` freezes the populated
plane into an immutable :class:`~repro.core.serving.DiscoverySnapshot` and
``readers`` concurrent :class:`~repro.core.serving.SnapshotReader` threads
run closest-peer queries against it with zero locks.  One cell per entry
in ``reader_counts`` (the **concurrent-clients dimension**).  Because the
readers share hardware (CI runs this on a single core, where the
interpreter time-slices the threads), wall-clock throughput cannot show
reader scaling; the cell therefore records two throughputs:

* ``wall_qps`` — aggregate queries per wall-clock second, whatever the
  scheduler did;
* ``capacity_qps`` — the sum over readers of ``ops / on-CPU busy time``
  (per-thread ``time.thread_time_ns``): the rate the reader fleet would
  sustain given a core each, i.e. the lock-freedom signal.  Readers that
  serialised on a lock would burn busy time waiting and ``capacity_qps``
  would stay flat as readers are added; lock-free readers scale it
  linearly.

Latency quantiles (``latency_p50_ns`` / ``latency_p99_ns``) are on-CPU
nanoseconds per query for the same reason — wall-clock quantiles on a
shared core measure scheduler slices, not the read path.  Three more
pieces of quantile hygiene: each reader runs a short untimed warmup pass
before the barrier (interpreter type/specialisation caches); the cyclic GC
is paused across the timed sweep (read queries allocate but create no
cycles, and a generational collection over a population-sized snapshot
heap otherwise lands in whichever query it interrupts and owns the p99);
and each reader makes several timed passes over the identical query
sample, recording a query's latency as its *minimum* across passes.  The
queries are deterministic and read-only, so the minimum is the standard
repeated-measurement estimator of their true cost: heterogeneity across
queries survives (a trie-walk query is slow in every pass), and so would
lock contention (waiting burns on-CPU time in every pass), while
preemption-resume cache refills and clock-syscall jitter — which land on
different queries each pass — do not.  ``publish_lag_us``
records how long the publisher took to build+install the epoch the readers
served (snapshot staleness bound).  The serving cells run on inline cells
only: the snapshot read path is identical wherever the shards live, so the
backend axis is degenerate for it.

The ``recovery`` / ``recovery-compacted`` pair (schema v6) measures the
self-healing path: restart+replay cost of a churned process-backed shard
before and after journal compaction (see :func:`run_recovery_workload`).
Both cells are process-only and carry ``journal_len`` / ``snapshot_bytes``
/ ``recovery_us`` counters so compaction regressions gate like time
regressions.

The suite has an optional **shards** dimension: with ``shards=None`` a cell
runs the classic single-landmark
:class:`~repro.core.management_server.ManagementServer` (bit-for-bit the
pre-sharding workload, so old and new ``BENCH_discovery.json`` reports stay
comparable), while an integer runs a
:class:`~repro.core.sharded.ShardedManagementServer` over a fixed
:data:`SHARDED_LANDMARK_COUNT`-landmark population — the same workload at
every shard count, so per-op cost across the shards axis isolates the cost
of partitioning itself.

Orthogonally, the **backend** dimension says where sharded cells' shards
live: ``backend="inline"`` keeps them in-process (the only pre-v3
behaviour), ``backend="process"`` runs one worker process per shard behind
:class:`~repro.core.remote.ProcessShardBackend`, and ``backend="socket"``
(schema v7) runs each shard as a connection-scoped server behind
:class:`~repro.core.socket_backend.SocketShardBackend` against a loopback
asyncio shard server — the same workload over the same partitioning, so
per-op cost across the backend axis isolates the cost of crossing each
boundary (framing, codec, chunked fills; for sockets, real network I/O).
Remote backends require a shard count; every workload reaps its worker
processes, connections and loopback servers before returning, however the
measured phase exits.

Sampling is a pure function of ``(seed, workload, population)``: every
workload re-seeds its own RNG via :func:`workload_rng` instead of sharing a
suite-level RNG, so multiplying cells along the shards axis can never
silently change which peers an existing cell samples.

Every record carries the :class:`~repro.core.management_server.ServerStats`
counter deltas observed during the measured phase plus the landmark trees'
node-visit counters and the insert-side trie work counters
(``trie_nodes_created`` / ``trie_nodes_touched``, schema v5), so
regressions in algorithmic work are visible even on noisy machines.
Schema v8 adds two memory counters to every cell: ``peak_rss_kb`` (the
process's resident-set high-water mark at the end of the measured phase —
monotone across a run, so a leak shows up where it happens and the largest
populations bound it) and ``bytes_per_peer`` (that peak divided by the
cell's population: the per-peer memory trajectory of the whole plane).
"""

from __future__ import annotations

import gc
import random
import resource
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.management_server import ManagementServer
from ..core.path import RouterPath
from ..core.serving import SnapshotPublisher, SnapshotReader
from ..core.remote import (
    BACKENDS,
    ProcessShardBackend,
    SupervisedShardBackend,
    shard_factory_for,
)
from ..core.sharded import ShardedManagementServer
from ..protocol.peer import BeaconConfig
from ..protocol.simulation import ProtocolSimulation
from ..sim.rng import derive_seed
from ..topology.internet_mapper import RouterMap, RouterMapConfig, generate_router_map
from ..workloads.scenarios import ScenarioConfig, build_scenario
from .report import PerfRecord, PerfReport
from .timer import OpTimer

DEFAULT_POPULATIONS = (200, 800, 3200, 12800)
DEFAULT_LANDMARK = "lmk"

#: Batch sizes the suite measures the ``arrival`` workload at: sequential
#: joins, a moderate co-arriving group, and a full flash-crowd wave.
DEFAULT_ARRIVAL_BATCH_SIZES = (1, 32, 256)

#: Reader counts the suite measures the ``serving`` workload at: the
#: single-reader baseline and two fan-out points of the concurrent-clients
#: sweep (the acceptance bar compares 1 vs 4).
DEFAULT_READER_COUNTS = (1, 2, 4)

#: Landmark count used by every ``build`` cell (sharded or not) so the
#: scenario workload is identical along the shards/backend axes.
BUILD_LANDMARK_COUNT = 8

#: Landmark count used by every sharded cell, regardless of shard count, so
#: the workload is identical along the shards axis and only the partitioning
#: varies.
SHARDED_LANDMARK_COUNT = 8

ManagementPlane = Union[ManagementServer, ShardedManagementServer]

# Per-workload RNG offsets; keep these stable or old reports stop being
# comparable (the sampled peers would change).
_QUERY_RNG_OFFSET = 2
_DEPARTURE_RNG_OFFSET = 3
_CHURN_RNG_OFFSET = 4

# Seed offset for the arrival workload's newcomer paths (distinct from the
# insert workload's ``seed + 1`` newcomers, so the two cells never share
# peers).
_ARRIVAL_SEED_OFFSET = 7

# RNG offset for the recovery workload's churn victims.
_RECOVERY_RNG_OFFSET = 9

# RNG offset for the serving workload's query sample.
_SERVING_RNG_OFFSET = 11

# Untimed queries each serving reader runs before the barrier releases it.
_SERVING_WARMUP_OPS = 200

# Timed passes each serving reader makes over the query sample; a query's
# recorded latency is its minimum across the passes (see the module
# docstring's quantile-hygiene paragraph).
_SERVING_LATENCY_PASSES = 3

#: Wire loss probabilities the ``protocol`` workload sweeps when enabled
#: (one cell per rate, inline-only; the suite skips the workload unless the
#: caller passes rates — ``--protocol-loss`` on the CLI).
DEFAULT_PROTOCOL_LOSS_RATES = (0.0, 0.1, 0.3)

# Simulated milliseconds each protocol cell runs the beaconing sim for, and
# the beacon cadence it uses.  Fixed simulated time (not ``ops``) keeps the
# cell's *simulated-time* counters — messages/sec, maintenance bytes per
# peer per second, discovery quantiles — comparable across machines; the
# wall-clock ``per_op_us`` (cost per wire message processed) is what the
# regression gate watches.
_PROTOCOL_DURATION_MS = 3000.0
_PROTOCOL_BEACON_INTERVAL_MS = 500.0

# Seed stream name for the protocol workload's simulation (network + peer
# jitter); the sweep derives one stream per loss rate.
_PROTOCOL_SEED_STREAM = "perf-protocol"


def workload_rng(seed: int, offset: int) -> random.Random:
    """A fresh RNG for one workload invocation (one report cell).

    Sampling must depend only on the suite seed and the workload — never on
    how many other cells ran before, which the ``shards`` dimension
    multiplies — so each workload builds its own RNG from ``seed + offset``
    at call time.  Because populations register peers in index order,
    ``rng.sample(server.peers(), ops)`` then picks the same peer *names* in
    every cell of a population, sharded or not, and matches reports written
    before the shards dimension existed.
    """
    return random.Random(seed + offset)


def synthetic_paths(
    count: int,
    seed: int = 3,
    landmark: str = DEFAULT_LANDMARK,
    prefix: str = "peer",
) -> List[RouterPath]:
    """``count`` synthetic peer paths over a three-level access hierarchy."""
    rng = random.Random(seed)
    paths: List[RouterPath] = []
    for index in range(count):
        region = rng.randrange(12)
        pop = rng.randrange(30)
        access = rng.randrange(60)
        routers = [
            f"access-{region}-{pop}-{access}",
            f"pop-{region}-{pop}",
            f"region-{region}",
            "core",
            landmark,
        ]
        paths.append(RouterPath.from_routers(f"{prefix}{index}", landmark, routers))
    return paths


def sharded_landmarks(landmark_count: int = SHARDED_LANDMARK_COUNT) -> List[str]:
    """Landmark identifiers used by the sharded cells."""
    return [f"lmk{index}" for index in range(landmark_count)]


def sharded_landmark_distances(
    landmark_count: int = SHARDED_LANDMARK_COUNT,
) -> Dict[Tuple[str, str], float]:
    """Deterministic pairwise hop distances between the sharded landmarks."""
    names = sharded_landmarks(landmark_count)
    return {
        (names[i], names[j]): float(2 + abs(i - j))
        for i in range(landmark_count)
        for j in range(landmark_count)
        if i < j
    }


def synthetic_sharded_paths(
    count: int,
    seed: int = 3,
    landmark_count: int = SHARDED_LANDMARK_COUNT,
    prefix: str = "peer",
) -> List[RouterPath]:
    """``count`` synthetic paths spread over ``landmark_count`` landmarks.

    Peer names match :func:`synthetic_paths` (``peer0``, ``peer1``, …, in
    index order) so per-cell sampling picks the same names as the
    single-landmark cells; each landmark gets its own disjoint three-level
    hierarchy so the per-landmark trees are independent.
    """
    rng = random.Random(seed)
    names = sharded_landmarks(landmark_count)
    paths: List[RouterPath] = []
    for index in range(count):
        landmark = names[rng.randrange(landmark_count)]
        region = rng.randrange(12)
        pop = rng.randrange(30)
        access = rng.randrange(60)
        routers = [
            f"{landmark}-access-{region}-{pop}-{access}",
            f"{landmark}-pop-{region}-{pop}",
            f"{landmark}-region-{region}",
            f"{landmark}-core",
            landmark,
        ]
        paths.append(RouterPath.from_routers(f"{prefix}{index}", landmark, routers))
    return paths


def _population_paths(
    count: int, seed: int, shards: Optional[int], prefix: str = "peer"
) -> List[RouterPath]:
    """The synthetic population for a cell (single- or multi-landmark)."""
    if shards is None:
        return synthetic_paths(count, seed=seed, prefix=prefix)
    return synthetic_sharded_paths(count, seed=seed, prefix=prefix)


def arrival_paths(
    count: int, seed: int, shards: Optional[int], prefix: str = "arrival"
) -> List[RouterPath]:
    """``count`` flash-crowd newcomer paths with concentrated access locality.

    Same router namespace as the steady population, but arrivals are drawn
    from 4 regions x 8 PoPs x 12 access routers (384 access leaves instead
    of 21 600): a flash crowd shares access networks, so batches of
    co-arriving peers genuinely cluster on attachment routers.  Sharded
    cells concentrate the crowd on the first two landmarks the same way.
    """
    rng = random.Random(seed)
    names = sharded_landmarks()
    paths: List[RouterPath] = []
    for index in range(count):
        region = rng.randrange(4)
        pop = rng.randrange(8)
        access = rng.randrange(12)
        if shards is None:
            landmark = DEFAULT_LANDMARK
            routers = [
                f"access-{region}-{pop}-{access}",
                f"pop-{region}-{pop}",
                f"region-{region}",
                "core",
                landmark,
            ]
        else:
            landmark = names[rng.randrange(2)]
            routers = [
                f"{landmark}-access-{region}-{pop}-{access}",
                f"{landmark}-pop-{region}-{pop}",
                f"{landmark}-region-{region}",
                f"{landmark}-core",
                landmark,
            ]
        paths.append(RouterPath.from_routers(f"{prefix}{index}", landmark, routers))
    return paths


#: Backends whose shards live behind a transport (worker process / socket
#: server) — they only exist on a sharded plane, so their cells need a
#: shard count, and each has a recovery (restart/reconnect+replay) story
#: the ``recovery`` workload measures.
REMOTE_BACKENDS = ("process", "socket")


def _require_backend(backend: str, shards: Optional[int]) -> None:
    """Reject unknown backends and remote cells without a shard count."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if backend in REMOTE_BACKENDS and shards is None:
        raise ValueError(f"backend={backend!r} requires a shard count")


def build_populated_server(
    population: int,
    neighbor_set_size: int = 5,
    seed: int = 3,
    shards: Optional[int] = None,
    backend: str = "inline",
) -> ManagementPlane:
    """A management plane pre-loaded with ``population`` synthetic peers.

    ``shards=None`` reproduces the original single-landmark
    :class:`ManagementServer` exactly; an integer builds a
    :class:`ShardedManagementServer` over that many shards with
    :data:`SHARDED_LANDMARK_COUNT` landmarks, inline or (with
    ``backend="process"``) one worker process per shard.  The caller owns
    the returned plane and must ``close()`` it.
    """
    _require_backend(backend, shards)
    if shards is None:
        server: ManagementPlane = ManagementServer(neighbor_set_size=neighbor_set_size)
        server.register_landmark(DEFAULT_LANDMARK, DEFAULT_LANDMARK)
    else:
        shard_factory = shard_factory_for(backend, neighbor_set_size)
        server = ShardedManagementServer(
            shard_count=shards,
            neighbor_set_size=neighbor_set_size,
            landmark_distances=sharded_landmark_distances(),
            shard_factory=shard_factory,
        )
        for landmark in sharded_landmarks():
            server.register_landmark(landmark, landmark)
    try:
        server.register_peers(_population_paths(population, seed, shards))
    except BaseException:
        server.close()
        raise
    return server


def _tree_visits(server: ManagementPlane) -> int:
    """Total trie nodes visited by closest-peer queries across all trees."""
    return server.total_tree_visits()


def _insert_work(server: ManagementPlane) -> Tuple[int, int]:
    """Total trie ``(nodes_created, nodes_touched)`` across all trees."""
    return server.total_insert_work()


def _memory_counters(population: int) -> Dict[str, int]:
    """``peak_rss_kb`` / ``bytes_per_peer`` for one cell (schema v8).

    ``ru_maxrss`` is the process-lifetime resident-set high-water mark
    (kilobytes on Linux) — monotone across a suite run, so within a run the
    growth between cells localises where memory went, and the largest
    population's cell bounds the whole plane's footprint.
    ``bytes_per_peer`` divides that peak by the cell's population: the
    per-peer memory trajectory the roadmap's scaling claims gate on.
    """
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "peak_rss_kb": int(peak_rss_kb),
        "bytes_per_peer": int(peak_rss_kb * 1024 // max(1, population)),
    }


def _measured_counters(
    server: ManagementPlane,
    visits_before: int,
    work_before: Tuple[int, int],
    population: int,
) -> Dict[str, int]:
    counters = server.stats.as_dict()
    counters["tree_node_visits"] = _tree_visits(server) - visits_before
    created, touched = _insert_work(server)
    counters["trie_nodes_created"] = created - work_before[0]
    counters["trie_nodes_touched"] = touched - work_before[1]
    counters.update(_memory_counters(population))
    return counters


def run_insert_workload(
    population: int,
    ops: int = 200,
    seed: int = 3,
    neighbor_set_size: int = 5,
    shards: Optional[int] = None,
    backend: str = "inline",
) -> PerfRecord:
    """Batch arrival of ``ops`` newcomers on top of ``population`` peers."""
    server = build_populated_server(
        population, neighbor_set_size, seed=seed, shards=shards, backend=backend
    )
    try:
        newcomers = _population_paths(ops, seed + 1, shards, prefix="newcomer")
        server.stats.reset()
        visits = _tree_visits(server)
        work = _insert_work(server)
        timer = OpTimer()
        with timer:
            server.register_peers(newcomers)
            timer.add_ops(len(newcomers))
        return PerfRecord.from_timing(
            "insert",
            population,
            timer.timing,
            _measured_counters(server, visits, work, population),
            shards=shards,
            backend=backend,
        )
    finally:
        server.close()


def run_query_workload(
    population: int,
    ops: int = 2000,
    seed: int = 3,
    neighbor_set_size: int = 5,
    shards: Optional[int] = None,
    backend: str = "inline",
) -> PerfRecord:
    """Cached closest-peer lookups against a steady population."""
    server = build_populated_server(
        population, neighbor_set_size, seed=seed, shards=shards, backend=backend
    )
    try:
        rng = workload_rng(seed, _QUERY_RNG_OFFSET)
        peers = server.peers()
        sample = [rng.choice(peers) for _ in range(ops)]
        server.stats.reset()
        visits = _tree_visits(server)
        work = _insert_work(server)
        timer = OpTimer()
        with timer:
            for peer in sample:
                server.closest_peers(peer)
                timer.add_ops()
        return PerfRecord.from_timing(
            "query",
            population,
            timer.timing,
            _measured_counters(server, visits, work, population),
            shards=shards,
            backend=backend,
        )
    finally:
        server.close()


def run_departure_workload(
    population: int,
    ops: int = 200,
    seed: int = 3,
    neighbor_set_size: int = 5,
    shards: Optional[int] = None,
    backend: str = "inline",
) -> PerfRecord:
    """Departures repaired through the reverse neighbour index."""
    server = build_populated_server(
        population, neighbor_set_size, seed=seed, shards=shards, backend=backend
    )
    try:
        rng = workload_rng(seed, _DEPARTURE_RNG_OFFSET)
        ops = min(ops, population - 1)
        departing = rng.sample(server.peers(), ops)
        server.stats.reset()
        visits = _tree_visits(server)
        work = _insert_work(server)
        timer = OpTimer()
        with timer:
            for peer in departing:
                server.unregister_peer(peer)
                timer.add_ops()
        return PerfRecord.from_timing(
            "departure",
            population,
            timer.timing,
            _measured_counters(server, visits, work, population),
            shards=shards,
            backend=backend,
        )
    finally:
        server.close()


def run_churn_workload(
    population: int,
    ops: int = 200,
    seed: int = 3,
    neighbor_set_size: int = 5,
    shards: Optional[int] = None,
    backend: str = "inline",
) -> PerfRecord:
    """Interleaved leave / re-join cycles at a steady population."""
    server = build_populated_server(
        population, neighbor_set_size, seed=seed, shards=shards, backend=backend
    )
    try:
        rng = workload_rng(seed, _CHURN_RNG_OFFSET)
        churners = rng.sample(server.peers(), min(ops, population - 1))
        replacement_paths = {
            path.peer_id: path for path in _population_paths(population, seed, shards)
        }
        server.stats.reset()
        visits = _tree_visits(server)
        work = _insert_work(server)
        timer = OpTimer()
        with timer:
            for peer in churners:
                server.unregister_peer(peer)
                server.register_peers([replacement_paths[peer]])
                timer.add_ops()
        return PerfRecord.from_timing(
            "churn",
            population,
            timer.timing,
            _measured_counters(server, visits, work, population),
            shards=shards,
            backend=backend,
        )
    finally:
        server.close()


def run_arrival_workload(
    population: int,
    ops: int = 256,
    seed: int = 3,
    neighbor_set_size: int = 5,
    shards: Optional[int] = None,
    backend: str = "inline",
    batch_size: int = 32,
) -> PerfRecord:
    """Flash-crowd arrival: ``ops`` newcomers join in ``batch_size`` waves.

    Registers the same concentrated-locality newcomer stream (see
    :func:`arrival_paths`) as consecutive ``register_peers`` batches of
    ``batch_size`` on top of a ``population``-peer steady plane, so the
    per-newcomer cost across the batch-size axis isolates what batching
    itself buys (shared per-cluster frontiers, amortised validation).
    ``per_op_us`` divides by the newcomer count.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    server = build_populated_server(
        population, neighbor_set_size, seed=seed, shards=shards, backend=backend
    )
    try:
        newcomers = arrival_paths(ops, seed + _ARRIVAL_SEED_OFFSET, shards)
        server.stats.reset()
        visits = _tree_visits(server)
        work = _insert_work(server)
        timer = OpTimer()
        with timer:
            for start in range(0, len(newcomers), batch_size):
                batch = newcomers[start : start + batch_size]
                server.register_peers(batch)
                timer.add_ops(len(batch))
        return PerfRecord.from_timing(
            "arrival",
            population,
            timer.timing,
            _measured_counters(server, visits, work, population),
            shards=shards,
            backend=backend,
            batch_size=batch_size,
        )
    finally:
        server.close()


def _quantile(sorted_values: Sequence[int], fraction: float) -> int:
    """Nearest-rank quantile of a pre-sorted sample (0 for an empty one)."""
    if not sorted_values:
        return 0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return int(sorted_values[rank])


def _serving_reader_loop(
    snapshot, sample: Sequence[str], results: list, slot: int, barrier: threading.Barrier
) -> None:
    """One reader thread: pin-per-query closest-peer lookups over a snapshot.

    Busy time and per-query latencies use ``time.thread_time_ns`` (on-CPU
    nanoseconds for *this* thread), so the numbers mean the same thing
    whether the fleet got one core or is being time-sliced on a single one
    — see the module docstring's ``capacity_qps`` rationale.  A short
    untimed warmup pass runs before the barrier (a throwaway reader issues
    it so ``queries_served`` counts exactly the timed queries); the timed
    region then makes :data:`_SERVING_LATENCY_PASSES` passes over the
    sample and reports each query's minimum latency across them (the
    module docstring's quantile-hygiene paragraph says why).
    """
    reader = SnapshotReader(snapshot)
    clock = time.thread_time_ns
    warmup = SnapshotReader(snapshot)
    for peer in sample[:_SERVING_WARMUP_OPS]:
        warmup.closest_peers(peer)
    best: List[int] = [0] * len(sample)
    barrier.wait()
    busy_start = clock()
    for pass_index in range(_SERVING_LATENCY_PASSES):
        first_pass = pass_index == 0
        for index, peer in enumerate(sample):
            started = clock()
            reader.closest_peers(peer)
            elapsed = clock() - started
            if first_pass or elapsed < best[index]:
                best[index] = elapsed
    busy_ns = clock() - busy_start
    results[slot] = (reader.queries_served, busy_ns, best)


def run_serving_workload(
    population: int,
    ops: int = 2000,
    seed: int = 3,
    neighbor_set_size: int = 5,
    shards: Optional[int] = None,
    backend: str = "inline",
    reader_counts: Sequence[int] = DEFAULT_READER_COUNTS,
) -> List[PerfRecord]:
    """Lock-free snapshot reads under a concurrent-clients sweep (schema v8).

    Builds one populated plane, publishes one
    :class:`~repro.core.serving.DiscoverySnapshot` epoch through a
    :class:`~repro.core.serving.SnapshotPublisher`, then — one cell per
    entry in ``reader_counts`` — runs that many
    :class:`~repro.core.serving.SnapshotReader` threads, each issuing the
    same ``ops`` closest-peer queries against the pinned epoch,
    :data:`_SERVING_LATENCY_PASSES` times over.  The cell's ``ops`` is the
    fleet total (``ops x readers x passes``); ``per_op_us`` is wall time
    per query.  Counters per cell:

    * ``capacity_qps`` — sum over readers of queries per on-CPU second,
      the core-independent scaling signal (see the module docstring);
    * ``wall_qps`` — aggregate wall-clock throughput as scheduled;
    * ``latency_p50_ns`` / ``latency_p99_ns`` — on-CPU per-query quantiles
      over every reader's sample, each query's latency its minimum across
      the passes (quantile hygiene, module docstring);
    * ``publish_lag_us`` — how long building+installing the served epoch
      took on the write side (the staleness bound readers pay);
    * ``generation`` and the schema-v8 memory counters.
    """
    if any(count < 1 for count in reader_counts):
        raise ValueError(f"reader counts must be >= 1, got {list(reader_counts)}")
    server = build_populated_server(
        population, neighbor_set_size, seed=seed, shards=shards, backend=backend
    )
    try:
        publisher = SnapshotPublisher(server)
        publisher.publish()  # a fresh epoch, so publish_lag_us is measured
        publish_lag_us = int(publisher.last_publish_seconds * 1e6)
        snapshot = publisher.snapshot
        rng = workload_rng(seed, _SERVING_RNG_OFFSET)
        peers = server.peers()
        sample = [rng.choice(peers) for _ in range(ops)]
        records: List[PerfRecord] = []
        # Quantile hygiene: drain the build-phase garbage now, then keep the
        # cyclic collector paused across the timed sweeps.  Read queries
        # allocate but never create cycles, and a generational collection
        # over a population-sized snapshot heap lands in whichever query it
        # interrupts — that pause, not the read path, owns the p99.
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for readers in reader_counts:
                results: List[Optional[Tuple[int, int, List[int]]]] = [None] * readers
                barrier = threading.Barrier(readers + 1)
                threads = [
                    threading.Thread(
                        target=_serving_reader_loop,
                        args=(snapshot, sample, results, slot, barrier),
                    )
                    for slot in range(readers)
                ]
                for thread in threads:
                    thread.start()
                timer = OpTimer()
                with timer:
                    barrier.wait()  # release the fleet, then wall-clock it
                    for thread in threads:
                        thread.join()
                    timer.add_ops(ops * readers * _SERVING_LATENCY_PASSES)
                latencies: List[int] = []
                capacity_qps = 0.0
                for entry in results:
                    assert entry is not None  # threads report before join returns
                    served, busy_ns, reader_latencies = entry
                    capacity_qps += served / max(busy_ns, 1) * 1e9
                    latencies.extend(reader_latencies)
                latencies.sort()
                wall_s = timer.timing.total_s
                fleet_queries = ops * readers * _SERVING_LATENCY_PASSES
                counters = {
                    "capacity_qps": int(capacity_qps),
                    "wall_qps": int(fleet_queries / wall_s) if wall_s > 0 else 0,
                    "latency_p50_ns": _quantile(latencies, 0.50),
                    "latency_p99_ns": _quantile(latencies, 0.99),
                    "publish_lag_us": publish_lag_us,
                    "generation": snapshot.generation,
                }
                counters.update(_memory_counters(population))
                records.append(
                    PerfRecord.from_timing(
                        "serving",
                        population,
                        timer.timing,
                        counters,
                        shards=shards,
                        backend=backend,
                        readers=readers,
                    )
                )
        finally:
            if gc_was_enabled:
                gc.enable()
        return records
    finally:
        server.close()


def run_protocol_workload(
    population: int,
    seed: int = 3,
    neighbor_set_size: int = 5,
    loss_rates: Sequence[float] = DEFAULT_PROTOCOL_LOSS_RATES,
) -> List[PerfRecord]:
    """The beaconing discovery protocol over the lossy wire (schema v9).

    One cell per entry in ``loss_rates``: a
    :class:`~repro.protocol.simulation.ProtocolSimulation` with
    ``population`` beaconing peers runs :data:`_PROTOCOL_DURATION_MS`
    simulated milliseconds at that wire loss probability, and the cell
    times the whole event-driven run.  ``ops`` is the number of wire
    messages the simulation carried (beacons + acks, including dropped and
    duplicated copies), so ``per_op_us`` is the wall cost per message
    event — the hot path being the network send/deliver machinery plus the
    host's dedup/registration work.  Counters per cell:

    * ``messages_per_sec`` / ``maintenance_bytes_per_peer_s`` — simulated-
      time protocol costs (the paper-facing numbers);
    * ``discovery_p50_ms`` / ``discovery_p99_ms`` — simulated time from a
      peer's first beacon to its first ack;
    * ``beacons_sent`` / ``retransmissions`` / ``dropped_messages`` /
      ``duplicated_messages`` / ``reordered_messages`` / ``peers_expired``
      / ``discovered_peers`` — protocol health, plus the schema-v8 memory
      counters.

    The simulation is seed-deterministic per ``(seed, loss)``, so the
    simulated-time counters are exactly reproducible; only the wall-clock
    timing varies across machines.
    """
    if not loss_rates:
        raise ValueError("loss_rates must not be empty")
    for loss in loss_rates:
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss rates must be in [0, 1), got {loss}")
    records: List[PerfRecord] = []
    paths = synthetic_paths(population, seed=seed)
    for loss in loss_rates:
        sim = ProtocolSimulation(
            paths,
            beacon_config=BeaconConfig(beacon_interval_ms=_PROTOCOL_BEACON_INTERVAL_MS),
            loss_probability=loss,
            seed=derive_seed(seed, f"{_PROTOCOL_SEED_STREAM}-{loss}"),
            neighbor_set_size=neighbor_set_size,
        )
        try:
            timer = OpTimer()
            with timer:
                metrics = sim.run(_PROTOCOL_DURATION_MS)
                timer.add_ops(metrics.messages_sent)
            counters = {
                "messages_per_sec": int(metrics.messages_per_sec),
                "maintenance_bytes_per_peer_s": int(metrics.maintenance_bytes_per_peer_s),
                "discovery_p50_ms": int(
                    metrics.discovery_latency.median if metrics.discovery_latency else 0
                ),
                "discovery_p99_ms": int(
                    metrics.discovery_latency.p99 if metrics.discovery_latency else 0
                ),
                "beacons_sent": metrics.beacons_sent,
                "retransmissions": metrics.retransmissions,
                "dropped_messages": metrics.dropped_messages,
                "duplicated_messages": metrics.duplicated_messages,
                "reordered_messages": metrics.reordered_messages,
                "peers_expired": metrics.host_counters.get("peers_expired", 0),
                "discovered_peers": metrics.discovered_peers,
            }
            counters.update(_memory_counters(population))
            records.append(
                PerfRecord.from_timing(
                    "protocol",
                    population,
                    timer.timing,
                    counters,
                    shards=None,
                    backend="inline",
                    loss=loss,
                )
            )
        finally:
            sim.close()
    return records


def run_recovery_workload(
    population: int,
    ops: int = 500,
    seed: int = 3,
    neighbor_set_size: int = 5,
    backend_name: str = "process",
) -> List[PerfRecord]:
    """Restart+replay cost vs journal length, with and without compaction.

    Builds one remote shard backend (``backend_name`` picks the transport:
    a :class:`~repro.core.remote.ProcessShardBackend` worker or a
    :class:`~repro.core.socket_backend.SocketShardBackend` against a
    loopback server), loads ``population`` peers, then runs ``ops``
    leave/re-join churn cycles so the journal records far more history than
    live state.  Two records come back (both tagged ``backend_name``,
    ``shards=1``):

    * ``recovery`` — ``restart()`` (respawn or reconnect) replaying the
      full churn journal; ``ops`` is the journal length, so ``per_op_us``
      is replay cost per journaled operation.
    * ``recovery-compacted`` — the same shard after
      :meth:`~repro.core.remote.SupervisedShardBackend.compact`, so the
      replay is one snapshot restore bounded by live state; ``per_op_us``
      is the whole restart.

    Counters carry ``journal_len``, ``snapshot_bytes``, ``recovery_us`` and
    ``live_peers`` (schema v6), so a compaction regression (snapshot bloat,
    replay growing with history again) gates like a time regression.
    """
    if backend_name not in REMOTE_BACKENDS:
        raise ValueError(
            f"recovery workload needs a remote backend {REMOTE_BACKENDS}, "
            f"got {backend_name!r}"
        )
    if backend_name == "socket":
        from ..core.socket_backend import SocketShardBackend

        backend: SupervisedShardBackend = SocketShardBackend(
            neighbor_set_size=neighbor_set_size, name="recovery-shard"
        )
    else:
        backend = ProcessShardBackend(
            neighbor_set_size=neighbor_set_size, name="recovery-shard"
        )
    records: List[PerfRecord] = []
    try:
        backend.register_landmark(DEFAULT_LANDMARK, DEFAULT_LANDMARK)
        paths = synthetic_paths(population, seed=seed)
        backend.insert_paths(paths)
        rng = workload_rng(seed, _RECOVERY_RNG_OFFSET)
        for _ in range(ops):
            victim = paths[rng.randrange(len(paths))]
            backend.unregister_peer(victim.peer_id)
            backend.insert_paths([victim])

        journal_len = backend.supervisor.journal_length
        timer = OpTimer()
        with timer:
            backend.restart()
            timer.add_ops(journal_len)
        records.append(
            PerfRecord.from_timing(
                "recovery",
                population,
                timer.timing,
                {
                    "journal_len": journal_len,
                    "snapshot_bytes": 0,
                    "recovery_us": int(timer.timing.total_s * 1e6),
                    "live_peers": population,
                    **_memory_counters(population),
                },
                shards=1,
                backend=backend_name,
            )
        )

        snapshot_bytes = backend.compact()
        compacted_len = backend.supervisor.journal_length
        timer = OpTimer()
        with timer:
            backend.restart()
            timer.add_ops(compacted_len)
        records.append(
            PerfRecord.from_timing(
                "recovery-compacted",
                population,
                timer.timing,
                {
                    "journal_len": compacted_len,
                    "snapshot_bytes": snapshot_bytes,
                    "recovery_us": int(timer.timing.total_s * 1e6),
                    "live_peers": population,
                    **_memory_counters(population),
                },
                shards=1,
                backend=backend_name,
            )
        )
        return records
    finally:
        backend.close()


def build_map_config(population: int, seed: int = 3) -> RouterMapConfig:
    """Router map for one ``build`` cell, scaled to the population.

    The suite's largest population gets the paper-scale default map
    (~4 000 routers); smaller populations get proportionally smaller maps
    (clamped so the tier structure survives), keeping smoke cells cheap.
    The map is a pure function of ``(population, seed)`` so a cell is
    always comparable with itself across reports.
    """
    fraction = min(1.0, population / DEFAULT_POPULATIONS[-1])
    return RouterMapConfig(
        core_size=max(8, int(60 * fraction)),
        core_attachment=4,
        transit_size=max(12, int(600 * fraction)),
        transit_attachment=2,
        stub_size=max(48, int(3400 * fraction)),
        stub_attachment=1,
        seed=seed,
    )


def run_build_workload(
    population: int,
    ops: Optional[int] = None,
    seed: int = 3,
    neighbor_set_size: int = 5,
    shards: Optional[int] = None,
    backend: str = "inline",
    router_map_config: Optional[RouterMapConfig] = None,
    router_map: Optional[RouterMap] = None,
) -> PerfRecord:
    """Scenario distance-plane build at ``population`` peers.

    Times :func:`~repro.workloads.scenarios.build_scenario` (landmark
    placement, inter-landmark distance matrix, management plane, traceroute
    plumbing) plus :meth:`~repro.workloads.scenarios.Scenario.
    warm_distance_plane` (landmark routing trees and true-distance vectors
    from every distinct attachment router) over a pre-generated router map.
    ``ops`` is accepted for suite uniformity but ignored — one build is one
    cell, and ``per_op_us`` divides by the peer count.  Counters carry the
    distance engine's algorithmic-work counters plus the map size, so a
    regression in BFS batching is visible even on noisy machines.

    ``router_map`` optionally supplies the pre-generated map (the suite
    shares one map across a population's backend/shard cells — the map is
    a pure function of ``(population, seed)`` either way).
    """
    del ops  # one build per cell; the op count is the peer count
    _require_backend(backend, shards)
    if router_map is None:
        map_config = router_map_config or build_map_config(population, seed)
        router_map = generate_router_map(map_config)
    else:
        map_config = router_map.config
    config = ScenarioConfig(
        peer_count=population,
        landmark_count=BUILD_LANDMARK_COUNT,
        neighbor_set_size=neighbor_set_size,
        router_map_config=map_config,
        seed=seed,
        shard_count=shards,
        backend=backend,
    )
    scenario = None
    try:
        timer = OpTimer()
        with timer:
            scenario = build_scenario(config, router_map=router_map)
            distance_sources = scenario.warm_distance_plane()
            timer.add_ops(population)
        counters = scenario.distance_engine.stats.as_dict()
        counters["routers"] = router_map.graph.node_count
        counters["edges"] = router_map.graph.edge_count
        counters["distance_sources"] = distance_sources
        counters.update(_memory_counters(population))
        return PerfRecord.from_timing(
            "build",
            population,
            timer.timing,
            counters,
            shards=shards,
            backend=backend,
        )
    finally:
        if scenario is not None:
            scenario.close()


def run_discovery_suite(
    populations: Sequence[int] = DEFAULT_POPULATIONS,
    ops: Optional[int] = None,
    seed: int = 3,
    neighbor_set_size: int = 5,
    shard_counts: Optional[Sequence[Optional[int]]] = None,
    backends: Sequence[str] = ("inline",),
    arrival_batch_sizes: Sequence[int] = DEFAULT_ARRIVAL_BATCH_SIZES,
    recovery_ops: Optional[int] = None,
    reader_counts: Sequence[int] = DEFAULT_READER_COUNTS,
    protocol_loss_rates: Optional[Sequence[float]] = None,
) -> PerfReport:
    """Run every discovery workload at every (population, backend, shards).

    ``ops`` overrides each workload's default operation count (useful for
    smoke runs in CI); ``None`` keeps the defaults (the ``build`` workload
    ignores it either way).  ``shard_counts=None`` runs the classic
    single-server cells; a sequence like ``(1, 4)`` runs each workload on a
    :class:`ShardedManagementServer` at every listed shard count instead,
    tagging each record with its ``shards`` value.  A ``None`` *entry*
    (CLI spelling ``--shards none,2``) mixes the classic single-server
    cells into the same report, so one run can record a complete baseline:
    classic cells plus sharded cells across every backend.  ``backends``
    multiplies the sharded cells along the backend axis; remote backends
    (:data:`REMOTE_BACKENDS`) only exist sharded, so they skip ``None``
    shard entries (and require at least one real count).  Sampling stays a
    pure function of ``(seed, workload, population)``, so adding either
    dimension never changes what existing cells measure.

    For every remote backend among ``backends`` the suite also runs
    :func:`run_recovery_workload` once per population (it needs a real
    worker/connection to restart, so it is remote-only and single-shard);
    ``recovery_ops`` overrides its churn-cycle count independently of
    ``ops`` because replay cost scales with journal length, not query
    count.

    Inline cells additionally run :func:`run_serving_workload` — one
    ``serving`` record per entry in ``reader_counts`` (the
    concurrent-clients dimension).  The snapshot read path is identical
    wherever the shards live, so remote backends skip it.

    ``protocol_loss_rates`` (``--protocol-loss`` on the CLI) additionally
    runs :func:`run_protocol_workload` once per population — one
    ``protocol`` cell per loss rate, tagged with the schema-v9 ``loss``
    dimension.  The protocol cells measure the event-sim wire, not the
    plane backends, so they run once per population regardless of the
    shards/backend axes (``shards=None``, ``backend="inline"``) and are
    skipped entirely when the argument is ``None``.
    """
    for backend in backends:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    remote_backends = [backend for backend in backends if backend in REMOTE_BACKENDS]
    real_counts = [count for count in (shard_counts or []) if count is not None]
    if remote_backends and not real_counts:
        raise ValueError(
            f"backends including {remote_backends} require at least one real "
            "shard count (remote shards only exist on a sharded plane)"
        )
    report = PerfReport(
        metadata={
            "suite": "discovery",
            "populations": list(populations),
            "neighbor_set_size": neighbor_set_size,
            "seed": seed,
            "shard_counts": list(shard_counts) if shard_counts is not None else None,
            "backends": list(backends),
            "arrival_batch_sizes": list(arrival_batch_sizes),
            "recovery_ops": recovery_ops,
            "reader_counts": list(reader_counts),
            "protocol_loss_rates": (
                list(protocol_loss_rates) if protocol_loss_rates is not None else None
            ),
        }
    )
    overrides = {} if ops is None else {"ops": ops}
    shard_values: Sequence[Optional[int]] = (
        [None] if shard_counts is None else list(shard_counts)
    )
    for population in populations:
        # One map per population, shared by every backend/shard build cell
        # (it is a pure function of (population, seed); generation happens
        # outside the build cells' timed phase either way).
        build_router_map: Optional[RouterMap] = None
        for backend in backends:
            for shards in shard_values:
                if shards is None and backend in REMOTE_BACKENDS:
                    # Remote shards only exist on a sharded plane; the
                    # classic single-server cell is backend-independent and
                    # already covered by the inline pass.
                    continue
                for runner in (
                    run_insert_workload,
                    run_query_workload,
                    run_departure_workload,
                    run_churn_workload,
                ):
                    report.add(
                        runner(
                            population,
                            seed=seed,
                            neighbor_set_size=neighbor_set_size,
                            shards=shards,
                            backend=backend,
                            **overrides,
                        )
                    )
                for batch_size in arrival_batch_sizes:
                    report.add(
                        run_arrival_workload(
                            population,
                            seed=seed,
                            neighbor_set_size=neighbor_set_size,
                            shards=shards,
                            backend=backend,
                            batch_size=batch_size,
                            **overrides,
                        )
                    )
                if build_router_map is None:
                    build_router_map = generate_router_map(build_map_config(population, seed))
                report.add(
                    run_build_workload(
                        population,
                        seed=seed,
                        neighbor_set_size=neighbor_set_size,
                        shards=shards,
                        backend=backend,
                        router_map=build_router_map,
                    )
                )
                if backend == "inline":
                    for record in run_serving_workload(
                        population,
                        seed=seed,
                        neighbor_set_size=neighbor_set_size,
                        shards=shards,
                        backend=backend,
                        reader_counts=reader_counts,
                        **overrides,
                    ):
                        report.add(record)
        for backend_name in remote_backends:
            recovery_overrides = (
                overrides if recovery_ops is None else {"ops": recovery_ops}
            )
            for record in run_recovery_workload(
                population,
                seed=seed,
                neighbor_set_size=neighbor_set_size,
                backend_name=backend_name,
                **recovery_overrides,
            ):
                report.add(record)
        if protocol_loss_rates is not None:
            for record in run_protocol_workload(
                population,
                seed=seed,
                neighbor_set_size=neighbor_set_size,
                loss_rates=protocol_loss_rates,
            ):
                report.add(record)
    return report
