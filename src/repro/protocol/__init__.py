"""Message-level discovery protocol on the event sim (lossy-wire realism).

The management plane elsewhere in this repo is driven by *function calls*:
a registration happens because some harness invoked ``register_peer``.
Every deployed discovery daemon instead lives on a lossy wire — periodic
UDP beacons, reply-on-hear acks, timeout-driven peer expiry, trusted /
banned peer lists (SNIPPETS.md Snippets 1–2) — and the paper never
measured how its tree-based scheme degrades when its own control messages
are lost, duplicated or late.  This package closes that gap:

* :class:`~repro.protocol.messages.Beacon` /
  :class:`~repro.protocol.messages.BeaconAck` — the wire vocabulary:
  sequence-numbered, path-carrying beacons and their acks;
* :class:`~repro.protocol.peer.BeaconingPeer` — the daemon side: periodic
  beacons, ack-driven retransmission with jittered exponential backoff
  under one simulated-time :class:`~repro.core.budget.DeadlineBudget` per
  round;
* :class:`~repro.protocol.host.ProtocolManagementHost` — the plane side:
  at-least-once dedup by beacon sequence number, register/refresh on
  hear, TTL expiry of peers that stop beaconing, and a quarantine list
  for malformed / forged-path senders;
* :class:`~repro.protocol.simulation.ProtocolSimulation` — a deterministic
  driver wiring peers, host and a
  :class:`~repro.sim.network.SimulatedNetwork` (loss / duplication /
  reordering knobs, or a scripted
  :class:`~repro.sim.network.NetworkFaultPlan` speaking the same
  :class:`~repro.core.chaos.Fault` vocabulary as the chaos shard
  backends) and reporting discovery latency, staleness and maintenance
  traffic.
"""

from .messages import Beacon, BeaconAck, wire_size
from .host import HostStats, ProtocolManagementHost
from .peer import BeaconConfig, BeaconingPeer, PeerStats
from .simulation import (
    ProtocolMetrics,
    ProtocolSimulation,
    topology_from_paths,
)

__all__ = [
    "Beacon",
    "BeaconAck",
    "BeaconConfig",
    "BeaconingPeer",
    "HostStats",
    "PeerStats",
    "ProtocolManagementHost",
    "ProtocolMetrics",
    "ProtocolSimulation",
    "topology_from_paths",
    "wire_size",
]
