"""The management plane behind a lossy wire.

:class:`ProtocolManagementHost` is the receive side of the beaconing
protocol: it attaches to a :class:`~repro.sim.network.SimulatedNetwork`
and turns heard :class:`~repro.protocol.messages.Beacon` messages into
management-plane state, the way a deployed discovery daemon turns UDP
datagrams into peer-table entries.  Four behaviours make the plane safe
under at-least-once delivery on an untrusted wire:

* **dedup** — beacons carry per-peer sequence numbers; a sequence number
  already applied is re-acked but never touches the plane again, so a
  duplicated beacon cannot double-register (the plane would otherwise
  unregister + reinsert, churning ``membership_generation`` and every
  cached neighbour list that references the peer);
* **ack after apply** — the ack for sequence ``n`` is sent only after
  the plane has applied beacon ``n``, so a peer that heard an ack knows
  it is registered;
* **expiry** — a periodic sweep unregisters peers whose last beacon is
  older than the TTL (the silent-failure detector of the paper's setting:
  no unregister message is ever required, stopping beaconing is leaving);
* **quarantine** — a malformed message (not a beacon) or a forged beacon
  (claiming a peer id that does not match the sender, or carrying a path
  recorded for someone else) bans the sender: it is unregistered and its
  future traffic is dropped before any plane work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..core.path import PeerId, RouterPath
from ..sim.engine import Engine
from ..sim.events import TimerHandle
from ..sim.network import HostId, SimulatedNetwork
from .messages import Beacon, BeaconAck

ExpireHook = Callable[[PeerId, float], None]


@dataclass
class HostStats:
    """Receive-side protocol counters (one instance per host)."""

    beacons_received: int = 0
    beacons_registered: int = 0
    """Beacons that reached the plane as ``register_peer`` (new/changed path)."""
    beacons_refreshed: int = 0
    """Beacons that only refreshed the TTL (same path, already registered)."""
    duplicate_beacons: int = 0
    """Beacons deduplicated by sequence number (re-acked, no plane work)."""
    acks_sent: int = 0
    peers_expired: int = 0
    peers_banned: int = 0
    banned_beacons_dropped: int = 0
    malformed_messages: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (experiment tables, perf reports)."""
        return {
            "beacons_received": self.beacons_received,
            "beacons_registered": self.beacons_registered,
            "beacons_refreshed": self.beacons_refreshed,
            "duplicate_beacons": self.duplicate_beacons,
            "acks_sent": self.acks_sent,
            "peers_expired": self.peers_expired,
            "peers_banned": self.peers_banned,
            "banned_beacons_dropped": self.banned_beacons_dropped,
            "malformed_messages": self.malformed_messages,
        }


class ProtocolManagementHost:
    """Management-plane endpoint speaking the beaconing protocol.

    Parameters
    ----------
    host_id:
        Network identity the host attaches under (peers address acks come
        from it).
    engine, network:
        The simulation event loop and wire; the host schedules its expiry
        sweep on ``engine`` and sends acks through ``network``.
    server:
        The live management plane beacons are applied to.  Any
        ``ManagementPlaneBase`` works — single server or sharded plane.
    ttl_ms:
        A peer whose newest beacon is older than this is expired
        (unregistered) by the sweep.
    sweep_interval_ms:
        How often the expiry sweep runs; defaults to ``ttl_ms / 4`` so a
        stale entry outlives its TTL by at most a quarter of it.
    on_expire:
        Optional hook called as ``on_expire(peer_id, now_ms)`` after a
        peer is expired (experiments record staleness with it).
    """

    def __init__(
        self,
        host_id: HostId,
        engine: Engine,
        network: SimulatedNetwork,
        server: Any,
        ttl_ms: float,
        sweep_interval_ms: Optional[float] = None,
        on_expire: Optional[ExpireHook] = None,
    ) -> None:
        if ttl_ms <= 0:
            raise ValueError(f"ttl_ms must be positive, got {ttl_ms}")
        self.host_id = host_id
        self.engine = engine
        self.network = network
        self.server = server
        self.ttl_ms = float(ttl_ms)
        self.sweep_interval_ms = (
            float(sweep_interval_ms) if sweep_interval_ms is not None else self.ttl_ms / 4.0
        )
        if self.sweep_interval_ms <= 0:
            raise ValueError(f"sweep_interval_ms must be positive, got {sweep_interval_ms}")
        self.on_expire = on_expire
        self.stats = HostStats()
        self.banned: Set[HostId] = set()
        # Dedup state survives expiry on purpose: a peer that resumes
        # beaconing after being expired keeps counting its rounds upward, and
        # late retransmits from before the outage must still be recognised.
        self._last_seq: Dict[PeerId, int] = {}
        self._last_heard_ms: Dict[PeerId, float] = {}
        self._applied_paths: Dict[PeerId, RouterPath] = {}
        self._sweep_timer: Optional[TimerHandle] = None

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Schedule the periodic expiry sweep (idempotent)."""
        if self._sweep_timer is None or self._sweep_timer.cancelled:
            self._sweep_timer = self.engine.schedule(
                self.sweep_interval_ms, self._sweep, label=f"sweep:{self.host_id}"
            )

    def stop(self) -> None:
        """Cancel the expiry sweep."""
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()
            self._sweep_timer = None

    # ------------------------------------------------------------------ receive

    def handle_message(self, sender: HostId, message: Any) -> None:
        """Network delivery entry point (``MessageHandler`` protocol)."""
        if sender in self.banned:
            # Quarantined senders never reach the plane — not even their
            # well-formed beacons.
            self.stats.banned_beacons_dropped += 1
            return
        if not isinstance(message, Beacon):
            self.stats.malformed_messages += 1
            self._ban(sender)
            return
        if message.peer_id != sender or message.path.peer_id != message.peer_id:
            # Forged: claiming someone else's identity, or re-announcing a
            # path recorded for a different peer.
            self._ban(sender)
            return
        self._apply_beacon(sender, message)

    def _apply_beacon(self, sender: HostId, beacon: Beacon) -> None:
        self.stats.beacons_received += 1
        peer_id = beacon.peer_id
        last = self._last_seq.get(peer_id)
        if last is not None and beacon.seq <= last:
            # At-least-once duplicate (retransmit, wire duplication, or a
            # reordered late copy).  Re-ack so the sender stops resending,
            # but never touch the plane: dedup is what keeps duplicated
            # beacons from double-registering.
            self.stats.duplicate_beacons += 1
            if beacon.seq == last:
                self._last_heard_ms[peer_id] = self.engine.now
            self._ack(sender, beacon.seq)
            return

        self._last_seq[peer_id] = beacon.seq
        self._last_heard_ms[peer_id] = self.engine.now
        applied = self._applied_paths.get(peer_id)
        if applied == beacon.path and self.server.has_peer(peer_id):
            # Same path re-announced: pure TTL refresh, no plane churn (a
            # re-register would bump membership_generation for nothing).
            self.stats.beacons_refreshed += 1
        else:
            self.server.register_peer(beacon.path)
            self._applied_paths[peer_id] = beacon.path
            self.stats.beacons_registered += 1
        # Ack only after the plane applied the beacon: acked => registered.
        self._ack(sender, beacon.seq)

    def _ack(self, sender: HostId, seq: int) -> None:
        if not self.network.is_attached(sender):
            return
        self.network.send(self.host_id, sender, BeaconAck(peer_id=sender, seq=seq))
        self.stats.acks_sent += 1

    # --------------------------------------------------------------- quarantine

    def _ban(self, sender: HostId) -> None:
        self.banned.add(sender)
        self.stats.peers_banned += 1
        # Quarantine also evicts any state the sender managed to register.
        if self.server.has_peer(sender):
            self.server.unregister_peer(sender)
        self._applied_paths.pop(sender, None)
        self._last_heard_ms.pop(sender, None)

    # ------------------------------------------------------------------- expiry

    def _sweep(self) -> None:
        self.expire_stale()
        self._sweep_timer = self.engine.schedule(
            self.sweep_interval_ms, self._sweep, label=f"sweep:{self.host_id}"
        )

    def expire_stale(self) -> List[PeerId]:
        """Unregister every peer whose newest beacon is older than the TTL.

        Called by the periodic sweep; callable directly from tests and
        experiments.  Returns the expired peer ids (deterministic order).
        """
        now = self.engine.now
        expired = [
            peer_id
            for peer_id, heard in self._last_heard_ms.items()
            if now - heard > self.ttl_ms
        ]
        for peer_id in expired:
            del self._last_heard_ms[peer_id]
            self._applied_paths.pop(peer_id, None)
            if self.server.has_peer(peer_id):
                self.server.unregister_peer(peer_id)
            self.stats.peers_expired += 1
            if self.on_expire is not None:
                self.on_expire(peer_id, now)
        return expired

    # -------------------------------------------------------------------- views

    def is_live(self, peer_id: PeerId) -> bool:
        """True if the peer is currently registered via the protocol."""
        return peer_id in self._last_heard_ms and self.server.has_peer(peer_id)

    def last_heard(self, peer_id: PeerId) -> Optional[float]:
        """Simulated time of the peer's newest applied/refreshed beacon."""
        return self._last_heard_ms.get(peer_id)

    def __repr__(self) -> str:
        return (
            f"ProtocolManagementHost(host_id={self.host_id!r}, "
            f"live={len(self._last_heard_ms)}, banned={len(self.banned)})"
        )
