"""Wire vocabulary of the beaconing discovery protocol.

Two message types cross the simulated network:

* :class:`Beacon` — peer → management host.  Carries the peer's current
  router path and a per-peer monotonically increasing sequence number.
  Beacons double as registration (first beacon heard), refresh (same
  path re-announced before the TTL runs out) and update (new path after
  a handover).  Retransmissions of an unacked round reuse the round's
  sequence number, which is what lets the receiver deduplicate
  at-least-once delivery.
* :class:`BeaconAck` — host → peer.  Echoes the sequence number so the
  sender can stop retransmitting that round.  An ack is only sent after
  the plane has applied the beacon, so "acked" implies "registered".

Messages are frozen dataclasses, matching :mod:`repro.core.protocol`.
Their lowercased class names (``beacon`` / ``beaconack``) are the op
names a :class:`~repro.sim.network.NetworkFaultPlan` targets, via
:func:`repro.sim.network.message_op_name`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.path import PeerId, RouterPath

# Synthetic wire-size model for maintenance-traffic accounting.  The paper's
# control messages are tiny UDP datagrams: a fixed header plus one entry per
# path hop for beacons.  Absolute bytes matter less than how traffic scales
# with beacon rate and path length, so a simple affine model is enough.
_HEADER_BYTES = 28  # IP + UDP headers
_BEACON_BASE_BYTES = 24  # peer id, landmark id, seq, flags
_BEACON_HOP_BYTES = 8  # one router id per hop
_ACK_BYTES = 12  # peer id echo + seq


@dataclass(frozen=True)
class Beacon:
    """Peer → host: announce or refresh the peer's path registration."""

    peer_id: PeerId
    seq: int
    path: RouterPath

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"beacon sequence numbers start at 0, got {self.seq}")


@dataclass(frozen=True)
class BeaconAck:
    """Host → peer: the beacon with this sequence number has been applied."""

    peer_id: PeerId
    seq: int


def wire_size(message: object) -> int:
    """Synthetic on-the-wire size in bytes of one protocol message.

    Deterministic and cheap; used for the maintenance-traffic counters
    (bytes per peer per second), never for delivery decisions.
    """
    if isinstance(message, Beacon):
        return _HEADER_BYTES + _BEACON_BASE_BYTES + _BEACON_HOP_BYTES * message.path.hop_count
    if isinstance(message, BeaconAck):
        return _HEADER_BYTES + _ACK_BYTES
    raise TypeError(f"not a protocol message: {message!r}")
