"""The daemon side of the beaconing protocol.

A :class:`BeaconingPeer` keeps itself registered the only way a real
discovery daemon can: by saying so, periodically, over a wire that loses
messages.  Every ``beacon_interval_ms`` it starts a *round* — a new
sequence number announcing its current router path — and retransmits the
same sequence number with jittered exponential backoff until the
management host acks it or the round's
:class:`~repro.core.budget.DeadlineBudget` runs out.  The budget runs on
*simulated* time (``clock=lambda: engine.now``; the budget is
unit-agnostic, so its "seconds" are simulated milliseconds here), which
gives retransmissions the same single-deadline semantics the socket
backends use for multi-phase round trips: however the retries are
distributed, one round never outlives one budget.

Rounds supersede each other — when the next interval fires, an unacked
round is abandoned rather than retried forever, because the fresh beacon
carries strictly newer information.  That mirrors beacon protocols in
deployed overlays and keeps worst-case control traffic bounded under
100% loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional

from .._validation import coerce_seed
from ..core.budget import DeadlineBudget
from ..core.path import PeerId, RouterPath
from ..sim.engine import Engine
from ..sim.events import TimerHandle
from ..sim.network import HostId, SimulatedNetwork
from .messages import Beacon, BeaconAck


@dataclass(frozen=True)
class BeaconConfig:
    """Timing knobs of one beaconing peer.

    Attributes
    ----------
    beacon_interval_ms:
        Cadence of new rounds (fresh sequence numbers).
    ack_timeout_ms:
        Wait after each (re)transmission before retrying.
    backoff_factor:
        Multiplier applied to the timeout per retry within a round.
    max_backoff_ms:
        Ceiling on the per-retry timeout.
    jitter_fraction:
        Each retry timeout is stretched by ``uniform(0, jitter_fraction)``
        of itself (deterministic per peer seed) so a beacon storm after a
        partition heals spreads out instead of synchronising.
    round_budget_ms:
        Total retransmission budget per round; defaults to
        ``beacon_interval_ms`` (a round never outlives its interval).
    """

    beacon_interval_ms: float = 1000.0
    ack_timeout_ms: float = 200.0
    backoff_factor: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter_fraction: float = 0.1
    round_budget_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.beacon_interval_ms <= 0:
            raise ValueError(f"beacon_interval_ms must be positive, got {self.beacon_interval_ms}")
        if self.ack_timeout_ms <= 0:
            raise ValueError(f"ack_timeout_ms must be positive, got {self.ack_timeout_ms}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_backoff_ms < self.ack_timeout_ms:
            raise ValueError(
                f"max_backoff_ms ({self.max_backoff_ms}) must be >= "
                f"ack_timeout_ms ({self.ack_timeout_ms})"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}")
        if self.round_budget_ms is not None and self.round_budget_ms <= 0:
            raise ValueError(f"round_budget_ms must be positive, got {self.round_budget_ms}")

    @property
    def budget_ms(self) -> float:
        """Effective per-round retransmission budget."""
        return self.round_budget_ms if self.round_budget_ms is not None else self.beacon_interval_ms


@dataclass
class PeerStats:
    """Send-side protocol counters and latency samples."""

    beacons_sent: int = 0
    retransmissions: int = 0
    acks_received: int = 0
    duplicate_acks: int = 0
    rounds_started: int = 0
    rounds_acked: int = 0
    rounds_abandoned: int = 0
    path_updates: int = 0
    first_beacon_at_ms: Optional[float] = None
    first_ack_at_ms: Optional[float] = None
    update_latencies_ms: List[float] = field(default_factory=list)
    """Per path update: time from ``update_path`` to the ack that applied it."""

    @property
    def discovery_latency_ms(self) -> Optional[float]:
        """First beacon sent to first ack heard (None until discovered)."""
        if self.first_beacon_at_ms is None or self.first_ack_at_ms is None:
            return None
        return self.first_ack_at_ms - self.first_beacon_at_ms


class BeaconingPeer:
    """Periodic-beacon endpoint registering through the simulated wire.

    The caller attaches the peer to the network at its access router
    (``network.attach_host(peer_id, path.access_router, peer)``) and then
    calls :meth:`start`; the peer only sends and receives from there on.
    """

    def __init__(
        self,
        peer_id: PeerId,
        engine: Engine,
        network: SimulatedNetwork,
        host_id: HostId,
        path: RouterPath,
        config: Optional[BeaconConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        if path.peer_id != peer_id:
            raise ValueError(
                f"peer {peer_id!r} cannot beacon a path recorded for {path.peer_id!r}"
            )
        self.peer_id = peer_id
        self.engine = engine
        self.network = network
        self.host_id = host_id
        self.path = path
        self.config = config if config is not None else BeaconConfig()
        self._rng = random.Random(coerce_seed(seed))
        self.stats = PeerStats()
        self._running = False
        self._seq = -1
        self._round_open = False
        self._attempts = 0
        self._budget: Optional[DeadlineBudget] = None
        self._retry_timer: Optional[TimerHandle] = None
        self._interval_timer: Optional[TimerHandle] = None
        self._pending_update_at: Optional[float] = None

    # ---------------------------------------------------------------- lifecycle

    def start(self, initial_delay_ms: float = 0.0) -> None:
        """Begin beaconing ``initial_delay_ms`` from now."""
        if initial_delay_ms < 0:
            raise ValueError(f"initial_delay_ms must be >= 0, got {initial_delay_ms}")
        self._running = True
        self._interval_timer = self.engine.schedule(
            initial_delay_ms, self._begin_round, label=f"beacon-start:{self.peer_id}"
        )

    def stop(self) -> None:
        """Stop beaconing (the host will expire us after the TTL)."""
        self._running = False
        self._cancel(self._retry_timer)
        self._cancel(self._interval_timer)
        self._retry_timer = None
        self._interval_timer = None

    @property
    def running(self) -> bool:
        """True while the peer is beaconing."""
        return self._running

    @property
    def current_seq(self) -> int:
        """Sequence number of the newest round (-1 before the first)."""
        return self._seq

    # ------------------------------------------------------------------- update

    def update_path(self, path: RouterPath, beacon_now: bool = True) -> None:
        """Adopt a new router path (mobility handover).

        The next beacon carries the new path; with ``beacon_now`` (the
        default) a fresh round starts immediately instead of waiting out
        the current interval.  The time from this call to the ack of the
        first round carrying the new path is recorded in
        ``stats.update_latencies_ms`` — the protocol-level *staleness* of
        the handover.
        """
        if path.peer_id != self.peer_id:
            raise ValueError(
                f"peer {self.peer_id!r} cannot adopt a path recorded for {path.peer_id!r}"
            )
        self.path = path
        self.stats.path_updates += 1
        self._pending_update_at = self.engine.now
        if beacon_now and self._running:
            self._cancel(self._interval_timer)
            self._begin_round()

    # ------------------------------------------------------------------- rounds

    @staticmethod
    def _cancel(timer: Optional[TimerHandle]) -> None:
        if timer is not None:
            timer.cancel()

    def _begin_round(self) -> None:
        if not self._running:
            return
        if self._round_open:
            # Superseded: the new round carries strictly newer information,
            # so stop retrying the old sequence number.
            self.stats.rounds_abandoned += 1
        self._cancel(self._retry_timer)
        self._seq += 1
        self._round_open = True
        self._attempts = 0
        self.stats.rounds_started += 1
        # Simulated-time deadline budget: every retry in this round draws
        # its timeout from the same deadline (units are engine ms).
        self._budget = DeadlineBudget(self.config.budget_ms, clock=lambda: self.engine.now)
        self._interval_timer = self.engine.schedule(
            self.config.beacon_interval_ms, self._begin_round, label=f"beacon:{self.peer_id}"
        )
        self._transmit()

    def _transmit(self) -> None:
        if not self._running or not self._round_open:
            return
        if self.stats.first_beacon_at_ms is None:
            self.stats.first_beacon_at_ms = self.engine.now
        if self._attempts > 0:
            self.stats.retransmissions += 1
        self._attempts += 1
        self.stats.beacons_sent += 1
        self.network.send(
            self.peer_id, self.host_id, Beacon(peer_id=self.peer_id, seq=self._seq, path=self.path)
        )
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        assert self._budget is not None
        timeout = min(
            self.config.ack_timeout_ms * (self.config.backoff_factor ** (self._attempts - 1)),
            self.config.max_backoff_ms,
        )
        if self.config.jitter_fraction > 0:
            timeout *= 1.0 + self._rng.uniform(0.0, self.config.jitter_fraction)
        remaining = self._budget.remaining()
        if remaining <= 0:
            self._give_up()
            return
        delay = min(timeout, remaining)
        self._retry_timer = self.engine.schedule(
            delay, self._retry, label=f"beacon-retry:{self.peer_id}"
        )

    def _retry(self) -> None:
        if not self._running or not self._round_open:
            return
        assert self._budget is not None
        if self._budget.expired:
            self._give_up()
            return
        self._transmit()

    def _give_up(self) -> None:
        # Budget exhausted before an ack: abandon the round; the next
        # interval's beacon (new seq) takes over.
        self._round_open = False
        self.stats.rounds_abandoned += 1

    # ------------------------------------------------------------------ receive

    def handle_message(self, sender: HostId, message: Any) -> None:
        """Network delivery entry point (``MessageHandler`` protocol)."""
        if not isinstance(message, BeaconAck):
            return
        if not self._round_open or message.seq != self._seq:
            # Ack for a superseded round, or a wire duplicate of one we
            # already consumed — both harmless.
            self.stats.duplicate_acks += 1
            return
        self._round_open = False
        self._cancel(self._retry_timer)
        self._retry_timer = None
        self.stats.acks_received += 1
        self.stats.rounds_acked += 1
        if self.stats.first_ack_at_ms is None:
            self.stats.first_ack_at_ms = self.engine.now
        if self._pending_update_at is not None:
            self.stats.update_latencies_ms.append(self.engine.now - self._pending_update_at)
            self._pending_update_at = None

    def __repr__(self) -> str:
        return (
            f"BeaconingPeer(peer_id={self.peer_id!r}, seq={self._seq}, "
            f"running={self._running})"
        )
