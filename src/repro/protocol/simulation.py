"""Deterministic driver wiring peers, plane and wire together.

:class:`ProtocolSimulation` is the harness every consumer of the
protocol layer shares — the oracle tests, the lossy-wire experiments
and the ``protocol`` perf workload.  Given a set of
:class:`~repro.core.path.RouterPath` (the same synthetic paths the perf
suite feeds the plane directly), it builds the router topology those
paths imply, stands up a :class:`~repro.sim.network.SimulatedNetwork`
with the requested impairments, attaches one
:class:`~repro.protocol.peer.BeaconingPeer` per path plus a
:class:`~repro.protocol.host.ProtocolManagementHost` wrapping the
management plane, runs the event engine for a scripted duration and
reports :class:`ProtocolMetrics` — discovery latency, staleness,
maintenance traffic and the full counter set.  Same seed, same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.management_server import ManagementServer
from ..core.path import PeerId, RouterPath
from ..metrics.latency_stats import DelaySummary
from ..routing.distance_engine import HopDistanceEngine
from ..sim.engine import Engine
from ..sim.network import NetworkFaultPlan, SimulatedNetwork
from ..sim.rng import derive_seed
from ..topology.graph import Graph
from .host import ProtocolManagementHost
from .messages import wire_size
from .peer import BeaconConfig, BeaconingPeer

DEFAULT_HOP_LATENCY_MS = 5.0
MANAGEMENT_HOST_ID = "mgmt-host"


def topology_from_paths(
    paths: Iterable[RouterPath], hop_latency_ms: float = DEFAULT_HOP_LATENCY_MS
) -> Graph:
    """Router topology implied by a set of peer-to-landmark paths.

    Every consecutive router pair on every path becomes an edge with a
    uniform ``latency`` weight, so the network's one-way delay between a
    peer and the management host is proportional to the peer's hop count
    — the same distance model the plane estimates with.  The caller is
    responsible for the paths forming one connected component (the
    synthetic populations all traverse a shared core).
    """
    if hop_latency_ms <= 0:
        raise ValueError(f"hop_latency_ms must be positive, got {hop_latency_ms}")
    graph = Graph(name="protocol-topology")
    for path in paths:
        for router in path.routers:
            if not graph.has_node(router):
                graph.add_node(router)
        for u, v in zip(path.routers, path.routers[1:]):
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, latency=hop_latency_ms)
    return graph


def _summary(samples: Sequence[float]) -> Optional[DelaySummary]:
    return DelaySummary.from_samples(samples) if samples else None


@dataclass
class ProtocolMetrics:
    """One protocol-simulation run, summarised.

    All latencies are simulated milliseconds; traffic counters cover the
    whole run (beacons *and* acks, including dropped and duplicated
    copies — everything that crossed the wire).
    """

    duration_ms: float
    peers: int
    discovered_peers: int
    live_peers: int
    messages_sent: int
    maintenance_bytes: int
    beacons_sent: int
    retransmissions: int
    dropped_messages: int
    duplicated_messages: int
    reordered_messages: int
    discovery_latency: Optional[DelaySummary]
    staleness: Optional[DelaySummary]
    host_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def messages_per_sec(self) -> float:
        """Wire messages per simulated second."""
        if self.duration_ms <= 0:
            return 0.0
        return self.messages_sent / (self.duration_ms / 1000.0)

    @property
    def maintenance_bytes_per_peer_s(self) -> float:
        """Maintenance-traffic bytes per peer per simulated second."""
        if self.duration_ms <= 0 or self.peers == 0:
            return 0.0
        return self.maintenance_bytes / self.peers / (self.duration_ms / 1000.0)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict for experiment tables and perf counters."""
        return {
            "duration_ms": self.duration_ms,
            "peers": self.peers,
            "discovered_peers": self.discovered_peers,
            "live_peers": self.live_peers,
            "messages_sent": self.messages_sent,
            "messages_per_sec": round(self.messages_per_sec, 3),
            "maintenance_bytes": self.maintenance_bytes,
            "maintenance_bytes_per_peer_s": round(self.maintenance_bytes_per_peer_s, 3),
            "beacons_sent": self.beacons_sent,
            "retransmissions": self.retransmissions,
            "dropped_messages": self.dropped_messages,
            "duplicated_messages": self.duplicated_messages,
            "reordered_messages": self.reordered_messages,
            "discovery_p50_ms": self.discovery_latency.median if self.discovery_latency else None,
            "discovery_p99_ms": self.discovery_latency.p99 if self.discovery_latency else None,
            "staleness_p50_ms": self.staleness.median if self.staleness else None,
            "staleness_p99_ms": self.staleness.p99 if self.staleness else None,
            **self.host_counters,
        }


class ProtocolSimulation:
    """Everything needed to run the beaconing protocol over a lossy wire.

    Parameters
    ----------
    paths:
        One :class:`RouterPath` per peer; the router topology is derived
        from them (:func:`topology_from_paths`).
    server:
        Management plane to wrap; by default a fresh
        :class:`ManagementServer` with every landmark appearing in
        ``paths`` registered at its landmark-side router.
    beacon_config:
        Shared :class:`BeaconConfig` for every peer.
    ttl_ms:
        Host-side expiry TTL; defaults to ``3 × beacon_interval`` (a peer
        survives two consecutive lost rounds before it is expired).
    start_times_ms:
        Per-peer beaconing start times (aligned with ``paths``); defaults
        to deterministically staggering all starts across one beacon
        interval, which is how real daemons desynchronise.
    loss_probability / duplicate_probability / reorder_probability /
    jitter_ms / fault_plan:
        Passed through to :class:`SimulatedNetwork`.
    seed:
        Master seed; the network and every peer derive their own streams
        from it.
    """

    def __init__(
        self,
        paths: Sequence[RouterPath],
        server: Optional[Any] = None,
        beacon_config: Optional[BeaconConfig] = None,
        ttl_ms: Optional[float] = None,
        start_times_ms: Optional[Sequence[float]] = None,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        reorder_probability: float = 0.0,
        jitter_ms: float = 0.0,
        fault_plan: Optional[NetworkFaultPlan] = None,
        seed: int = 0,
        hop_latency_ms: float = DEFAULT_HOP_LATENCY_MS,
        neighbor_set_size: int = 5,
    ) -> None:
        if not paths:
            raise ValueError("a protocol simulation needs at least one peer path")
        if start_times_ms is not None and len(start_times_ms) != len(paths):
            raise ValueError(
                f"start_times_ms has {len(start_times_ms)} entries for {len(paths)} paths"
            )
        self.paths = list(paths)
        self.config = beacon_config if beacon_config is not None else BeaconConfig()
        self.ttl_ms = float(ttl_ms) if ttl_ms is not None else 3.0 * self.config.beacon_interval_ms
        self.engine = Engine()
        self.graph = topology_from_paths(self.paths, hop_latency_ms=hop_latency_ms)
        # One shared distance engine, pre-warmed at the management host's
        # router: latency is symmetric on the undirected topology, so the
        # network answers every peer<->host lookup from this one vector
        # instead of running a Dijkstra per peer access router.
        distances = HopDistanceEngine(self.graph)
        distances.warm_latencies([self.paths[0].landmark_router])
        self.network = SimulatedNetwork(
            self.engine,
            self.graph,
            distance_engine=distances,
            jitter_ms=jitter_ms,
            loss_probability=loss_probability,
            duplicate_probability=duplicate_probability,
            reorder_probability=reorder_probability,
            seed=derive_seed(seed, "protocol-network"),
            fault_plan=fault_plan,
        )
        if server is None:
            server = ManagementServer(neighbor_set_size=neighbor_set_size)
            for path in self.paths:
                if path.landmark_id not in server.landmarks():
                    server.register_landmark(path.landmark_id, path.landmark_router)
        self.server = server
        # The management host lives at the landmark-side router of the
        # first path — the "server sits next to the landmark" picture the
        # paper draws.
        self.host = ProtocolManagementHost(
            MANAGEMENT_HOST_ID,
            self.engine,
            self.network,
            self.server,
            ttl_ms=self.ttl_ms,
        )
        self.network.attach_host(MANAGEMENT_HOST_ID, self.paths[0].landmark_router, self.host)

        if start_times_ms is None:
            interval = self.config.beacon_interval_ms
            start_times_ms = [
                interval * index / max(1, len(self.paths)) for index in range(len(self.paths))
            ]
        self.start_times_ms = [float(value) for value in start_times_ms]
        self.peers: Dict[PeerId, BeaconingPeer] = {}
        for index, path in enumerate(self.paths):
            peer = BeaconingPeer(
                path.peer_id,
                self.engine,
                self.network,
                MANAGEMENT_HOST_ID,
                path,
                config=self.config,
                seed=derive_seed(seed, f"protocol-peer-{index}"),
            )
            self.peers[path.peer_id] = peer
            self.network.attach_host(path.peer_id, path.access_router, peer)

    # ---------------------------------------------------------------- scripting

    def schedule_path_update(
        self, peer_id: PeerId, at_ms: float, path: RouterPath, beacon_now: bool = True
    ) -> None:
        """Script a mobility handover: ``peer_id`` adopts ``path`` at ``at_ms``.

        The new path's routers must already exist in the topology (pass
        every post-handover path to the constructor, or keep handovers
        within the derived topology).
        """
        peer = self.peers[peer_id]

        def apply() -> None:
            if self.network.is_attached(peer_id):
                # Re-attach at the new access router: a new epoch, so
                # messages in flight to the old attachment are dropped.
                self.network.attach_host(peer_id, path.access_router, peer)
            peer.update_path(path, beacon_now=beacon_now)

        self.engine.schedule_at(at_ms, apply, label=f"handover:{peer_id}")

    def schedule_stop(self, peer_id: PeerId, at_ms: float, detach: bool = True) -> None:
        """Script a silent failure: the peer stops beaconing at ``at_ms``."""
        peer = self.peers[peer_id]

        def apply() -> None:
            peer.stop()
            if detach:
                self.network.detach_host(peer_id)

        self.engine.schedule_at(at_ms, apply, label=f"stop:{peer_id}")

    # ---------------------------------------------------------------------- run

    def run(self, duration_ms: float) -> ProtocolMetrics:
        """Start everything, run the engine to ``duration_ms``, summarise."""
        if duration_ms <= 0:
            raise ValueError(f"duration_ms must be positive, got {duration_ms}")
        self.host.start()
        for path, start_at in zip(self.paths, self.start_times_ms):
            self.peers[path.peer_id].start(initial_delay_ms=start_at)
        self.engine.run(until=duration_ms)
        return self.collect_metrics(duration_ms)

    def collect_metrics(self, duration_ms: float) -> ProtocolMetrics:
        """Summarise the run so far (callable mid-run from experiments)."""
        discovery = [
            peer.stats.discovery_latency_ms
            for peer in self.peers.values()
            if peer.stats.discovery_latency_ms is not None
        ]
        staleness = [
            sample for peer in self.peers.values() for sample in peer.stats.update_latencies_ms
        ]
        return ProtocolMetrics(
            duration_ms=duration_ms,
            peers=len(self.peers),
            discovered_peers=len(discovery),
            live_peers=sum(
                1 for peer_id in self.peers if self.host.is_live(peer_id)
            ),
            messages_sent=len(self.network.deliveries),
            maintenance_bytes=sum(
                wire_size(record.message) for record in self.network.deliveries
            ),
            beacons_sent=sum(peer.stats.beacons_sent for peer in self.peers.values()),
            retransmissions=sum(peer.stats.retransmissions for peer in self.peers.values()),
            dropped_messages=self.network.dropped_messages,
            duplicated_messages=self.network.duplicated_messages,
            reordered_messages=self.network.reordered_messages,
            discovery_latency=_summary(discovery),
            staleness=_summary(staleness),
            host_counters=self.host.stats.as_dict(),
        )

    def close(self) -> None:
        """Release the plane if this simulation owns remote resources."""
        close = getattr(self.server, "close", None)
        if callable(close):
            close()
