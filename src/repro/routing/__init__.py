"""Routing substrate: shortest paths, forwarding tables, simulated traceroute.

The traceroute path a peer records towards its landmark is the only network
measurement the paper's system relies on; everything in this package exists
to produce those paths faithfully over the synthetic router maps.
"""

from .shortest_path import (
    AllPairsHopDistances,
    ShortestPathTree,
    bfs_shortest_paths,
    dijkstra_shortest_paths,
    hop_distance,
    latency_distance,
    reconstruct_path,
    shortest_path_tree,
)
from .distance_engine import CsrTopology, HopDistanceEngine
from .route_table import RouteTable, build_route_table
from .traceroute import (
    TracerouteConfig,
    TracerouteHop,
    TracerouteResult,
    TracerouteSimulator,
)
from .path_inference import (
    GAP_DROP,
    GAP_PLACEHOLDER,
    GAP_POLICIES,
    GAP_TRUNCATE,
    CleanedPath,
    PathQualityReport,
    assess_paths,
    branch_router,
    clean_traceroute,
    common_prefix_length,
)

__all__ = [
    "AllPairsHopDistances",
    "CsrTopology",
    "HopDistanceEngine",
    "ShortestPathTree",
    "bfs_shortest_paths",
    "dijkstra_shortest_paths",
    "hop_distance",
    "latency_distance",
    "reconstruct_path",
    "shortest_path_tree",
    "RouteTable",
    "build_route_table",
    "TracerouteConfig",
    "TracerouteHop",
    "TracerouteResult",
    "TracerouteSimulator",
    "GAP_DROP",
    "GAP_PLACEHOLDER",
    "GAP_POLICIES",
    "GAP_TRUNCATE",
    "CleanedPath",
    "PathQualityReport",
    "assess_paths",
    "branch_router",
    "clean_traceroute",
    "common_prefix_length",
]
