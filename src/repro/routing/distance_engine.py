"""Vectorised hop/latency distance engine over CSR topology snapshots.

Every distance consumer in the repository used to run its own pure-python
per-source BFS/Dijkstra over the dict-of-dicts :class:`~repro.topology.graph.
Graph` — one fresh ``dict`` per node per source.  At paper-scale router maps
(~4 000 routers) and perf-suite populations (12 800 peers) that per-source
dict churn dominates scenario-build wall-clock.  This module replaces it with
a shared engine built around two ideas:

**CSR snapshots** (:class:`CsrTopology`) — the graph is flattened once into
int-indexed compact arrays (``offsets``/``neighbors`` in the classic
compressed-sparse-row layout, plus per-weight-key weight arrays).  Snapshots
are immutable; :class:`Graph` carries a generation counter bumped on every
mutation, and the engine transparently rebuilds its snapshot when the
generation moves.

**Batched level-vector BFS** (:class:`HopDistanceEngine`) — hop distances are
computed as flat ``bytearray`` level-vectors (one byte per node, ``0xFF`` =
unreachable) expanded one shared frontier per level, instead of per-node
dict inserts.  Two structural accelerations make multi-source batches cheap:

* the snapshot separates *leaf* routers (degree-1 nodes hanging off a
  higher-degree neighbour — the stub/access routers peers attach to) from the
  *core* graph.  BFS runs over the core only; leaf distances are filled in
  afterwards with one C-speed gather (:func:`operator.itemgetter`) plus one
  ``bytes.translate`` (+1 per hop);
* a BFS *from* a leaf source is derived from its unique neighbour's vector
  with the same translate trick (``d_leaf(x) = d_neighbor(x) + 1``), so
  warming every peer attachment router costs one BFS per *distinct access
  parent* rather than one per peer.

Results are exactly equal to :func:`~repro.routing.shortest_path.
bfs_shortest_paths` / :func:`~repro.routing.shortest_path.
dijkstra_shortest_paths` for every source, including disconnected graphs —
``tests/routing/test_distance_engine.py`` holds the property-test oracle.
Vectors saturate at 254 hops; rare deeper graphs fall back to exact wide
(machine-int) vectors automatically.

The batched Dijkstra mirrors the reference implementation operation-for-
operation over the snapshot's weight arrays (same relaxation order, same
float addition order), so latency distances and tie-broken parents are
bit-identical, not merely numerically close.
"""

from __future__ import annotations

from array import array
from collections import deque
from heapq import heappop, heappush
from operator import itemgetter
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import NodeNotFoundError, NoRouteError
from ..topology.graph import DEFAULT_WEIGHT_KEY, Graph
from .shortest_path import ShortestPathTree

NodeId = Hashable

#: Byte sentinel marking an unreachable node in a hop level-vector.
UNREACHABLE = 0xFF

#: Largest hop distance the core byte BFS may produce.  One ``+1`` headroom
#: step is reserved below the 0xFF sentinel so the leaf fill / leaf-source
#: derivation stays exact; deeper graphs fall back to wide (machine-int)
#: vectors, where ``-1`` marks unreachable nodes.
MAX_BYTE_HOPS = 253

#: 256-entry translate table adding one hop to every finite byte distance
#: (distances above :data:`MAX_BYTE_HOPS` and the unreachable sentinel map
#: to the sentinel).  Callers must check the vector's finite maximum is at
#: most :data:`MAX_BYTE_HOPS` before applying it.
_PLUS_ONE_HOP = bytes(range(1, 255)) + b"\xff\xff"

HopVector = Union[bytes, array]


class _ByteOverflow(Exception):
    """Internal: a byte-vector BFS exceeded MAX_BYTE_HOPS levels."""


class CsrTopology:
    """Immutable int-indexed CSR snapshot of a :class:`Graph`.

    Nodes are reordered so the *core* (every node that is not a leaf) comes
    first and leaves last; ``core_count`` splits the two ranges.  A leaf is a
    degree-1 node whose single neighbour has degree > 1 — degree-0 nodes and
    mutually-attached degree-1 pairs stay in the core so the reduced
    adjacency remains self-contained.

    Use :meth:`HopDistanceEngine.snapshot` rather than building these
    directly; the engine handles generation-based invalidation.
    """

    __slots__ = (
        "graph",
        "generation",
        "nodes",
        "index",
        "node_count",
        "core_count",
        "core_adjacency",
        "offsets",
        "neighbors",
        "leaf_parents",
        "_leaf_gather",
        "_weights",
        "_weighted_adjacency",
    )

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.generation = graph.generation

        degree = graph.degrees()
        core: List[NodeId] = []
        leaves: List[NodeId] = []
        for node in graph.nodes():
            if degree[node] == 1 and degree[next(graph.iter_neighbors(node))] > 1:
                leaves.append(node)
            else:
                core.append(node)
        self.nodes: List[NodeId] = core + leaves
        self.index: Dict[NodeId, int] = {node: i for i, node in enumerate(self.nodes)}
        self.node_count = len(self.nodes)
        self.core_count = len(core)

        index = self.index
        # Reduced adjacency: core-to-core edges only, original neighbour
        # order preserved (BFS tie-breaking depends on it).
        self.core_adjacency: List[Tuple[int, ...]] = [
            tuple(index[v] for v in graph.iter_neighbors(u) if degree[v] > 1 or index[v] < self.core_count)
            for u in core
        ]
        # Full-graph CSR arrays (all nodes, snapshot order).
        offsets = array("l", [0])
        neighbors = array("l")
        for u in self.nodes:
            neighbors.extend(index[v] for v in graph.iter_neighbors(u))
            offsets.append(len(neighbors))
        self.offsets = offsets
        self.neighbors = neighbors
        # Leaf i (full index core_count + i) hangs off core_adjacency-range
        # parent leaf_parents[i].
        self.leaf_parents = array("l", (index[next(graph.iter_neighbors(u))] for u in leaves))
        self._leaf_gather = itemgetter(*self.leaf_parents) if len(leaves) > 1 else None
        self._weights: Dict[str, array] = {}
        self._weighted_adjacency: Dict[str, List[Tuple[Tuple[int, float], ...]]] = {}

    def is_current(self) -> bool:
        """True while the underlying graph has not mutated since the build."""
        return self.generation == self.graph.generation

    def index_of(self, node: NodeId) -> int:
        """Snapshot index of ``node`` (:class:`NodeNotFoundError` if absent)."""
        try:
            return self.index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def weights(self, weight_key: str = DEFAULT_WEIGHT_KEY) -> array:
        """Per-edge weight array aligned with :attr:`neighbors` (lazy, cached)."""
        cached = self._weights.get(weight_key)
        if cached is None:
            graph = self.graph
            nodes = self.nodes
            offsets = self.offsets
            neighbors = self.neighbors
            cached = array(
                "d",
                (
                    graph.edge_weight(nodes[u], nodes[neighbors[i]], key=weight_key)
                    for u in range(self.node_count)
                    for i in range(offsets[u], offsets[u + 1])
                ),
            )
            self._weights[weight_key] = cached
        return cached

    def weighted_adjacency(self, weight_key: str = DEFAULT_WEIGHT_KEY) -> List[Tuple[Tuple[int, float], ...]]:
        """Per-node ``((neighbor_index, weight), ...)`` tuples (lazy, cached)."""
        cached = self._weighted_adjacency.get(weight_key)
        if cached is None:
            weights = self.weights(weight_key)
            neighbors = self.neighbors
            offsets = self.offsets
            cached = [
                tuple((neighbors[i], weights[i]) for i in range(offsets[u], offsets[u + 1]))
                for u in range(self.node_count)
            ]
            self._weighted_adjacency[weight_key] = cached
        return cached

    def fill_leaves(self, core_vector: bytearray) -> bytearray:
        """Extend a core-range byte vector to full length via the leaf gather."""
        gather = self._leaf_gather
        if gather is not None:
            core_vector += bytearray(gather(core_vector)).translate(_PLUS_ONE_HOP)
        elif len(self.leaf_parents) == 1:
            core_vector.append(_PLUS_ONE_HOP[core_vector[self.leaf_parents[0]]])
        return core_vector


class EngineStats:
    """Algorithmic-work counters, mirroring the perf suite's counter style."""

    __slots__ = ("snapshot_builds", "bfs_runs", "wide_bfs_runs", "derived_vectors", "dijkstra_runs", "vector_cache_hits")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.snapshot_builds = 0
        self.bfs_runs = 0
        self.wide_bfs_runs = 0
        self.derived_vectors = 0
        self.dijkstra_runs = 0
        self.vector_cache_hits = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class HopDistanceEngine:
    """Shared hop/latency distance oracle over one graph.

    One engine per graph is the intended ownership model: a scenario, a
    route table or a landmark set creates (or is handed) an engine and every
    distance it needs flows through the same snapshot and vector caches.
    Mutating the graph invalidates the snapshot on the next call via the
    graph's generation counter.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.stats = EngineStats()
        self._snapshot: Optional[CsrTopology] = None
        # source index -> (vector, max finite hop or None for wide vectors)
        self._hop_vectors: Dict[int, Tuple[HopVector, Optional[int]]] = {}
        # (source index, weight_key) -> latency vector (inf = unreachable)
        self._latency_vectors: Dict[Tuple[int, str], array] = {}

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> CsrTopology:
        """The current CSR snapshot, rebuilt if the graph has mutated."""
        snapshot = self._snapshot
        if snapshot is None or not snapshot.is_current():
            snapshot = CsrTopology(self.graph)
            self._snapshot = snapshot
            self._hop_vectors.clear()
            self._latency_vectors.clear()
            self.stats.snapshot_builds += 1
        return snapshot

    def invalidate(self) -> None:
        """Drop the snapshot and every cached vector (memory release hook)."""
        self._snapshot = None
        self._hop_vectors.clear()
        self._latency_vectors.clear()

    # ------------------------------------------------------------ hop BFS

    def _byte_bfs(self, snapshot: CsrTopology, source: int) -> Tuple[bytearray, int]:
        """Core-graph byte BFS from core index ``source`` (no leaf fill)."""
        adjacency = snapshot.core_adjacency
        dist = bytearray(b"\xff") * snapshot.core_count
        dist[source] = 0
        frontier = [source]
        level = 0
        mark = dist.__setitem__
        while frontier:
            level += 1
            # One shared frontier per level; the setitem-in-filter idiom
            # marks a node the moment it is discovered, so in-level
            # duplicates are excluded without a second pass.
            frontier = [
                v
                for u in frontier
                for v in adjacency[u]
                if dist[v] == 255 and not mark(v, level)
            ]
            # Overflow only when nodes actually landed beyond the cap (the
            # partially-written vector is discarded by the wide fallback).
            if frontier and level > MAX_BYTE_HOPS:
                raise _ByteOverflow
        return dist, level - 1 if level else 0

    def _wide_bfs(self, snapshot: CsrTopology, source: int) -> array:
        """Exact fallback for graphs deeper than MAX_BYTE_HOPS (full graph)."""
        self.stats.wide_bfs_runs += 1
        offsets = snapshot.offsets
        neighbors = snapshot.neighbors
        dist = array("l", [-1]) * snapshot.node_count
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            next_level = dist[u] + 1
            for i in range(offsets[u], offsets[u + 1]):
                v = neighbors[i]
                if dist[v] < 0:
                    dist[v] = next_level
                    queue.append(v)
        return dist

    def _hop_vector(self, source: NodeId) -> Tuple[HopVector, Optional[int]]:
        """The cached (vector, max finite hop) pair for ``source``."""
        snapshot = self.snapshot()
        source_index = snapshot.index_of(source)
        cached = self._hop_vectors.get(source_index)
        if cached is not None:
            self.stats.vector_cache_hits += 1
            return cached
        core_count = snapshot.core_count
        if source_index >= core_count:
            # Leaf source: derive from the unique neighbour's vector.
            parent = snapshot.leaf_parents[source_index - core_count]
            parent_vector, parent_max = self._hop_vector(snapshot.nodes[parent])
            if parent_max is not None and parent_max <= MAX_BYTE_HOPS:
                derived = bytearray(parent_vector).translate(_PLUS_ONE_HOP)
                derived[source_index] = 0
                self.stats.derived_vectors += 1
                entry: Tuple[HopVector, Optional[int]] = (bytes(derived), parent_max + 1)
                self._hop_vectors[source_index] = entry
                return entry
            entry = (self._wide_bfs(snapshot, source_index), None)
            self._hop_vectors[source_index] = entry
            return entry
        self.stats.bfs_runs += 1
        try:
            core_vector, max_hops = self._byte_bfs(snapshot, source_index)
        except _ByteOverflow:
            entry = (self._wide_bfs(snapshot, source_index), None)
        else:
            full = snapshot.fill_leaves(core_vector)
            entry = (bytes(full), max_hops + 1 if snapshot.node_count > core_count else max_hops)
        self._hop_vectors[source_index] = entry
        return entry

    def check_graph(self, graph: Graph) -> "HopDistanceEngine":
        """Guard for injection points: raise unless this engine serves ``graph``."""
        if self.graph is not graph:
            raise ValueError("engine was built for a different graph")
        return self

    def warm_hops(self, sources: Iterable[NodeId]) -> int:
        """Batched multi-source warm-up: cache hop vectors for ``sources``.

        Returns the number of *distinct* sources warmed.  Leaf sources
        sharing an access parent share that parent's BFS; this is the bulk
        entry point scenario builds use for peer attachment routers.
        """
        seen = set()
        for source in sources:
            self._hop_vector(source)
            seen.add(source)
        return len(seen)

    def hop_distances(self, source: NodeId) -> Dict[NodeId, int]:
        """Hop distances from ``source`` as a dict, equal to the BFS oracle.

        The returned dict compares equal to
        ``bfs_shortest_paths(graph, source)[0]`` (unreachable nodes absent);
        only the key insertion order differs (snapshot order rather than
        discovery order).
        """
        vector, _ = self._hop_vector(source)
        nodes = self.snapshot().nodes
        if isinstance(vector, bytes):
            return {nodes[i]: d for i, d in enumerate(vector) if d != UNREACHABLE}
        return {nodes[i]: d for i, d in enumerate(vector) if d >= 0}

    def hop_distance(self, source: NodeId, destination: NodeId) -> int:
        """Hop distance, raising :class:`NoRouteError` when unreachable."""
        distance = self.hop_between(source, destination)
        if distance is None:
            raise NoRouteError(source, destination)
        return distance

    def hop_between(self, source: NodeId, destination: NodeId, default=None):
        """Hop distance, or ``default`` when ``destination`` is unreachable.

        Raises :class:`NodeNotFoundError` for an unknown *source* (matching
        the single-source BFS entry points); an unknown destination counts
        as unreachable, matching a ``distances.get(destination)`` lookup on
        the BFS result dict.
        """
        vector, _ = self._hop_vector(source)
        destination_index = self.snapshot().index.get(destination)
        if destination_index is None:
            return default
        distance = vector[destination_index]
        unreachable = UNREACHABLE if isinstance(vector, bytes) else -1
        return default if distance == unreachable else distance

    def hop_distances_to(
        self, source: NodeId, destinations: Sequence[NodeId], default=None
    ) -> List:
        """Distances from ``source`` to each destination (bulk lookup)."""
        vector, _ = self._hop_vector(source)
        index = self.snapshot().index
        unreachable = UNREACHABLE if isinstance(vector, bytes) else -1
        result = []
        for destination in destinations:
            i = index.get(destination)
            distance = vector[i] if i is not None else unreachable
            result.append(default if distance == unreachable else distance)
        return result

    # ----------------------------------------------------- exact BFS mirror

    def bfs(self, source: NodeId) -> Tuple[Dict[NodeId, int], Dict[NodeId, NodeId]]:
        """``(distances, parents)`` identical to ``bfs_shortest_paths``.

        Runs over the snapshot's full CSR arrays with the same FIFO
        discovery order as the reference implementation, so parents (and the
        dicts' insertion order) match exactly — this is the entry point for
        shortest-path *trees*, where tie-broken parents matter.
        """
        snapshot = self.snapshot()
        source_index = snapshot.index_of(source)
        offsets = snapshot.offsets
        neighbors = snapshot.neighbors
        nodes = snapshot.nodes
        distances: Dict[NodeId, int] = {nodes[source_index]: 0}
        parents: Dict[NodeId, NodeId] = {}
        dist = array("l", [-1]) * snapshot.node_count
        dist[source_index] = 0
        queue = deque([source_index])
        self.stats.bfs_runs += 1
        while queue:
            u = queue.popleft()
            next_level = dist[u] + 1
            u_node = nodes[u]
            for i in range(offsets[u], offsets[u + 1]):
                v = neighbors[i]
                if dist[v] < 0:
                    dist[v] = next_level
                    v_node = nodes[v]
                    distances[v_node] = next_level
                    parents[v_node] = u_node
                    queue.append(v)
        return distances, parents

    # ------------------------------------------------------------- Dijkstra

    def dijkstra(
        self, source: NodeId, weight_key: str = DEFAULT_WEIGHT_KEY
    ) -> Tuple[Dict[NodeId, float], Dict[NodeId, NodeId]]:
        """``(distances, parents)`` identical to ``dijkstra_shortest_paths``.

        The relaxation order, heap tie-breaking counter and float addition
        order mirror the reference implementation exactly, so results are
        bit-identical (not merely approximately equal).
        """
        snapshot = self.snapshot()
        source_index = snapshot.index_of(source)
        adjacency = snapshot.weighted_adjacency(weight_key)
        nodes = snapshot.nodes
        self.stats.dijkstra_runs += 1
        distances: Dict[int, float] = {source_index: 0.0}
        parents: Dict[int, int] = {}
        visited: set = set()
        heap: List[Tuple[float, int, int]] = [(0.0, 0, source_index)]
        counter = 0
        while heap:
            distance, _, u = heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            for v, weight in adjacency[u]:
                if v in visited:
                    continue
                candidate = distance + weight
                if v not in distances or candidate < distances[v]:
                    distances[v] = candidate
                    parents[v] = u
                    counter += 1
                    heappush(heap, (candidate, counter, v))
        return (
            {nodes[i]: d for i, d in distances.items()},
            {nodes[i]: nodes[p] for i, p in parents.items()},
        )

    # ---------------------------------------------------------- latency API

    def _latency_vector(self, source: NodeId, weight_key: str) -> array:
        snapshot = self.snapshot()
        key = (snapshot.index_of(source), weight_key)
        cached = self._latency_vectors.get(key)
        if cached is not None:
            self.stats.vector_cache_hits += 1
            return cached
        # One Dijkstra implementation for the whole engine: the cached
        # vector is densified from :meth:`dijkstra`'s (reference-identical)
        # distances, so the two entry points can never drift apart.
        distances, _ = self.dijkstra(source, weight_key=weight_key)
        index = snapshot.index
        vector = array("d", [float("inf")]) * snapshot.node_count
        for node, distance in distances.items():
            vector[index[node]] = distance
        self._latency_vectors[key] = vector
        return vector

    def has_latency_vector(self, source: NodeId, weight_key: str = DEFAULT_WEIGHT_KEY) -> bool:
        """True when ``source``'s latency vector is already cached.

        Lets callers on undirected graphs — where latency is symmetric —
        pick the warm endpoint of a pair as the Dijkstra source instead of
        paying one run per distinct cold source (the simulated network's
        many-clients-one-server traffic pattern).
        """
        snapshot = self.snapshot()
        index = snapshot.index.get(source)
        if index is None:
            return False
        return (index, weight_key) in self._latency_vectors

    def warm_latencies(self, sources: Iterable[NodeId], weight_key: str = DEFAULT_WEIGHT_KEY) -> int:
        """Batched multi-source Dijkstra warm-up over one shared snapshot.

        Returns the number of *distinct* sources warmed.
        """
        seen = set()
        for source in sources:
            self._latency_vector(source, weight_key)
            seen.add(source)
        return len(seen)

    def latency_distances(
        self, source: NodeId, weight_key: str = DEFAULT_WEIGHT_KEY
    ) -> Dict[NodeId, float]:
        """Latency distances as a dict equal to the Dijkstra oracle's."""
        vector = self._latency_vector(source, weight_key)
        nodes = self.snapshot().nodes
        inf = float("inf")
        return {nodes[i]: d for i, d in enumerate(vector) if d != inf}

    def latency_distance(
        self, source: NodeId, destination: NodeId, weight_key: str = DEFAULT_WEIGHT_KEY
    ) -> float:
        """Latency distance, raising :class:`NoRouteError` when unreachable."""
        distance = self.latency_between(source, destination, weight_key=weight_key)
        if distance is None:
            raise NoRouteError(source, destination)
        return distance

    def latency_between(
        self,
        source: NodeId,
        destination: NodeId,
        default=None,
        weight_key: str = DEFAULT_WEIGHT_KEY,
    ):
        """Latency distance, or ``default`` when unreachable (or unknown)."""
        vector = self._latency_vector(source, weight_key)
        destination_index = self.snapshot().index.get(destination)
        if destination_index is None:
            return default
        distance = vector[destination_index]
        return default if distance == float("inf") else distance

    # ----------------------------------------------------------------- trees

    def tree(
        self,
        root: NodeId,
        weighted: bool = False,
        weight_key: str = DEFAULT_WEIGHT_KEY,
    ) -> ShortestPathTree:
        """A :class:`ShortestPathTree` identical to ``shortest_path_tree``."""
        if weighted:
            distances, parents = self.dijkstra(root, weight_key=weight_key)
            return ShortestPathTree(root=root, distances=dict(distances), parents=parents, weighted=True)
        hop_distances, parents = self.bfs(root)
        return ShortestPathTree(
            root=root,
            distances={node: float(value) for node, value in hop_distances.items()},
            parents=parents,
            weighted=False,
        )
