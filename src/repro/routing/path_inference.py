"""Turning raw traceroute output into the router paths the server stores.

A real traceroute towards a landmark can contain anonymous hops (``None``)
and may stop before the destination.  The management server, however, needs a
clean ordered list of router identifiers ending at the landmark.  This module
provides the cleaning / repair strategies and a small quality report so
experiments can quantify how much probe noise degrades the inferred paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from .._validation import require_one_of
from ..exceptions import TracerouteError
from .traceroute import TracerouteResult

NodeId = Hashable

GapPolicy = str
GAP_DROP = "drop"
GAP_PLACEHOLDER = "placeholder"
GAP_TRUNCATE = "truncate"
GAP_POLICIES = (GAP_DROP, GAP_PLACEHOLDER, GAP_TRUNCATE)


@dataclass
class CleanedPath:
    """A cleaned router path plus provenance information.

    Attributes
    ----------
    routers:
        Ordered router identifiers from the first hop after the source up to
        and including the landmark.  Placeholder entries (for the
        ``placeholder`` gap policy) are strings of the form
        ``"anon:<source>:<ttl>"`` and are unique per source so they never
        merge with other peers' paths.
    anonymous_hops:
        Number of hops that did not respond in the raw trace.
    truncated:
        True if the raw trace did not reach the landmark.
    """

    source: NodeId
    destination: NodeId
    routers: List[NodeId]
    anonymous_hops: int
    truncated: bool

    @property
    def length(self) -> int:
        """Number of routers recorded on the cleaned path."""
        return len(self.routers)

    @property
    def complete(self) -> bool:
        """True if the path reaches the landmark with no missing hops."""
        return not self.truncated and self.anonymous_hops == 0


def clean_traceroute(
    result: TracerouteResult,
    gap_policy: GapPolicy = GAP_DROP,
    require_reached: bool = True,
) -> CleanedPath:
    """Convert a :class:`TracerouteResult` into a :class:`CleanedPath`.

    Parameters
    ----------
    gap_policy:
        ``drop`` (default) removes anonymous hops — hop distances along the
        path shrink slightly but the path stays usable; ``placeholder``
        replaces each anonymous hop with a unique marker (keeps hop counts
        exact, prevents false merges); ``truncate`` cuts the path at the first
        anonymous hop (most conservative).
    require_reached:
        If True (default) a trace that never reached the landmark raises
        :class:`~repro.exceptions.TracerouteError`; if False the truncated
        path is returned with ``truncated=True``.
    """
    require_one_of(gap_policy, GAP_POLICIES, "gap_policy")
    if require_reached and not result.reached:
        raise TracerouteError(
            f"traceroute from {result.source!r} did not reach {result.destination!r}"
        )

    routers: List[NodeId] = []
    anonymous = 0
    for hop in result.hops:
        if hop.router is not None:
            routers.append(hop.router)
            continue
        anonymous += 1
        if gap_policy == GAP_DROP:
            continue
        if gap_policy == GAP_PLACEHOLDER:
            routers.append(f"anon:{result.source}:{hop.ttl}")
            continue
        # GAP_TRUNCATE: stop at the first gap.
        break

    truncated = not result.reached
    if gap_policy == GAP_TRUNCATE and anonymous > 0:
        truncated = truncated or (not routers or routers[-1] != result.destination)

    return CleanedPath(
        source=result.source,
        destination=result.destination,
        routers=routers,
        anonymous_hops=anonymous,
        truncated=truncated,
    )


@dataclass
class PathQualityReport:
    """Aggregate quality of a batch of cleaned paths."""

    total_paths: int
    complete_paths: int
    truncated_paths: int
    total_anonymous_hops: int
    mean_length: float

    @property
    def completeness(self) -> float:
        """Fraction of paths that are complete."""
        if self.total_paths == 0:
            return 0.0
        return self.complete_paths / self.total_paths


def assess_paths(paths: Sequence[CleanedPath]) -> PathQualityReport:
    """Summarise the quality of a batch of cleaned paths."""
    total = len(paths)
    complete = sum(1 for path in paths if path.complete)
    truncated = sum(1 for path in paths if path.truncated)
    anonymous = sum(path.anonymous_hops for path in paths)
    mean_length = sum(path.length for path in paths) / total if total else 0.0
    return PathQualityReport(
        total_paths=total,
        complete_paths=complete,
        truncated_paths=truncated,
        total_anonymous_hops=anonymous,
        mean_length=mean_length,
    )


def common_prefix_length(path_a: Sequence[NodeId], path_b: Sequence[NodeId]) -> int:
    """Length of the common *suffix towards the landmark* shared by two paths.

    Both paths are ordered source → landmark, so the shared portion near the
    landmark is a common suffix.  This is the quantity the path tree exploits:
    the longer the shared suffix, the closer the branch point is to the peers
    and the smaller their inferred distance.
    """
    shared = 0
    for a, b in zip(reversed(list(path_a)), reversed(list(path_b))):
        if a != b:
            break
        shared += 1
    return shared


def branch_router(path_a: Sequence[NodeId], path_b: Sequence[NodeId]) -> Optional[NodeId]:
    """First router (closest to the peers) common to both landmark paths.

    Returns ``None`` when the paths share nothing (different landmarks or
    disjoint routes).
    """
    shared = common_prefix_length(path_a, path_b)
    if shared == 0:
        return None
    return list(path_a)[len(path_a) - shared]
