"""Per-router forwarding state derived from shortest-path trees.

The traceroute simulation needs to know, at every router, the next hop
towards a given destination (the landmark).  Real routers hold forwarding
tables computed by their IGP; here we derive the equivalent next-hop state
from landmark-rooted shortest-path trees, which is both faithful (intra-domain
routing follows shortest paths) and cheap (one BFS/Dijkstra per landmark
instead of per-destination tables for every router).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from ..exceptions import NoRouteError, RoutingError
from ..topology.graph import Graph
from .distance_engine import HopDistanceEngine
from .shortest_path import ShortestPathTree

NodeId = Hashable


@dataclass
class RouteTable:
    """Next-hop routing state towards a fixed set of destinations.

    One :class:`~repro.routing.shortest_path.ShortestPathTree` is maintained
    per destination.  ``next_hop(router, destination)`` then answers the
    forwarding question the traceroute simulator asks at every hop.

    All trees are built through one :class:`HopDistanceEngine` (injectable,
    so a scenario can share its engine), which means every destination added
    reuses the same CSR topology snapshot instead of re-walking the
    adjacency dicts.
    """

    graph: Graph
    weighted: bool = False
    engine: Optional[HopDistanceEngine] = None
    _trees: Dict[NodeId, ShortestPathTree] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = HopDistanceEngine(self.graph)
        else:
            self.engine.check_graph(self.graph)

    def add_destination(self, destination: NodeId) -> ShortestPathTree:
        """Compute (or return the cached) tree towards ``destination``."""
        if destination not in self._trees:
            self._trees[destination] = self.engine.tree(
                destination, weighted=self.weighted
            )
        return self._trees[destination]

    def destinations(self) -> List[NodeId]:
        """Destinations for which forwarding state exists."""
        return list(self._trees)

    def has_destination(self, destination: NodeId) -> bool:
        """True if forwarding state towards ``destination`` exists."""
        return destination in self._trees

    def tree(self, destination: NodeId) -> ShortestPathTree:
        """Return the shortest-path tree towards ``destination``."""
        if destination not in self._trees:
            raise RoutingError(
                f"no routing state towards {destination!r}; call add_destination first"
            )
        return self._trees[destination]

    def next_hop(self, router: NodeId, destination: NodeId) -> NodeId:
        """Return the next router on the path from ``router`` to ``destination``."""
        tree = self.tree(destination)
        if router == destination:
            raise RoutingError(f"router {router!r} is the destination itself")
        if not tree.covers(router):
            raise NoRouteError(router, destination)
        return tree.parents[router]

    def route(self, source: NodeId, destination: NodeId) -> List[NodeId]:
        """Return the full routed path ``[source, ..., destination]``."""
        tree = self.add_destination(destination)
        return tree.path_to_root(source)

    def route_length(self, source: NodeId, destination: NodeId) -> int:
        """Number of hops on the routed path."""
        return len(self.route(source, destination)) - 1

    def path_latency(self, source: NodeId, destination: NodeId) -> float:
        """Sum of link latencies along the routed path."""
        path = self.route(source, destination)
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += self.graph.edge_weight(u, v)
        return total


def build_route_table(
    graph: Graph,
    destinations: Optional[List[NodeId]] = None,
    weighted: bool = False,
) -> RouteTable:
    """Convenience constructor: build a table and pre-compute ``destinations``."""
    table = RouteTable(graph=graph, weighted=weighted)
    for destination in destinations or []:
        table.add_destination(destination)
    return table
