"""Shortest-path computations over router topologies.

Two distance notions are used throughout the reproduction:

* **hop distance** — the number of router hops; this is the metric the paper's
  figure is expressed in (``D`` is a sum of hop distances);
* **latency distance** — the sum of per-link latencies, used to pick the
  closest landmark and by the streaming examples.

:func:`bfs_shortest_paths` and :func:`dijkstra_shortest_paths` are the
*reference* single-source implementations: small, dict-based, and the oracle
the vectorised engine is property-tested against.  The bulk entry points now
delegate to :mod:`repro.routing.distance_engine` instead of looping over
these references:

* :class:`AllPairsHopDistances` is a thin per-source dict view over
  engine-computed hop vectors (same API, same :class:`NoRouteError`
  semantics, one CSR snapshot shared across all sources);
* :class:`~repro.routing.route_table.RouteTable` builds all of its
  landmark-rooted trees through one engine (``shortest_path_tree`` itself
  stays reference-backed for one-shot callers, and accepts an ``engine`` to
  join a batch);
* :class:`~repro.landmarks.manager.LandmarkSet`, the brute-force baseline,
  the convergence/analysis experiments, mobility and the sim network all
  share a scenario-owned engine rather than re-running private BFS loops.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Tuple

from ..exceptions import NoRouteError, NodeNotFoundError
from ..topology.graph import DEFAULT_WEIGHT_KEY, Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .distance_engine import HopDistanceEngine

NodeId = Hashable


def bfs_shortest_paths(graph: Graph, source: NodeId) -> Tuple[Dict[NodeId, int], Dict[NodeId, NodeId]]:
    """Hop-count shortest paths from ``source``.

    Returns ``(distances, parents)`` where ``parents[v]`` is the predecessor
    of ``v`` on one shortest path back to ``source`` (ties broken by BFS
    discovery order, which is deterministic given the graph's insertion
    order).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[NodeId, int] = {source: 0}
    parents: Dict[NodeId, NodeId] = {}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.iter_neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                parents[neighbor] = node
                queue.append(neighbor)
    return distances, parents


def dijkstra_shortest_paths(
    graph: Graph,
    source: NodeId,
    weight_key: str = DEFAULT_WEIGHT_KEY,
) -> Tuple[Dict[NodeId, float], Dict[NodeId, NodeId]]:
    """Latency-weighted shortest paths from ``source`` (Dijkstra).

    Missing edge weights default to 1.0.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[NodeId, float] = {source: 0.0}
    parents: Dict[NodeId, NodeId] = {}
    visited: set = set()
    heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        distance, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor in graph.iter_neighbors(node):
            if neighbor in visited:
                continue
            weight = graph.edge_weight(node, neighbor, key=weight_key)
            candidate = distance + weight
            if neighbor not in distances or candidate < distances[neighbor]:
                distances[neighbor] = candidate
                parents[neighbor] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return distances, parents


def reconstruct_path(
    parents: Dict[NodeId, NodeId], source: NodeId, destination: NodeId
) -> List[NodeId]:
    """Rebuild the node sequence ``source .. destination`` from a parent map."""
    if destination == source:
        return [source]
    if destination not in parents:
        raise NoRouteError(source, destination)
    path = [destination]
    node = destination
    while node != source:
        node = parents[node]
        path.append(node)
    path.reverse()
    return path


def hop_distance(graph: Graph, source: NodeId, destination: NodeId) -> int:
    """Hop distance between two nodes (raises :class:`NoRouteError` if unreachable)."""
    distances, _ = bfs_shortest_paths(graph, source)
    if destination not in distances:
        raise NoRouteError(source, destination)
    return distances[destination]


def latency_distance(
    graph: Graph, source: NodeId, destination: NodeId, weight_key: str = DEFAULT_WEIGHT_KEY
) -> float:
    """Latency distance between two nodes."""
    distances, _ = dijkstra_shortest_paths(graph, source, weight_key=weight_key)
    if destination not in distances:
        raise NoRouteError(source, destination)
    return distances[destination]


@dataclass
class ShortestPathTree:
    """A shortest-path tree rooted at a landmark (or any node).

    ``parents[v]`` is the next hop from ``v`` towards the root, so the routed
    path from any node to the root is obtained by following parents — exactly
    what a traceroute from the node to the root records (in reverse).
    """

    root: NodeId
    distances: Dict[NodeId, float]
    parents: Dict[NodeId, NodeId]
    weighted: bool = False

    def path_to_root(self, node: NodeId) -> List[NodeId]:
        """Return the routed path ``[node, ..., root]``."""
        if node == self.root:
            return [self.root]
        if node not in self.distances:
            raise NoRouteError(node, self.root)
        path = [node]
        current = node
        while current != self.root:
            current = self.parents[current]
            path.append(current)
        return path

    def distance(self, node: NodeId) -> float:
        """Distance from ``node`` to the root."""
        if node not in self.distances:
            raise NoRouteError(node, self.root)
        return self.distances[node]

    def covers(self, node: NodeId) -> bool:
        """True if ``node`` can reach the root."""
        return node in self.distances


def shortest_path_tree(
    graph: Graph,
    root: NodeId,
    weighted: bool = False,
    weight_key: str = DEFAULT_WEIGHT_KEY,
    engine: Optional["HopDistanceEngine"] = None,
) -> ShortestPathTree:
    """Build a :class:`ShortestPathTree` rooted at ``root``.

    ``weighted=False`` uses hop counts (the paper's route model);
    ``weighted=True`` uses link latencies, modelling latency-based routing.
    Passing a shared :class:`~repro.routing.distance_engine.HopDistanceEngine`
    builds the tree over its CSR snapshot (identical results); callers that
    build trees for several roots should prefer one engine for all of them.
    """
    if engine is not None:
        return engine.check_graph(graph).tree(root, weighted=weighted, weight_key=weight_key)
    if weighted:
        distances, parents = dijkstra_shortest_paths(graph, root, weight_key=weight_key)
        return ShortestPathTree(root=root, distances=dict(distances), parents=parents, weighted=True)
    hop_distances, parents = bfs_shortest_paths(graph, root)
    return ShortestPathTree(
        root=root,
        distances={node: float(value) for node, value in hop_distances.items()},
        parents=parents,
        weighted=False,
    )


@dataclass
class AllPairsHopDistances:
    """Lazy all-pairs hop-distance oracle with per-source caching.

    The brute-force baseline needs hop distances between every peer's
    attachment router and every other attachment router.  Computing the full
    all-pairs matrix over ~4 000 routers is wasteful; instead this is a thin
    per-source dict view over a :class:`~repro.routing.distance_engine.
    HopDistanceEngine`: distance vectors are computed (and batched across
    sources) by the engine's CSR snapshot, and a plain dict is materialised
    only for sources whose full :meth:`distances_from` map is requested.

    Pass ``engine=`` to share one engine (and its snapshot/vector caches)
    with the rest of a scenario; by default the view owns a private engine.
    The dict cache is dropped automatically when the underlying graph
    mutates (the engine rebuilds its snapshot via the graph's generation
    counter).
    """

    graph: Graph
    engine: Optional["HopDistanceEngine"] = None
    _cache: Dict[NodeId, Dict[NodeId, int]] = field(default_factory=dict, repr=False)
    _owns_engine: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            from .distance_engine import HopDistanceEngine

            self.engine = HopDistanceEngine(self.graph)
            self._owns_engine = True
        else:
            self.engine.check_graph(self.graph)
        self._snapshot_generation = self.graph.generation

    def _checked_cache(self) -> Dict[NodeId, Dict[NodeId, int]]:
        """The dict cache, dropped when the graph has mutated under us."""
        if self._snapshot_generation != self.graph.generation:
            self._cache.clear()
            self._snapshot_generation = self.graph.generation
        return self._cache

    def distances_from(self, source: NodeId) -> Dict[NodeId, int]:
        """Return (and cache) hop distances from ``source`` to all nodes."""
        cache = self._checked_cache()
        if source not in cache:
            cache[source] = self.engine.hop_distances(source)
        return cache[source]

    def distance(self, source: NodeId, destination: NodeId) -> int:
        """Hop distance between two nodes, cached per source."""
        distances = self.distances_from(source)
        if destination not in distances:
            raise NoRouteError(source, destination)
        return distances[destination]

    def warm(self, sources: Iterable[NodeId]) -> None:
        """Pre-populate the cache for ``sources``."""
        for source in sources:
            self.distances_from(source)

    @property
    def cached_sources(self) -> int:
        """Number of sources currently cached."""
        return len(self._checked_cache())

    def clear(self) -> None:
        """Drop all cached distance state (engine vectors too, if owned)."""
        self._cache.clear()
        if self._owns_engine:
            self.engine.invalidate()
