"""Shortest-path computations over router topologies.

Two distance notions are used throughout the reproduction:

* **hop distance** — the number of router hops; this is the metric the paper's
  figure is expressed in (``D`` is a sum of hop distances);
* **latency distance** — the sum of per-link latencies, used to pick the
  closest landmark and by the streaming examples.

Both are provided as single-source computations, plus landmark-rooted
shortest-path trees (the routes a traceroute towards a landmark would follow)
and an on-demand all-pairs cache for the brute-force baseline.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..exceptions import NoRouteError, NodeNotFoundError
from ..topology.graph import DEFAULT_WEIGHT_KEY, Graph

NodeId = Hashable


def bfs_shortest_paths(graph: Graph, source: NodeId) -> Tuple[Dict[NodeId, int], Dict[NodeId, NodeId]]:
    """Hop-count shortest paths from ``source``.

    Returns ``(distances, parents)`` where ``parents[v]`` is the predecessor
    of ``v`` on one shortest path back to ``source`` (ties broken by BFS
    discovery order, which is deterministic given the graph's insertion
    order).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[NodeId, int] = {source: 0}
    parents: Dict[NodeId, NodeId] = {}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.iter_neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                parents[neighbor] = node
                queue.append(neighbor)
    return distances, parents


def dijkstra_shortest_paths(
    graph: Graph,
    source: NodeId,
    weight_key: str = DEFAULT_WEIGHT_KEY,
) -> Tuple[Dict[NodeId, float], Dict[NodeId, NodeId]]:
    """Latency-weighted shortest paths from ``source`` (Dijkstra).

    Missing edge weights default to 1.0.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[NodeId, float] = {source: 0.0}
    parents: Dict[NodeId, NodeId] = {}
    visited: set = set()
    heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        distance, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor in graph.iter_neighbors(node):
            if neighbor in visited:
                continue
            weight = graph.edge_weight(node, neighbor, key=weight_key)
            candidate = distance + weight
            if neighbor not in distances or candidate < distances[neighbor]:
                distances[neighbor] = candidate
                parents[neighbor] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return distances, parents


def reconstruct_path(
    parents: Dict[NodeId, NodeId], source: NodeId, destination: NodeId
) -> List[NodeId]:
    """Rebuild the node sequence ``source .. destination`` from a parent map."""
    if destination == source:
        return [source]
    if destination not in parents:
        raise NoRouteError(source, destination)
    path = [destination]
    node = destination
    while node != source:
        node = parents[node]
        path.append(node)
    path.reverse()
    return path


def hop_distance(graph: Graph, source: NodeId, destination: NodeId) -> int:
    """Hop distance between two nodes (raises :class:`NoRouteError` if unreachable)."""
    distances, _ = bfs_shortest_paths(graph, source)
    if destination not in distances:
        raise NoRouteError(source, destination)
    return distances[destination]


def latency_distance(
    graph: Graph, source: NodeId, destination: NodeId, weight_key: str = DEFAULT_WEIGHT_KEY
) -> float:
    """Latency distance between two nodes."""
    distances, _ = dijkstra_shortest_paths(graph, source, weight_key=weight_key)
    if destination not in distances:
        raise NoRouteError(source, destination)
    return distances[destination]


@dataclass
class ShortestPathTree:
    """A shortest-path tree rooted at a landmark (or any node).

    ``parents[v]`` is the next hop from ``v`` towards the root, so the routed
    path from any node to the root is obtained by following parents — exactly
    what a traceroute from the node to the root records (in reverse).
    """

    root: NodeId
    distances: Dict[NodeId, float]
    parents: Dict[NodeId, NodeId]
    weighted: bool = False

    def path_to_root(self, node: NodeId) -> List[NodeId]:
        """Return the routed path ``[node, ..., root]``."""
        if node == self.root:
            return [self.root]
        if node not in self.distances:
            raise NoRouteError(node, self.root)
        path = [node]
        current = node
        while current != self.root:
            current = self.parents[current]
            path.append(current)
        return path

    def distance(self, node: NodeId) -> float:
        """Distance from ``node`` to the root."""
        if node not in self.distances:
            raise NoRouteError(node, self.root)
        return self.distances[node]

    def covers(self, node: NodeId) -> bool:
        """True if ``node`` can reach the root."""
        return node in self.distances


def shortest_path_tree(
    graph: Graph,
    root: NodeId,
    weighted: bool = False,
    weight_key: str = DEFAULT_WEIGHT_KEY,
) -> ShortestPathTree:
    """Build a :class:`ShortestPathTree` rooted at ``root``.

    ``weighted=False`` uses hop counts (the paper's route model);
    ``weighted=True`` uses link latencies, modelling latency-based routing.
    """
    if weighted:
        distances, parents = dijkstra_shortest_paths(graph, root, weight_key=weight_key)
        return ShortestPathTree(root=root, distances=dict(distances), parents=parents, weighted=True)
    hop_distances, parents = bfs_shortest_paths(graph, root)
    return ShortestPathTree(
        root=root,
        distances={node: float(value) for node, value in hop_distances.items()},
        parents=parents,
        weighted=False,
    )


@dataclass
class AllPairsHopDistances:
    """Lazy all-pairs hop-distance oracle with per-source caching.

    The brute-force baseline needs hop distances between every peer's
    attachment router and every other attachment router.  Computing the full
    all-pairs matrix over ~4 000 routers is wasteful; instead this caches one
    BFS per *queried source*, which is exactly the set of attachment routers.
    """

    graph: Graph
    _cache: Dict[NodeId, Dict[NodeId, int]] = field(default_factory=dict)

    def distances_from(self, source: NodeId) -> Dict[NodeId, int]:
        """Return (and cache) hop distances from ``source`` to all nodes."""
        if source not in self._cache:
            distances, _ = bfs_shortest_paths(self.graph, source)
            self._cache[source] = distances
        return self._cache[source]

    def distance(self, source: NodeId, destination: NodeId) -> int:
        """Hop distance between two nodes, cached per source."""
        distances = self.distances_from(source)
        if destination not in distances:
            raise NoRouteError(source, destination)
        return distances[destination]

    def warm(self, sources: Iterable[NodeId]) -> None:
        """Pre-populate the cache for ``sources``."""
        for source in sources:
            self.distances_from(source)

    @property
    def cached_sources(self) -> int:
        """Number of sources currently cached."""
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached BFS results."""
        self._cache.clear()
