"""Simulated traceroute over a routed topology.

The paper's newcomer runs "a traceroute-like tool" towards its closest
landmark and uploads the recorded router list to the management server.  The
paper also notes the tool "could be a decreased version of the original one
because we are only interested with some routers along the path".

This module simulates the probe process with the imperfections real
traceroutes exhibit, so the management-server code is exercised on realistic
(possibly gappy) paths:

* **anonymous routers** — some routers do not answer TTL-expired probes; the
  corresponding hop is recorded as unknown (``None``) and later repaired or
  skipped by :mod:`repro.routing.path_inference`;
* **probe loss** — each per-hop probe can be lost and retried a configurable
  number of times before the hop is declared anonymous;
* **max TTL** — long routes are truncated, as with the real tool;
* **per-hop RTT** — cumulative latency along the routed path plus jitter,
  which gives the newcomer the landmark RTT estimate it uses for closest-
  landmark selection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence

from .._validation import (
    coerce_seed,
    require_non_negative_float,
    require_positive_int,
    require_probability,
)
from ..exceptions import TracerouteError
from ..topology.graph import Graph
from .route_table import RouteTable

NodeId = Hashable


@dataclass
class TracerouteConfig:
    """Behavioural knobs of the simulated traceroute tool."""

    anonymous_router_probability: float = 0.0
    """Probability that a given router never answers probes."""

    probe_loss_probability: float = 0.0
    """Probability that an individual probe packet is lost."""

    probes_per_hop: int = 3
    """Number of probes sent per hop before giving up (standard tool default)."""

    max_ttl: int = 64
    """Hops after which the probe is abandoned."""

    rtt_jitter_ms: float = 0.5
    """Uniform jitter added to each hop's measured RTT."""

    seed: Optional[int] = None
    """Seed for the probe-loss / anonymity RNG."""

    def __post_init__(self) -> None:
        require_probability(self.anonymous_router_probability, "anonymous_router_probability")
        require_probability(self.probe_loss_probability, "probe_loss_probability")
        require_positive_int(self.probes_per_hop, "probes_per_hop")
        require_positive_int(self.max_ttl, "max_ttl")
        require_non_negative_float(self.rtt_jitter_ms, "rtt_jitter_ms")
        coerce_seed(self.seed)


@dataclass
class TracerouteHop:
    """One hop of a traceroute result."""

    ttl: int
    router: Optional[NodeId]
    """Router that answered, or ``None`` if the hop stayed anonymous."""

    rtt_ms: Optional[float]
    """Measured cumulative RTT at this hop, or ``None`` if unanswered."""

    @property
    def responded(self) -> bool:
        """True if a router answered at this TTL."""
        return self.router is not None


@dataclass
class TracerouteResult:
    """Full result of one simulated traceroute."""

    source: NodeId
    destination: NodeId
    hops: List[TracerouteHop] = field(default_factory=list)
    reached: bool = False

    def responding_routers(self) -> List[NodeId]:
        """Routers that answered, in path order (gaps dropped)."""
        return [hop.router for hop in self.hops if hop.router is not None]

    def raw_routers(self) -> List[Optional[NodeId]]:
        """Routers in path order with ``None`` marking anonymous hops."""
        return [hop.router for hop in self.hops]

    def destination_rtt_ms(self) -> Optional[float]:
        """RTT measured at the destination hop, if it was reached."""
        if not self.reached or not self.hops:
            return None
        return self.hops[-1].rtt_ms

    @property
    def hop_count(self) -> int:
        """Number of hops probed."""
        return len(self.hops)


class TracerouteSimulator:
    """Simulates traceroute probes over routes provided by a :class:`RouteTable`.

    Parameters
    ----------
    graph:
        The router topology (needed for per-link latencies).
    route_table:
        Forwarding state; destinations are added lazily as they are probed.
    config:
        Probe behaviour; the default config is a perfect tool (no loss, no
        anonymous routers), which matches the paper's idealised assumption.
    """

    def __init__(
        self,
        graph: Graph,
        route_table: Optional[RouteTable] = None,
        config: Optional[TracerouteConfig] = None,
    ) -> None:
        self.graph = graph
        self.route_table = route_table or RouteTable(graph=graph)
        self.config = config or TracerouteConfig()
        self._rng = random.Random(self.config.seed)
        # Anonymity is a property of the router, not of the probe: decide once.
        self._anonymous: set = set()
        self._anonymity_decided: set = set()

    def _is_anonymous(self, router: NodeId) -> bool:
        if router not in self._anonymity_decided:
            self._anonymity_decided.add(router)
            if self._rng.random() < self.config.anonymous_router_probability:
                self._anonymous.add(router)
        return router in self._anonymous

    def _hop_responds(self, router: NodeId) -> bool:
        """Decide whether any of the per-hop probes gets an answer."""
        if self._is_anonymous(router):
            return False
        for _ in range(self.config.probes_per_hop):
            if self._rng.random() >= self.config.probe_loss_probability:
                return True
        return False

    def trace(self, source: NodeId, destination: NodeId) -> TracerouteResult:
        """Run one traceroute from ``source`` towards ``destination``.

        The source host itself is not part of the recorded hops (as with the
        real tool); the destination appears as the final hop when reached.
        """
        if source == destination:
            return TracerouteResult(source=source, destination=destination, hops=[], reached=True)

        routed_path = self.route_table.route(source, destination)
        if len(routed_path) < 2:
            raise TracerouteError(f"degenerate route from {source!r} to {destination!r}")

        result = TracerouteResult(source=source, destination=destination)
        cumulative_latency = 0.0
        # routed_path = [source, r1, r2, ..., destination]; probe r1 onwards.
        for ttl, (previous, router) in enumerate(zip(routed_path, routed_path[1:]), start=1):
            if ttl > self.config.max_ttl:
                break
            cumulative_latency += self.graph.edge_weight(previous, router)
            is_destination = router == destination
            # The destination answers the final probe even if configured
            # anonymous: it is a landmark host we control, not a router.
            responds = self._hop_responds(router) or is_destination
            if responds:
                jitter = self._rng.uniform(0.0, self.config.rtt_jitter_ms)
                rtt = 2.0 * cumulative_latency + jitter
                result.hops.append(TracerouteHop(ttl=ttl, router=router, rtt_ms=rtt))
            else:
                result.hops.append(TracerouteHop(ttl=ttl, router=None, rtt_ms=None))
            if is_destination:
                result.reached = True
                break
        return result

    def trace_many(self, source: NodeId, destinations: Sequence[NodeId]) -> List[TracerouteResult]:
        """Trace from ``source`` towards each destination in order."""
        return [self.trace(source, destination) for destination in destinations]
