"""Discrete-event simulation substrate (the reproduction's PeerSim stand-in)."""

from .engine import Engine
from .events import Event, EventCallback, TimerHandle
from .network import DeliveryRecord, MessageHandler, SimulatedNetwork
from .node import PeerJoinRecord, PeerNode, ServerNode
from .rng import RandomStreams, derive_seed
from .trace import SeriesSummary, TraceCollector, summarize_values

__all__ = [
    "Engine",
    "Event",
    "EventCallback",
    "TimerHandle",
    "DeliveryRecord",
    "MessageHandler",
    "SimulatedNetwork",
    "PeerJoinRecord",
    "PeerNode",
    "ServerNode",
    "RandomStreams",
    "derive_seed",
    "SeriesSummary",
    "TraceCollector",
    "summarize_values",
]
