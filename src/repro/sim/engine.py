"""Minimal deterministic discrete-event simulation engine.

The engine plays the role PeerSim plays in the paper: it advances a simulated
clock, fires scheduled events in timestamp order, and gives protocol code a
way to schedule future work (timers, message deliveries).  Determinism is a
design goal — given the same seed and the same scheduling order, two runs
produce identical traces — because the experiment harness relies on it for
reproducibility.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from .._validation import require_non_negative_float
from ..exceptions import ClockError, SimulationError
from .events import Event, EventCallback, TimerHandle


class Engine:
    """The event loop.

    Attributes
    ----------
    now:
        Current simulated time (milliseconds by convention, but the engine is
        unit-agnostic).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._running = False
        self._processed_events = 0
        self._stop_requested = False
        # Engine-owned sequence numbers: two engines built back to back
        # produce identical traces because neither sees the other's (or any
        # earlier test's) scheduling history.
        self._sequence_counter = itertools.count()

    def _next_sequence(self) -> int:
        """Allocate the next per-engine event sequence number."""
        return next(self._sequence_counter)

    # -------------------------------------------------------------- schedule

    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> TimerHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        require_non_negative_float(delay, "delay")
        event = Event(
            time=self.now + delay, sequence=self._next_sequence(), callback=callback, label=label
        )
        heapq.heappush(self._queue, event)
        return TimerHandle(event)

    def schedule_at(self, time: float, callback: EventCallback, label: str = "") -> TimerHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise ClockError(f"cannot schedule an event at {time} before current time {self.now}")
        event = Event(time=time, sequence=self._next_sequence(), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return TimerHandle(event)

    # ------------------------------------------------------------------- run

    def step(self) -> bool:
        """Process the next pending event; return False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError(
                    f"event {event.label!r} scheduled at {event.time} is in the past "
                    f"(now={self.now})"
                )
            self.now = event.time
            event.fire()
            self._processed_events += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events processed during this call.
        """
        if self._running:
            raise SimulationError("the engine is already running (re-entrant run() call)")
        self._running = True
        self._stop_requested = False
        processed = 0
        try:
            while self._queue and not self._stop_requested:
                if max_events is not None and processed >= max_events:
                    break
                next_event = self._queue[0]
                if next_event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and next_event.time > until:
                    self.now = until
                    break
                if not self.step():
                    break
                processed += 1
            else:
                if until is not None and not self._queue:
                    self.now = max(self.now, until)
        finally:
            self._running = False
        return processed

    def stop(self) -> None:
        """Request the current ``run`` call to stop after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------ state

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Total events processed since the engine was created."""
        return self._processed_events

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next non-cancelled event, or None."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time
        return None

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for test reuse)."""
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self.now = 0.0
        self._queue.clear()
        self._processed_events = 0
        self._stop_requested = False
        self._sequence_counter = itertools.count()

    def __repr__(self) -> str:
        return f"Engine(now={self.now}, pending={self.pending_events})"
