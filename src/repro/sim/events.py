"""Event types of the discrete-event simulation engine.

An event is a timestamped callback plus bookkeeping (sequence number for
stable ordering of simultaneous events, cancellation flag, an optional
human-readable label used by the trace collector).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

EventCallback = Callable[[], Any]

# Fallback counter for events built outside an engine (``Event.at`` in
# tests).  Engines allocate sequence numbers from their *own* counter so
# "same seed => same trace" never depends on whole-process history — see
# ``Engine._next_sequence``.
_sequence_counter = itertools.count()


@dataclass(order=True)
class Event:
    """One scheduled event.

    Events order by ``(time, sequence)`` so two events scheduled for the same
    instant fire in scheduling order, which keeps simulations deterministic.
    """

    time: float
    sequence: int = field(compare=True)
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    @classmethod
    def at(cls, time: float, callback: EventCallback, label: str = "") -> "Event":
        """Create an event scheduled at absolute ``time``.

        Sequence numbers come from a module-level counter, which is fine for
        hand-built events in tests; engine-scheduled events draw from the
        engine's own counter instead (cross-engine determinism).
        """
        return cls(time=time, sequence=next(_sequence_counter), callback=callback, label=label)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        self.cancelled = True

    def fire(self) -> Any:
        """Run the callback (the engine calls this; tests may too)."""
        return self.callback()


@dataclass
class TimerHandle:
    """Handle returned by ``Engine.schedule`` so callers can cancel timers."""

    event: Event

    @property
    def time(self) -> float:
        """Absolute simulated time the timer fires at."""
        return self.event.time

    @property
    def cancelled(self) -> bool:
        """True if the timer was cancelled."""
        return self.event.cancelled

    def cancel(self) -> None:
        """Cancel the underlying event."""
        self.event.cancel()
