"""Latency-aware message delivery between simulated hosts.

The network layer connects protocol endpoints (peers, landmarks, the
management server) to the discrete-event engine: ``send`` schedules the
destination's ``handle_message`` after the one-way latency between the two
hosts' attachment routers (computed over the router topology), plus optional
fixed processing delay and random jitter.  Message loss can be injected for
robustness experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Protocol, Tuple

from .._validation import (
    coerce_seed,
    require_non_negative_float,
    require_probability,
)
from ..exceptions import SimulationError
from ..routing.distance_engine import HopDistanceEngine
from ..topology.graph import Graph
from .engine import Engine

HostId = Hashable
NodeId = Hashable


class MessageHandler(Protocol):
    """Anything attached to the network must accept delivered messages."""

    def handle_message(self, sender: HostId, message: Any) -> None:
        """Process ``message`` sent by ``sender``."""
        ...


@dataclass
class DeliveryRecord:
    """One delivered (or dropped) message, for trace inspection."""

    sent_at: float
    delivered_at: Optional[float]
    sender: HostId
    recipient: HostId
    message: Any
    dropped: bool = False


class SimulatedNetwork:
    """Message transport over a router topology.

    Parameters
    ----------
    engine:
        The event loop used to schedule deliveries.
    graph:
        Router topology; one-way latency between two hosts is the
        latency-weighted shortest path between their attachment routers.
    processing_delay_ms:
        Fixed per-message processing time added at the receiver.
    jitter_ms:
        Uniform random jitter added to each delivery.
    loss_probability:
        Probability that a message is silently dropped.
    distance_engine:
        Optional shared :class:`HopDistanceEngine` over ``graph``; latency
        lookups use its cached per-source Dijkstra vectors (a scenario can
        hand in its own engine so the simulation shares its snapshot).
    """

    def __init__(
        self,
        engine: Engine,
        graph: Graph,
        processing_delay_ms: float = 0.5,
        jitter_ms: float = 0.0,
        loss_probability: float = 0.0,
        seed: Optional[int] = None,
        distance_engine: Optional[HopDistanceEngine] = None,
    ) -> None:
        self.engine = engine
        self.graph = graph
        self.processing_delay_ms = require_non_negative_float(processing_delay_ms, "processing_delay_ms")
        self.jitter_ms = require_non_negative_float(jitter_ms, "jitter_ms")
        self.loss_probability = require_probability(loss_probability, "loss_probability")
        self._rng = random.Random(coerce_seed(seed))
        self._hosts: Dict[HostId, Tuple[NodeId, MessageHandler]] = {}
        if distance_engine is None:
            distance_engine = HopDistanceEngine(graph)
        else:
            distance_engine.check_graph(graph)
        self._distances = distance_engine
        self.deliveries: List[DeliveryRecord] = []
        self.dropped_messages = 0
        self.sent_messages = 0

    # ------------------------------------------------------------------ hosts

    def attach_host(self, host_id: HostId, router: NodeId, handler: MessageHandler) -> None:
        """Attach a protocol endpoint to a router."""
        if not self.graph.has_node(router):
            raise SimulationError(f"router {router!r} is not part of the topology")
        self._hosts[host_id] = (router, handler)

    def detach_host(self, host_id: HostId) -> None:
        """Detach a departed host (queued deliveries to it are dropped)."""
        self._hosts.pop(host_id, None)

    def is_attached(self, host_id: HostId) -> bool:
        """True if ``host_id`` is currently attached."""
        return host_id in self._hosts

    def router_of(self, host_id: HostId) -> NodeId:
        """The router a host is attached to."""
        if host_id not in self._hosts:
            raise SimulationError(f"host {host_id!r} is not attached to the network")
        return self._hosts[host_id][0]

    # ---------------------------------------------------------------- latency

    def one_way_latency(self, sender: HostId, recipient: HostId) -> float:
        """Latency-weighted shortest-path delay between two hosts' routers."""
        router_a = self.router_of(sender)
        router_b = self.router_of(recipient)
        if router_a == router_b:
            return 0.1  # same access router: LAN-ish delay
        latency = self._distances.latency_between(router_a, router_b)
        if latency is None:
            raise SimulationError(f"no route between hosts {sender!r} and {recipient!r}")
        return latency

    # ------------------------------------------------------------------- send

    def send(self, sender: HostId, recipient: HostId, message: Any) -> DeliveryRecord:
        """Send ``message``; delivery is scheduled on the engine."""
        if sender not in self._hosts:
            raise SimulationError(f"sender {sender!r} is not attached to the network")
        if recipient not in self._hosts:
            raise SimulationError(f"recipient {recipient!r} is not attached to the network")
        self.sent_messages += 1
        record = DeliveryRecord(
            sent_at=self.engine.now,
            delivered_at=None,
            sender=sender,
            recipient=recipient,
            message=message,
        )
        self.deliveries.append(record)

        if self._rng.random() < self.loss_probability:
            record.dropped = True
            self.dropped_messages += 1
            return record

        delay = (
            self.one_way_latency(sender, recipient)
            + self.processing_delay_ms
            + (self._rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0)
        )

        def deliver() -> None:
            entry = self._hosts.get(recipient)
            if entry is None:
                record.dropped = True
                self.dropped_messages += 1
                return
            record.delivered_at = self.engine.now
            entry[1].handle_message(sender, message)

        self.engine.schedule(delay, deliver, label=f"deliver:{sender}->{recipient}")
        return record

    def broadcast(self, sender: HostId, recipients: List[HostId], message: Any) -> List[DeliveryRecord]:
        """Send the same message to several recipients."""
        return [self.send(sender, recipient, message) for recipient in recipients]
