"""Latency-aware message delivery between simulated hosts.

The network layer connects protocol endpoints (peers, landmarks, the
management server) to the discrete-event engine: ``send`` schedules the
destination's ``handle_message`` after the one-way latency between the two
hosts' attachment routers (computed over the router topology), plus optional
fixed processing delay and random jitter.

The wire is *lossy* on demand, three ways, all seed-deterministic:

* probability knobs — ``loss_probability``, ``duplicate_probability`` and
  ``reorder_probability`` perturb every message independently (the classic
  UDP impairments: silent drops, at-least-once duplicates, late delivery
  behind a younger message);
* a scripted :class:`NetworkFaultPlan` — the *same*
  :class:`~repro.core.chaos.Fault` vocabulary that scripts the chaos shard
  backends (``drop`` / ``delay`` / ``duplicate`` / ``reorder`` /
  ``partition``) applied to counted messages, so one fault plan stresses
  the event sim and the serving plane identically;
* teardown — a message in flight to a host that detaches before delivery
  is recorded as dropped.  Attachments are *epoch-stamped*: re-attaching a
  host id (handover, a restarted daemon) starts a new epoch, and messages
  sent to an earlier epoch are dropped rather than delivered to the
  successor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Protocol, Tuple

from .._validation import (
    coerce_seed,
    require_non_negative_float,
    require_probability,
)
from ..core.chaos import Fault, FaultPlan, WIRE_FAULT_KINDS
from ..exceptions import SimulationError
from ..routing.distance_engine import HopDistanceEngine
from ..topology.graph import Graph
from .engine import Engine

HostId = Hashable
NodeId = Hashable


def message_op_name(message: Any) -> str:
    """The fault-plan operation name of one message.

    Messages may carry an explicit ``op_name`` attribute; otherwise the
    lowercased class name is used (``Beacon`` → ``"beacon"``), so
    :class:`~repro.core.chaos.Fault` ``op_name`` filters read naturally.
    """
    explicit = getattr(message, "op_name", None)
    if isinstance(explicit, str):
        return explicit
    return type(message).__name__.lower()


class NetworkFaultPlan:
    """Adapter: a :class:`~repro.core.chaos.FaultPlan` applied to the wire.

    The adapter validates that every scripted fault uses the shared
    lossy-wire vocabulary (:data:`~repro.core.chaos.WIRE_FAULT_KINDS`) —
    backend-only kinds like ``crash_before`` have no wire meaning and are
    rejected at construction, not at fire time.  Each ``send`` counts as
    one operation named by :func:`message_op_name`, so ``op_name`` filters
    (e.g. only ``"beacon"`` messages) and ``persistent=True`` compose
    exactly as they do on a :class:`~repro.core.chaos.ChaosShardBackend`.

    Effects (interpreted by :class:`SimulatedNetwork`):

    * ``drop`` / ``partition`` — the message is dropped (partitions drop
      every matching message inside their ``window_ops`` window);
    * ``delay`` — ``delay_s`` (seconds) is added to the delivery as
      ``delay_s * 1000`` simulated milliseconds;
    * ``duplicate`` — the message is delivered twice, each copy with its
      own latency sample;
    * ``reorder`` — delivery is held until the next message to the same
      recipient is delivered (the held copy arrives immediately after it).
    """

    def __init__(self, plan: FaultPlan) -> None:
        bad = [fault.kind for fault in plan.pending if fault.kind not in WIRE_FAULT_KINDS]
        if bad:
            raise SimulationError(
                f"wire fault plans accept kinds {WIRE_FAULT_KINDS}, got {bad}"
            )
        self.plan = plan

    @classmethod
    def of(cls, *faults: Fault) -> "NetworkFaultPlan":
        """Convenience constructor from bare faults."""
        return cls(FaultPlan(faults))

    @property
    def fired(self) -> List[Tuple[int, str, str]]:
        """``(message_count, kind, op_name)`` triples of fired faults."""
        return self.plan.fired

    def faults_for(self, op_name: str) -> List[Fault]:
        """Count one message send and return the faults due for it."""
        return self.plan.faults_for(op_name)


class MessageHandler(Protocol):
    """Anything attached to the network must accept delivered messages."""

    def handle_message(self, sender: HostId, message: Any) -> None:
        """Process ``message`` sent by ``sender``."""
        ...


@dataclass
class DeliveryRecord:
    """One delivered (or dropped) message, for trace inspection."""

    sent_at: float
    delivered_at: Optional[float]
    sender: HostId
    recipient: HostId
    message: Any
    dropped: bool = False
    duplicate: bool = False
    """True for the extra copy a duplication fault/knob produced."""


class SimulatedNetwork:
    """Message transport over a router topology.

    Parameters
    ----------
    engine:
        The event loop used to schedule deliveries.
    graph:
        Router topology; one-way latency between two hosts is the
        latency-weighted shortest path between their attachment routers.
    processing_delay_ms:
        Fixed per-message processing time added at the receiver.
    jitter_ms:
        Uniform random jitter added to each delivery.
    loss_probability:
        Probability that a message is silently dropped.
    duplicate_probability:
        Probability that a message is delivered twice (the duplicate gets
        its own latency/jitter sample, so the copies may arrive in either
        order — receivers must dedup).
    reorder_probability:
        Probability that a message is delivered *late*: it is held until
        the next message to the same recipient is delivered and arrives
        immediately after it (a pairwise swap, the minimal reordering).
    seed:
        Seed for every random decision (loss, jitter, duplication,
        reordering) — same seed, same impairments.
    distance_engine:
        Optional shared :class:`HopDistanceEngine` over ``graph``; latency
        lookups use its cached per-source Dijkstra vectors (a scenario can
        hand in its own engine so the simulation shares its snapshot).
    fault_plan:
        Optional :class:`NetworkFaultPlan` scripting per-message faults on
        top of (and independently of) the probability knobs.
    """

    def __init__(
        self,
        engine: Engine,
        graph: Graph,
        processing_delay_ms: float = 0.5,
        jitter_ms: float = 0.0,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        reorder_probability: float = 0.0,
        seed: Optional[int] = None,
        distance_engine: Optional[HopDistanceEngine] = None,
        fault_plan: Optional[NetworkFaultPlan] = None,
    ) -> None:
        self.engine = engine
        self.graph = graph
        self.processing_delay_ms = require_non_negative_float(processing_delay_ms, "processing_delay_ms")
        self.jitter_ms = require_non_negative_float(jitter_ms, "jitter_ms")
        self.loss_probability = require_probability(loss_probability, "loss_probability")
        self.duplicate_probability = require_probability(
            duplicate_probability, "duplicate_probability"
        )
        self.reorder_probability = require_probability(
            reorder_probability, "reorder_probability"
        )
        self._rng = random.Random(coerce_seed(seed))
        self._hosts: Dict[HostId, Tuple[NodeId, MessageHandler]] = {}
        # Attachment epochs: bumped on every attach of a host id, checked at
        # delivery — a message addressed to epoch N is dropped if the host
        # detached, even when a successor re-attached as epoch N+1.
        self._attach_epochs: Dict[HostId, int] = {}
        # Reorder-held deliveries per recipient: (record, deliver_callback).
        self._held: Dict[HostId, List[Tuple[DeliveryRecord, Callable[[], None]]]] = {}
        if distance_engine is None:
            distance_engine = HopDistanceEngine(graph)
        else:
            distance_engine.check_graph(graph)
        self._distances = distance_engine
        self.fault_plan = fault_plan
        self.deliveries: List[DeliveryRecord] = []
        self.dropped_messages = 0
        self.sent_messages = 0
        self.duplicated_messages = 0
        self.reordered_messages = 0

    # ------------------------------------------------------------------ hosts

    def attach_host(self, host_id: HostId, router: NodeId, handler: MessageHandler) -> None:
        """Attach a protocol endpoint to a router (starts a new epoch)."""
        if not self.graph.has_node(router):
            raise SimulationError(f"router {router!r} is not part of the topology")
        self._hosts[host_id] = (router, handler)
        self._attach_epochs[host_id] = self._attach_epochs.get(host_id, 0) + 1

    def detach_host(self, host_id: HostId) -> None:
        """Detach a departed host.

        Queued deliveries to it are dropped when they fire — including
        reorder-held messages, which are dropped immediately (there is no
        live endpoint left to release them to).
        """
        self._hosts.pop(host_id, None)
        for record, _deliver in self._held.pop(host_id, []):
            self._drop(record)

    def is_attached(self, host_id: HostId) -> bool:
        """True if ``host_id`` is currently attached."""
        return host_id in self._hosts

    def router_of(self, host_id: HostId) -> NodeId:
        """The router a host is attached to."""
        if host_id not in self._hosts:
            raise SimulationError(f"host {host_id!r} is not attached to the network")
        return self._hosts[host_id][0]

    # ---------------------------------------------------------------- latency

    def one_way_latency(self, sender: HostId, recipient: HostId) -> float:
        """Latency-weighted shortest-path delay between two hosts' routers.

        The topology is undirected, so latency is symmetric — which lets
        the lookup prefer whichever endpoint already has a cached latency
        vector as the Dijkstra source.  Under the protocol's
        many-peers-one-host traffic pattern that means one Dijkstra from
        the host's router instead of one per peer access router.
        """
        router_a = self.router_of(sender)
        router_b = self.router_of(recipient)
        if router_a == router_b:
            return 0.1  # same access router: LAN-ish delay
        if self._distances.has_latency_vector(router_b) and not self._distances.has_latency_vector(
            router_a
        ):
            router_a, router_b = router_b, router_a
        latency = self._distances.latency_between(router_a, router_b)
        if latency is None:
            raise SimulationError(f"no route between hosts {sender!r} and {recipient!r}")
        return latency

    # ------------------------------------------------------------------- send

    def _drop(self, record: DeliveryRecord) -> None:
        record.dropped = True
        self.dropped_messages += 1

    def _delivery_delay(self, sender: HostId, recipient: HostId) -> float:
        return (
            self.one_way_latency(sender, recipient)
            + self.processing_delay_ms
            + (self._rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0)
        )

    def _schedule_delivery(
        self,
        record: DeliveryRecord,
        extra_delay_ms: float = 0.0,
        hold: bool = False,
    ) -> None:
        """Schedule (or, with ``hold``, park) one delivery."""
        recipient = record.recipient
        epoch = self._attach_epochs.get(recipient)

        def deliver() -> None:
            entry = self._hosts.get(recipient)
            if entry is None or self._attach_epochs.get(recipient) != epoch:
                # Detached in flight — or detached and re-attached: a new
                # epoch must never receive the old epoch's traffic.
                self._drop(record)
                return
            record.delivered_at = self.engine.now
            entry[1].handle_message(record.sender, record.message)
            self._release_held(recipient)

        if hold:
            self._held.setdefault(recipient, []).append((record, deliver))
            return
        delay = self._delivery_delay(record.sender, recipient) + extra_delay_ms
        self.engine.schedule(delay, deliver, label=f"deliver:{record.sender}->{recipient}")

    def _release_held(self, recipient: HostId) -> None:
        """Deliver reorder-held messages right after a younger delivery."""
        held = self._held.pop(recipient, None)
        if not held:
            return
        for _record, deliver in held:
            deliver()

    def send(self, sender: HostId, recipient: HostId, message: Any) -> DeliveryRecord:
        """Send ``message``; delivery is scheduled on the engine."""
        if sender not in self._hosts:
            raise SimulationError(f"sender {sender!r} is not attached to the network")
        if recipient not in self._hosts:
            raise SimulationError(f"recipient {recipient!r} is not attached to the network")
        self.sent_messages += 1
        record = DeliveryRecord(
            sent_at=self.engine.now,
            delivered_at=None,
            sender=sender,
            recipient=recipient,
            message=message,
        )
        self.deliveries.append(record)

        # Scripted faults first (deterministic, counted per send), then the
        # probability knobs (deterministic per seed).
        extra_delay_ms = 0.0
        duplicate = False
        reorder = False
        if self.fault_plan is not None:
            for fault in self.fault_plan.faults_for(message_op_name(message)):
                if fault.kind in ("drop", "partition"):
                    self._drop(record)
                    return record
                if fault.kind == "delay":
                    extra_delay_ms += fault.delay_s * 1000.0
                elif fault.kind == "duplicate":
                    duplicate = True
                elif fault.kind == "reorder":
                    reorder = True
        if self._rng.random() < self.loss_probability:
            self._drop(record)
            return record
        if self.duplicate_probability > 0 and self._rng.random() < self.duplicate_probability:
            duplicate = True
        if self.reorder_probability > 0 and self._rng.random() < self.reorder_probability:
            reorder = True

        if duplicate:
            self.duplicated_messages += 1
            copy = DeliveryRecord(
                sent_at=record.sent_at,
                delivered_at=None,
                sender=sender,
                recipient=recipient,
                message=message,
                duplicate=True,
            )
            self.deliveries.append(copy)
            self._schedule_delivery(copy, extra_delay_ms=extra_delay_ms)
        if reorder:
            self.reordered_messages += 1
        self._schedule_delivery(record, extra_delay_ms=extra_delay_ms, hold=reorder)
        return record

    def broadcast(self, sender: HostId, recipients: List[HostId], message: Any) -> List[DeliveryRecord]:
        """Send the same message to several recipients."""
        return [self.send(sender, recipient, message) for recipient in recipients]

    # ------------------------------------------------------------- accounting

    @property
    def held_messages(self) -> int:
        """Reorder-held messages still waiting for a younger delivery."""
        return sum(len(entries) for entries in self._held.values())

    def accounting_consistent(self) -> bool:
        """Every recorded message is delivered, dropped, or still held/queued.

        After the engine drains and no messages are held, ``deliveries``
        must partition exactly into delivered and dropped — the invariant
        the loss/teardown tests pin.
        """
        delivered = sum(1 for record in self.deliveries if record.delivered_at is not None)
        dropped = sum(1 for record in self.deliveries if record.dropped)
        in_flight = sum(
            1
            for record in self.deliveries
            if record.delivered_at is None and not record.dropped
        )
        return (
            dropped == self.dropped_messages
            and delivered + dropped + in_flight == len(self.deliveries)
        )
