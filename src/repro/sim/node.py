"""Simulated protocol endpoints (hosts) for the event-driven join protocol.

Two node types are provided:

* :class:`ServerNode` wraps a :class:`~repro.core.management_server.ManagementServer`
  so it can be driven by messages arriving over the simulated network;
* :class:`PeerNode` runs the newcomer side: on ``start_join`` it probes its
  landmark (modelled as a timed activity), sends the path report, and records
  when the neighbour list arrives — giving an end-to-end *setup delay* that
  includes network latencies, which the in-process
  :class:`~repro.core.newcomer.NewcomerClient` only approximates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from ..core.management_server import ManagementServer
from ..core.newcomer import NewcomerClient
from ..core.path import RouterPath
from ..core.protocol import (
    JoinRequest,
    JoinResponse,
    LandmarkDescriptor,
    LeaveNotice,
    NeighborRecommendation,
    NeighborResponse,
    PathReport,
)
from ..exceptions import ProtocolError
from ..routing.traceroute import TracerouteSimulator
from .engine import Engine
from .network import SimulatedNetwork

HostId = Hashable


class ServerNode:
    """The management server as a network endpoint."""

    def __init__(
        self,
        host_id: HostId,
        server: ManagementServer,
        network: SimulatedNetwork,
        processing_time_ms: float = 1.0,
    ) -> None:
        self.host_id = host_id
        self.server = server
        self.network = network
        self.processing_time_ms = float(processing_time_ms)
        self.handled_messages = 0

    def handle_message(self, sender: HostId, message: Any) -> None:
        """Dispatch protocol messages to the wrapped management server."""
        self.handled_messages += 1
        if isinstance(message, JoinRequest):
            response = JoinResponse.for_landmarks(
                message.peer_id,
                [(lid, self.server.landmark_router(lid)) for lid in self.server.landmarks()],
            )
            self.network.send(self.host_id, sender, response)
        elif isinstance(message, PathReport):
            pairs = self.server.register_peer(message.path)
            response = NeighborResponse.from_pairs(message.peer_id, pairs)
            self.network.send(self.host_id, sender, response)
        elif isinstance(message, LeaveNotice):
            if self.server.has_peer(message.peer_id):
                self.server.unregister_peer(message.peer_id)
        else:
            raise ProtocolError(f"server received an unexpected message: {message!r}")


@dataclass
class PeerJoinRecord:
    """Timing and outcome of one simulated peer join."""

    peer_id: HostId
    started_at: float
    landmark_list_received_at: Optional[float] = None
    probe_finished_at: Optional[float] = None
    neighbors_received_at: Optional[float] = None
    neighbors: List[NeighborRecommendation] = field(default_factory=list)

    @property
    def setup_delay(self) -> Optional[float]:
        """Join start to neighbour list received (simulated ms)."""
        if self.neighbors_received_at is None:
            return None
        return self.neighbors_received_at - self.started_at

    @property
    def completed(self) -> bool:
        """True if the join finished."""
        return self.neighbors_received_at is not None


class PeerNode:
    """The newcomer side of the join protocol as a network endpoint."""

    def __init__(
        self,
        host_id: HostId,
        access_router: Hashable,
        server_host: HostId,
        engine: Engine,
        network: SimulatedNetwork,
        traceroute: TracerouteSimulator,
        per_hop_probe_ms: float = 20.0,
        landmark_selection: str = "closest_rtt",
    ) -> None:
        self.host_id = host_id
        self.access_router = access_router
        self.server_host = server_host
        self.engine = engine
        self.network = network
        self.client = NewcomerClient(
            peer_id=host_id,
            access_router=access_router,
            traceroute=traceroute,
            landmark_selection=landmark_selection,
        )
        self.per_hop_probe_ms = float(per_hop_probe_ms)
        self.record: Optional[PeerJoinRecord] = None
        self.path: Optional[RouterPath] = None

    # ------------------------------------------------------------------ join

    def start_join(self) -> PeerJoinRecord:
        """Begin the join: ask the server for its landmark list."""
        self.record = PeerJoinRecord(peer_id=self.host_id, started_at=self.engine.now)
        self.network.send(self.host_id, self.server_host, JoinRequest(peer_id=self.host_id))
        return self.record

    def handle_message(self, sender: HostId, message: Any) -> None:
        """Progress the join state machine on each server response."""
        if self.record is None:
            raise ProtocolError(f"peer {self.host_id!r} received a message before joining")
        if isinstance(message, JoinResponse):
            self.record.landmark_list_received_at = self.engine.now
            self._probe_and_report(list(message.landmarks))
        elif isinstance(message, NeighborResponse):
            self.record.neighbors_received_at = self.engine.now
            self.record.neighbors = list(message.neighbors)
        else:
            raise ProtocolError(f"peer {self.host_id!r} received an unexpected message: {message!r}")

    def _probe_and_report(self, landmarks: List[LandmarkDescriptor]) -> None:
        """Model the traceroute probing time, then upload the path report."""
        chosen, measurements = self.client.select_landmark(landmarks)
        self.path = self.client.probe_landmark(chosen)
        probes = max(1, len(measurements)) if measurements else 1
        probe_duration = self.per_hop_probe_ms * self.path.hop_count * probes

        def report() -> None:
            assert self.record is not None and self.path is not None
            self.record.probe_finished_at = self.engine.now
            self.network.send(
                self.host_id, self.server_host, PathReport(peer_id=self.host_id, path=self.path)
            )

        self.engine.schedule(probe_duration, report, label=f"probe:{self.host_id}")

    def leave(self) -> None:
        """Announce departure to the server and detach from the network."""
        self.network.send(self.host_id, self.server_host, LeaveNotice(peer_id=self.host_id))
        self.network.detach_host(self.host_id)
