"""Seeded random-number streams for reproducible simulations.

Different parts of a simulation (arrivals, traceroute loss, random baseline,
churn) must not share one RNG: adding a draw in one component would otherwise
shift every other component's randomness and silently change results.  The
:class:`RandomStreams` factory derives an independent, deterministic
:class:`random.Random` per named stream from a single experiment seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional

from .._validation import coerce_seed


def derive_seed(base_seed: Optional[int], stream_name: str) -> int:
    """Derive a deterministic 63-bit seed for ``stream_name`` from ``base_seed``."""
    material = f"{base_seed if base_seed is not None else 'none'}::{stream_name}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RandomStreams:
    """A factory of named, independently seeded random streams."""

    def __init__(self, base_seed: Optional[int] = None) -> None:
        self.base_seed = coerce_seed(base_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.base_seed, name))
        return self._streams[name]

    def seed_for(self, name: str) -> int:
        """Return the derived integer seed for ``name`` (for APIs that take seeds)."""
        return derive_seed(self.base_seed, name)

    def reset(self) -> None:
        """Re-create every stream from the base seed (rewinds all randomness)."""
        self._streams.clear()

    def __repr__(self) -> str:
        return f"RandomStreams(base_seed={self.base_seed}, streams={sorted(self._streams)})"
