"""Statistics collection for simulation runs.

A :class:`TraceCollector` is a tiny time-series / counter sink the protocol
code and experiment harness write into, so a run produces one structured
object with everything needed to build tables (message counts, setup delays,
per-event samples) instead of ad-hoc prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import MetricError


@dataclass
class SeriesSummary:
    """Summary statistics of one recorded series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    std: float


def summarize_values(values: List[float]) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` for a list of samples."""
    if not values:
        raise MetricError("cannot summarise an empty series")
    ordered = sorted(values)
    count = len(ordered)
    mean = sum(ordered) / count

    def percentile(fraction: float) -> float:
        index = min(count - 1, max(0, int(math.ceil(fraction * count)) - 1))
        return ordered[index]

    variance = sum((value - mean) ** 2 for value in ordered) / count
    return SeriesSummary(
        count=count,
        mean=mean,
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=percentile(0.50),
        p90=percentile(0.90),
        p99=percentile(0.99),
        std=math.sqrt(variance),
    )


@dataclass
class TraceCollector:
    """Named counters plus named sample series."""

    counters: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)
    events: List[Tuple[float, str]] = field(default_factory=list)

    # ---------------------------------------------------------------- counters

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at 0 if absent)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0.0)

    # ------------------------------------------------------------------ series

    def record(self, name: str, value: float) -> None:
        """Append ``value`` to series ``name``."""
        self.series.setdefault(name, []).append(float(value))

    def values(self, name: str) -> List[float]:
        """All samples of series ``name`` (empty list if absent)."""
        return list(self.series.get(name, []))

    def summary(self, name: str) -> SeriesSummary:
        """Summary statistics of series ``name``."""
        return summarize_values(self.values(name))

    def has_series(self, name: str) -> bool:
        """True if at least one sample was recorded under ``name``."""
        return bool(self.series.get(name))

    # ------------------------------------------------------------------ events

    def log_event(self, time: float, description: str) -> None:
        """Record a timestamped free-form event."""
        self.events.append((time, description))

    def events_matching(self, substring: str) -> List[Tuple[float, str]]:
        """Events whose description contains ``substring``."""
        return [entry for entry in self.events if substring in entry[1]]

    # ------------------------------------------------------------------ export

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict export (for JSON dumps in the experiment runner)."""
        return {
            "counters": dict(self.counters),
            "series": {name: list(values) for name, values in self.series.items()},
            "events": list(self.events),
        }
