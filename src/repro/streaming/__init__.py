"""Mesh live-streaming workload (the application motivating the paper)."""

from .chunk import Chunk, ChunkBuffer
from .scheduler import (
    SCHEDULERS,
    EarliestDeadlineScheduler,
    RarestFirstScheduler,
    SchedulerBase,
    SequentialScheduler,
    make_scheduler,
)
from .playback import PlaybackModel, PlaybackReport, mean_continuity, playback_delay_spread
from .mesh import MeshConfig, MeshResult, MeshStreamingSession

__all__ = [
    "Chunk",
    "ChunkBuffer",
    "SCHEDULERS",
    "EarliestDeadlineScheduler",
    "RarestFirstScheduler",
    "SchedulerBase",
    "SequentialScheduler",
    "make_scheduler",
    "PlaybackModel",
    "PlaybackReport",
    "mean_continuity",
    "playback_delay_spread",
    "MeshConfig",
    "MeshResult",
    "MeshStreamingSession",
]
