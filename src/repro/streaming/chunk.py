"""Chunks and chunk buffers for the mesh live-streaming workload.

The paper motivates proximity discovery with mesh-based live streaming
(PULSE-style): the video is cut into numbered chunks, peers advertise which
chunks they hold and pull missing ones from neighbours.  A
:class:`ChunkBuffer` is the sliding window each peer maintains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..exceptions import StreamingError


@dataclass(frozen=True)
class Chunk:
    """One video chunk."""

    index: int
    created_at: float
    size_kb: float = 100.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise StreamingError(f"chunk index must be >= 0, got {self.index}")
        if self.size_kb <= 0:
            raise StreamingError(f"chunk size must be > 0, got {self.size_kb}")


class ChunkBuffer:
    """A peer's sliding window of received chunks.

    Parameters
    ----------
    window_size:
        How many chunk slots the buffer keeps behind the most recent chunk;
        chunks older than the window are evicted (they have been played out).
    """

    def __init__(self, window_size: int = 60) -> None:
        if window_size <= 0:
            raise StreamingError(f"window_size must be positive, got {window_size}")
        self.window_size = window_size
        self._chunks: Dict[int, Chunk] = {}
        self._received_at: Dict[int, float] = {}
        self.highest_index: Optional[int] = None

    # ------------------------------------------------------------------ write

    def add(self, chunk: Chunk, received_at: float) -> bool:
        """Store a chunk; returns False if it was already present or too old."""
        if self.highest_index is not None and chunk.index <= self.highest_index - self.window_size:
            return False
        if chunk.index in self._chunks:
            return False
        self._chunks[chunk.index] = chunk
        self._received_at[chunk.index] = received_at
        if self.highest_index is None or chunk.index > self.highest_index:
            self.highest_index = chunk.index
        self._evict()
        return True

    def _evict(self) -> None:
        if self.highest_index is None:
            return
        threshold = self.highest_index - self.window_size
        stale = [index for index in self._chunks if index <= threshold]
        for index in stale:
            del self._chunks[index]
            del self._received_at[index]

    # ------------------------------------------------------------------- read

    def has(self, index: int) -> bool:
        """True if chunk ``index`` is currently buffered."""
        return index in self._chunks

    def get(self, index: int) -> Chunk:
        """Return a buffered chunk."""
        if index not in self._chunks:
            raise StreamingError(f"chunk {index} is not in the buffer")
        return self._chunks[index]

    def received_at(self, index: int) -> float:
        """When chunk ``index`` was received."""
        if index not in self._received_at:
            raise StreamingError(f"chunk {index} is not in the buffer")
        return self._received_at[index]

    def indices(self) -> List[int]:
        """Buffered chunk indices in increasing order."""
        return sorted(self._chunks)

    def bitmap(self, start: int, length: int) -> List[bool]:
        """Presence bitmap for ``length`` chunk slots starting at ``start``."""
        if length <= 0:
            raise StreamingError(f"length must be positive, got {length}")
        return [self.has(start + offset) for offset in range(length)]

    def missing_in_window(self, start: int, length: int) -> List[int]:
        """Chunk indices missing from the ``[start, start+length)`` window."""
        return [start + offset for offset in range(length) if not self.has(start + offset)]

    def contiguous_from(self, start: int) -> int:
        """Number of consecutive chunks present starting at ``start``."""
        count = 0
        index = start
        while self.has(index):
            count += 1
            index += 1
        return count

    @property
    def size(self) -> int:
        """Number of chunks currently buffered."""
        return len(self._chunks)

    def __contains__(self, index: int) -> bool:
        return index in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._chunks))
