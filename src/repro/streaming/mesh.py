"""Round-based mesh pull streaming over an overlay.

A deliberately simple (but complete) model of PULSE-style mesh streaming,
used by the examples to show *why* proximity-aware neighbour selection
matters: chunks propagate faster and startup delays shrink when overlay
neighbours are network-close.

Model
-----
Time advances in rounds of ``round_duration_s``.  The source injects one new
chunk per round.  Each round every peer:

1. advertises its buffer map to its (symmetric) neighbours;
2. schedules up to ``requests_per_round`` chunk requests using its scheduler;
3. requests are served after a delay proportional to the network distance
   between the two peers (``distance * latency_per_hop_s``), so a chunk
   fetched from a far neighbour arrives several rounds later than one fetched
   nearby.

The simulation records per-peer chunk reception times which
:mod:`repro.streaming.playback` turns into startup delay / continuity
metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from .._validation import require_positive_float, require_positive_int
from ..exceptions import StreamingError
from ..overlay.overlay import Overlay
from .chunk import Chunk, ChunkBuffer
from .playback import PlaybackModel, PlaybackReport
from .scheduler import SchedulerBase, SequentialScheduler

PeerId = Hashable
DistanceFunction = Callable[[PeerId, PeerId], float]


@dataclass
class MeshConfig:
    """Parameters of the mesh streaming simulation."""

    rounds: int = 120
    round_duration_s: float = 1.0
    requests_per_round: int = 4
    uploads_per_round: int = 4
    latency_per_hop_s: float = 0.05
    buffer_window: int = 60
    source_fanout: int = 4
    startup_buffer_chunks: int = 3

    def __post_init__(self) -> None:
        require_positive_int(self.rounds, "rounds")
        require_positive_float(self.round_duration_s, "round_duration_s")
        require_positive_int(self.requests_per_round, "requests_per_round")
        require_positive_int(self.uploads_per_round, "uploads_per_round")
        require_positive_float(self.latency_per_hop_s, "latency_per_hop_s")
        require_positive_int(self.buffer_window, "buffer_window")
        require_positive_int(self.source_fanout, "source_fanout")
        require_positive_int(self.startup_buffer_chunks, "startup_buffer_chunks")


@dataclass
class MeshResult:
    """Outcome of a mesh streaming run."""

    reception_times: Dict[PeerId, Dict[int, float]]
    playback_reports: Dict[PeerId, PlaybackReport]
    chunks_injected: int
    total_transfers: int
    mean_delivery_delay_s: float

    def mean_startup_delay(self) -> float:
        """Mean startup delay over peers that managed to start."""
        delays = [
            report.startup_delay_s
            for report in self.playback_reports.values()
            if report.startup_delay_s is not None
        ]
        if not delays:
            raise StreamingError("no peer completed startup")
        return sum(delays) / len(delays)

    def mean_continuity(self) -> float:
        """Mean continuity index over all peers."""
        reports = list(self.playback_reports.values())
        return sum(report.continuity for report in reports) / len(reports)


class MeshStreamingSession:
    """Simulates one live-streaming session over a given overlay.

    Parameters
    ----------
    overlay:
        The overlay whose (symmetric) neighbour links carry chunk transfers.
    source_id:
        Which peer acts as the source.  It must be part of the overlay.
    distance:
        Network distance function between peers (hop count from the oracle in
        the experiments); converts into transfer delay.
    scheduler:
        Chunk scheduling policy (sequential by default).
    """

    def __init__(
        self,
        overlay: Overlay,
        source_id: PeerId,
        distance: DistanceFunction,
        config: Optional[MeshConfig] = None,
        scheduler: Optional[SchedulerBase] = None,
    ) -> None:
        if not overlay.has_peer(source_id):
            raise StreamingError(f"source {source_id!r} is not part of the overlay")
        self.overlay = overlay
        self.source_id = source_id
        self.distance = distance
        self.config = config or MeshConfig()
        self.scheduler = scheduler or SequentialScheduler(seed=0)
        self._buffers: Dict[PeerId, ChunkBuffer] = {
            peer_id: ChunkBuffer(window_size=self.config.buffer_window)
            for peer_id in overlay.peers()
        }
        self._reception: Dict[PeerId, Dict[int, float]] = {
            peer_id: {} for peer_id in overlay.peers()
        }
        # Transfers in flight: (arrival_time, recipient, chunk).
        self._in_flight: List[Tuple[float, PeerId, Chunk]] = []
        self._total_transfers = 0
        self._delivery_delays: List[float] = []

    # -------------------------------------------------------------- internals

    def _neighbors(self, peer_id: PeerId) -> List[PeerId]:
        return sorted(self.overlay.symmetric_neighbors_of(peer_id), key=repr)

    def _deliver(self, peer_id: PeerId, chunk: Chunk, time_s: float) -> None:
        buffer = self._buffers[peer_id]
        if buffer.add(chunk, received_at=time_s):
            self._reception[peer_id][chunk.index] = time_s
            self._delivery_delays.append(time_s - chunk.created_at)

    def _transfer_delay(self, sender: PeerId, recipient: PeerId) -> float:
        hops = max(1.0, float(self.distance(sender, recipient)))
        return hops * self.config.latency_per_hop_s

    def _process_in_flight(self, now_s: float) -> None:
        still_flying: List[Tuple[float, PeerId, Chunk]] = []
        for arrival, recipient, chunk in self._in_flight:
            if arrival <= now_s:
                self._deliver(recipient, chunk, arrival)
            else:
                still_flying.append((arrival, recipient, chunk))
        self._in_flight = still_flying

    # -------------------------------------------------------------------- run

    def run(self) -> MeshResult:
        """Run the configured number of rounds and return the results."""
        config = self.config
        chunk_index = 0
        for round_number in range(config.rounds):
            now = round_number * config.round_duration_s

            # 1. The source produces one chunk and pushes it to a few neighbours.
            chunk = Chunk(index=chunk_index, created_at=now)
            chunk_index += 1
            self._deliver(self.source_id, chunk, now)
            for neighbor in self._neighbors(self.source_id)[: config.source_fanout]:
                delay = self._transfer_delay(self.source_id, neighbor)
                self._in_flight.append((now + delay, neighbor, chunk))
                self._total_transfers += 1

            # 2. Deliver transfers that have arrived by now.
            self._process_in_flight(now)

            # 3. Every peer pulls missing chunks from neighbours.
            window_start = max(0, chunk_index - config.buffer_window)
            window_length = chunk_index - window_start
            upload_budget: Dict[PeerId, int] = {
                peer_id: config.uploads_per_round for peer_id in self.overlay.peers()
            }
            for peer_id in self.overlay.peers():
                if peer_id == self.source_id:
                    continue
                buffer = self._buffers[peer_id]
                missing = buffer.missing_in_window(window_start, window_length)
                if not missing:
                    continue
                neighbors = self._neighbors(peer_id)
                if not neighbors:
                    continue
                neighbor_bitmaps: Dict[PeerId, Dict[int, bool]] = {
                    neighbor: {
                        index: self._buffers[neighbor].has(index) for index in missing
                    }
                    for neighbor in neighbors
                }
                requests = self.scheduler.schedule(
                    missing, neighbor_bitmaps, budget=config.requests_per_round
                )
                for requested_index, holder in requests:
                    if upload_budget.get(holder, 0) <= 0:
                        continue
                    if not self._buffers[holder].has(requested_index):
                        continue
                    upload_budget[holder] -= 1
                    held_chunk = self._buffers[holder].get(requested_index)
                    delay = self._transfer_delay(holder, peer_id)
                    self._in_flight.append((now + delay, peer_id, held_chunk))
                    self._total_transfers += 1

        # Flush remaining transfers at the end of the session.
        final_time = config.rounds * config.round_duration_s
        self._process_in_flight(final_time + 10 * config.round_duration_s)

        playback = PlaybackModel(
            chunk_duration_s=config.round_duration_s,
            startup_buffer_chunks=config.startup_buffer_chunks,
        )
        reports: Dict[PeerId, PlaybackReport] = {}
        for peer_id in self.overlay.peers():
            reports[peer_id] = playback.evaluate(
                peer_id=peer_id,
                join_time_s=0.0,
                reception_times=self._reception[peer_id],
                first_chunk_index=0,
                last_chunk_index=chunk_index - 1,
            )

        mean_delay = (
            sum(self._delivery_delays) / len(self._delivery_delays)
            if self._delivery_delays
            else 0.0
        )
        return MeshResult(
            reception_times={peer: dict(times) for peer, times in self._reception.items()},
            playback_reports=reports,
            chunks_injected=chunk_index,
            total_transfers=self._total_transfers,
            mean_delivery_delay_s=mean_delay,
        )
