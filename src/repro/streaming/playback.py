"""Playback model: setup delay, playback delay, continuity.

The paper's motivation is that a newcomer's *setup delay* (time until the
video becomes visible) depends on how quickly it finds good neighbours, and
that neighbours should ideally share the same *playback delay* so they work
on the same chunk window.  This module models both quantities for a peer
given the chunk arrival times produced by the mesh simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import StreamingError


@dataclass
class PlaybackReport:
    """Playback outcome for one peer."""

    peer_id: object
    startup_delay_s: Optional[float]
    playback_delay_s: Optional[float]
    continuity: float
    stalls: int
    chunks_played: int
    chunks_missed: int


class PlaybackModel:
    """Derives playback metrics from chunk reception times.

    Parameters
    ----------
    chunk_duration_s:
        Playback duration of one chunk (chunk i's nominal play time is
        ``source_start + i * chunk_duration_s + playback_delay``).
    startup_buffer_chunks:
        How many consecutive chunks a player buffers before starting.
    """

    def __init__(self, chunk_duration_s: float = 1.0, startup_buffer_chunks: int = 3) -> None:
        if chunk_duration_s <= 0:
            raise StreamingError(f"chunk_duration_s must be > 0, got {chunk_duration_s}")
        if startup_buffer_chunks <= 0:
            raise StreamingError(
                f"startup_buffer_chunks must be > 0, got {startup_buffer_chunks}"
            )
        self.chunk_duration_s = chunk_duration_s
        self.startup_buffer_chunks = startup_buffer_chunks

    def startup_delay(
        self, join_time_s: float, reception_times: Mapping[int, float]
    ) -> Optional[float]:
        """Time from join until ``startup_buffer_chunks`` consecutive chunks are held.

        Returns None if the buffer never fills.
        """
        if not reception_times:
            return None
        indices = sorted(reception_times)
        for start_position in range(len(indices)):
            start_index = indices[start_position]
            window = [start_index + offset for offset in range(self.startup_buffer_chunks)]
            if all(index in reception_times for index in window):
                ready_at = max(reception_times[index] for index in window)
                return max(0.0, ready_at - join_time_s)
        return None

    def evaluate(
        self,
        peer_id: object,
        join_time_s: float,
        reception_times: Mapping[int, float],
        first_chunk_index: int,
        last_chunk_index: int,
        source_start_s: float = 0.0,
    ) -> PlaybackReport:
        """Full playback evaluation over ``[first_chunk_index, last_chunk_index]``.

        The playback delay is chosen as the smallest value such that every
        chunk the peer *did* receive arrived before its play-out time; chunks
        never received count as misses and as stalls.
        """
        if last_chunk_index < first_chunk_index:
            raise StreamingError("last_chunk_index must be >= first_chunk_index")

        startup = self.startup_delay(join_time_s, reception_times)

        # Minimal playback delay that keeps all received chunks on time.
        playback_delay: Optional[float] = None
        lateness: List[float] = []
        for index in range(first_chunk_index, last_chunk_index + 1):
            received = reception_times.get(index)
            if received is None:
                continue
            nominal_play_time = source_start_s + index * self.chunk_duration_s
            lateness.append(received - nominal_play_time)
        if lateness:
            playback_delay = max(0.0, max(lateness))

        played = 0
        missed = 0
        stalls = 0
        previous_missed = False
        for index in range(first_chunk_index, last_chunk_index + 1):
            if index in reception_times:
                played += 1
                previous_missed = False
            else:
                missed += 1
                if not previous_missed:
                    stalls += 1
                previous_missed = True

        total = played + missed
        continuity = played / total if total else 0.0
        return PlaybackReport(
            peer_id=peer_id,
            startup_delay_s=startup,
            playback_delay_s=playback_delay,
            continuity=continuity,
            stalls=stalls,
            chunks_played=played,
            chunks_missed=missed,
        )


def playback_delay_spread(reports: Sequence[PlaybackReport]) -> float:
    """Max minus min playback delay across peers (the paper wants this small).

    Peers whose playback delay could not be determined are ignored; if fewer
    than two peers have one, the spread is 0.
    """
    delays = [
        report.playback_delay_s for report in reports if report.playback_delay_s is not None
    ]
    if len(delays) < 2:
        return 0.0
    return max(delays) - min(delays)


def mean_continuity(reports: Sequence[PlaybackReport]) -> float:
    """Average continuity index across peers."""
    if not reports:
        raise StreamingError("no playback reports to average")
    return sum(report.continuity for report in reports) / len(reports)
