"""Chunk-scheduling policies for mesh pull streaming.

Each round a peer decides which missing chunks to request from which
neighbour.  The classic policies are implemented:

* ``RarestFirstScheduler`` — request the chunk held by the fewest neighbours
  first (maximises diversity, the BitTorrent heuristic);
* ``EarliestDeadlineScheduler`` — request the chunk closest to its playback
  deadline first (minimises stalls for live playback);
* ``SequentialScheduler`` — request in index order (simplest; prone to
  missing deadlines under loss).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from .._validation import coerce_seed
from ..exceptions import StreamingError

PeerId = Hashable

Request = Tuple[int, PeerId]
"""A scheduled request: ``(chunk_index, neighbour_to_ask)``."""


class SchedulerBase:
    """Shared helpers for chunk schedulers."""

    name = "base"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(coerce_seed(seed))

    @staticmethod
    def _holders(
        chunk_index: int, neighbor_bitmaps: Mapping[PeerId, Mapping[int, bool]]
    ) -> List[PeerId]:
        """Neighbours that hold ``chunk_index``."""
        return [
            neighbor
            for neighbor, bitmap in neighbor_bitmaps.items()
            if bitmap.get(chunk_index, False)
        ]

    def _pick_holder(self, holders: List[PeerId]) -> PeerId:
        """Pick one holder (random to spread load)."""
        if not holders:
            raise StreamingError("no holder available")
        return self._rng.choice(sorted(holders, key=repr))

    def schedule(
        self,
        missing: Sequence[int],
        neighbor_bitmaps: Mapping[PeerId, Mapping[int, bool]],
        budget: int,
        deadlines: Optional[Mapping[int, float]] = None,
    ) -> List[Request]:
        """Return up to ``budget`` requests for chunks in ``missing``."""
        raise NotImplementedError


class SequentialScheduler(SchedulerBase):
    """Request missing chunks in increasing index order."""

    name = "sequential"

    def schedule(
        self,
        missing: Sequence[int],
        neighbor_bitmaps: Mapping[PeerId, Mapping[int, bool]],
        budget: int,
        deadlines: Optional[Mapping[int, float]] = None,
    ) -> List[Request]:
        requests: List[Request] = []
        for chunk_index in sorted(missing):
            if len(requests) >= budget:
                break
            holders = self._holders(chunk_index, neighbor_bitmaps)
            if holders:
                requests.append((chunk_index, self._pick_holder(holders)))
        return requests


class RarestFirstScheduler(SchedulerBase):
    """Request the rarest (fewest holders) missing chunks first."""

    name = "rarest_first"

    def schedule(
        self,
        missing: Sequence[int],
        neighbor_bitmaps: Mapping[PeerId, Mapping[int, bool]],
        budget: int,
        deadlines: Optional[Mapping[int, float]] = None,
    ) -> List[Request]:
        scored: List[Tuple[int, int]] = []
        for chunk_index in missing:
            holders = self._holders(chunk_index, neighbor_bitmaps)
            if holders:
                scored.append((len(holders), chunk_index))
        scored.sort()
        requests: List[Request] = []
        for _, chunk_index in scored:
            if len(requests) >= budget:
                break
            holders = self._holders(chunk_index, neighbor_bitmaps)
            requests.append((chunk_index, self._pick_holder(holders)))
        return requests


class EarliestDeadlineScheduler(SchedulerBase):
    """Request chunks whose playback deadline is closest first."""

    name = "earliest_deadline"

    def schedule(
        self,
        missing: Sequence[int],
        neighbor_bitmaps: Mapping[PeerId, Mapping[int, bool]],
        budget: int,
        deadlines: Optional[Mapping[int, float]] = None,
    ) -> List[Request]:
        if deadlines is None:
            # Without deadlines the policy degenerates to sequential order.
            deadlines = {chunk_index: float(chunk_index) for chunk_index in missing}
        scored = sorted(
            (deadlines.get(chunk_index, float("inf")), chunk_index) for chunk_index in missing
        )
        requests: List[Request] = []
        for _, chunk_index in scored:
            if len(requests) >= budget:
                break
            holders = self._holders(chunk_index, neighbor_bitmaps)
            if holders:
                requests.append((chunk_index, self._pick_holder(holders)))
        return requests


SCHEDULERS = {
    "sequential": SequentialScheduler,
    "rarest_first": RarestFirstScheduler,
    "earliest_deadline": EarliestDeadlineScheduler,
}
"""Registry of scheduler classes by name."""


def make_scheduler(name: str, seed: Optional[int] = None) -> SchedulerBase:
    """Instantiate a scheduler by name."""
    if name not in SCHEDULERS:
        raise StreamingError(f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}")
    return SCHEDULERS[name](seed=seed)
