"""Router-level topology substrate: graphs, generators, latency and analyses.

Public surface:

* :class:`~repro.topology.graph.Graph` — the adjacency-list graph type the
  whole library operates on.
* Generators (:func:`~repro.topology.generators.barabasi_albert`,
  :func:`~repro.topology.generators.glp`, ...) and the router-level map
  builder :func:`~repro.topology.internet_mapper.generate_router_map`.
* Latency models in :mod:`~repro.topology.latency`.
* Centrality / structure analyses in :mod:`~repro.topology.centrality` and
  :mod:`~repro.topology.metrics`.
"""

from .graph import DEFAULT_WEIGHT_KEY, Graph, edge_key
from .generators import (
    GENERATORS,
    barabasi_albert,
    generate,
    glp,
    powerlaw_configuration_model,
    powerlaw_degree_sequence,
    random_regular,
    two_tier_hierarchical,
    waxman,
)
from .internet_mapper import (
    RouterMap,
    RouterMapConfig,
    generate_router_map,
    paper_router_map,
    small_router_map,
)
from .latency import (
    ConstantLatencyModel,
    EuclideanLatencyModel,
    LatencyModel,
    LogNormalLatencyModel,
    TieredLatencyModel,
    UniformLatencyModel,
)
from .io import (
    graph_from_dict,
    graph_to_dict,
    load_router_map,
    read_edge_list,
    read_graph_json,
    router_map_from_graph,
    save_router_map,
    write_edge_list,
    write_graph_json,
)
from .centrality import (
    approximate_betweenness,
    betweenness_centrality,
    centrality_concentration,
    core_nodes,
    degree_centrality,
    k_core_decomposition,
)
from .metrics import (
    PathLengthStats,
    TopologySummary,
    approximate_diameter,
    average_clustering,
    average_degree,
    bfs_distances,
    clustering_coefficient,
    degree_ccdf,
    degree_distribution,
    degree_one_fraction,
    estimate_powerlaw_exponent,
    max_degree,
    sampled_path_length_stats,
    summarize,
)

__all__ = [
    "DEFAULT_WEIGHT_KEY",
    "Graph",
    "edge_key",
    "GENERATORS",
    "barabasi_albert",
    "generate",
    "glp",
    "powerlaw_configuration_model",
    "powerlaw_degree_sequence",
    "random_regular",
    "two_tier_hierarchical",
    "waxman",
    "RouterMap",
    "RouterMapConfig",
    "generate_router_map",
    "paper_router_map",
    "small_router_map",
    "graph_from_dict",
    "graph_to_dict",
    "load_router_map",
    "read_edge_list",
    "read_graph_json",
    "router_map_from_graph",
    "save_router_map",
    "write_edge_list",
    "write_graph_json",
    "ConstantLatencyModel",
    "EuclideanLatencyModel",
    "LatencyModel",
    "LogNormalLatencyModel",
    "TieredLatencyModel",
    "UniformLatencyModel",
    "approximate_betweenness",
    "betweenness_centrality",
    "centrality_concentration",
    "core_nodes",
    "degree_centrality",
    "k_core_decomposition",
    "PathLengthStats",
    "TopologySummary",
    "approximate_diameter",
    "average_clustering",
    "average_degree",
    "bfs_distances",
    "clustering_coefficient",
    "degree_ccdf",
    "degree_distribution",
    "degree_one_fraction",
    "estimate_powerlaw_exponent",
    "max_degree",
    "sampled_path_length_stats",
    "summarize",
]
