"""Centrality and core-structure analyses of router topologies.

The paper's key structural argument is that the router graph's heavy-tailed
degree distribution concentrates *betweenness centrality* on a small core, so
that "the shortest path between most pairs of network edges uses the network
core".  These functions let the test suite and the ablation benchmarks verify
that the synthetic maps actually have that property, and let landmark
placement strategies pick high-betweenness routers.

Exact betweenness is O(V·E); for the ~4 000-router default map we provide a
pivot-sampled approximation (Brandes & Pich style) that is accurate enough
for ranking routers.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence

from .._validation import coerce_seed, require_positive_int
from ..exceptions import NodeNotFoundError
from .graph import Graph

NodeId = Hashable


def _single_source_brandes(graph: Graph, source: NodeId) -> Dict[NodeId, float]:
    """One Brandes accumulation pass: dependency of every node w.r.t. ``source``.

    Unweighted (hop-count) shortest paths, matching the paper's hop metric.
    """
    stack: List[NodeId] = []
    predecessors: Dict[NodeId, List[NodeId]] = {node: [] for node in graph.nodes()}
    sigma: Dict[NodeId, float] = {node: 0.0 for node in graph.nodes()}
    distance: Dict[NodeId, int] = {node: -1 for node in graph.nodes()}
    sigma[source] = 1.0
    distance[source] = 0

    queue = deque([source])
    while queue:
        node = queue.popleft()
        stack.append(node)
        for neighbor in graph.iter_neighbors(node):
            if distance[neighbor] < 0:
                distance[neighbor] = distance[node] + 1
                queue.append(neighbor)
            if distance[neighbor] == distance[node] + 1:
                sigma[neighbor] += sigma[node]
                predecessors[neighbor].append(node)

    dependency: Dict[NodeId, float] = {node: 0.0 for node in graph.nodes()}
    while stack:
        node = stack.pop()
        for predecessor in predecessors[node]:
            share = (sigma[predecessor] / sigma[node]) * (1.0 + dependency[node])
            dependency[predecessor] += share
    dependency[source] = 0.0
    return dependency


def betweenness_centrality(
    graph: Graph,
    normalized: bool = True,
    sources: Optional[Sequence[NodeId]] = None,
) -> Dict[NodeId, float]:
    """Exact (or source-restricted) betweenness centrality.

    Parameters
    ----------
    normalized:
        Divide by ``(n-1)(n-2)/2`` (undirected normalisation).
    sources:
        Restrict the accumulation to these source nodes; used internally by
        :func:`approximate_betweenness`.
    """
    centrality: Dict[NodeId, float] = {node: 0.0 for node in graph.nodes()}
    source_list = list(sources) if sources is not None else list(graph.nodes())
    for source in source_list:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        dependency = _single_source_brandes(graph, source)
        for node, value in dependency.items():
            centrality[node] += value

    n = graph.node_count
    if sources is None:
        # Each unordered pair counted twice (once per endpoint as source).
        for node in centrality:
            centrality[node] /= 2.0
        scale_pairs = (n - 1) * (n - 2) / 2.0
    else:
        # Scale sampled sums up to the full-source estimate before normalising.
        sample = max(1, len(source_list))
        for node in centrality:
            centrality[node] *= n / (2.0 * sample)
        scale_pairs = (n - 1) * (n - 2) / 2.0

    if normalized and scale_pairs > 0:
        for node in centrality:
            centrality[node] /= scale_pairs
    return centrality


def approximate_betweenness(
    graph: Graph,
    pivots: int = 64,
    normalized: bool = True,
    seed: Optional[int] = None,
) -> Dict[NodeId, float]:
    """Pivot-sampled betweenness estimate using ``pivots`` random sources."""
    require_positive_int(pivots, "pivots")
    rng = random.Random(coerce_seed(seed))
    nodes = list(graph.nodes())
    if pivots >= len(nodes):
        return betweenness_centrality(graph, normalized=normalized)
    sources = rng.sample(nodes, pivots)
    return betweenness_centrality(graph, normalized=normalized, sources=sources)


def degree_centrality(graph: Graph) -> Dict[NodeId, float]:
    """Degree divided by ``n - 1``."""
    n = graph.node_count
    if n <= 1:
        return {node: 0.0 for node in graph.nodes()}
    return {node: degree / (n - 1) for node, degree in graph.degrees().items()}


def k_core_decomposition(graph: Graph) -> Dict[NodeId, int]:
    """Return the coreness (k-core number) of every node.

    Uses the standard peeling algorithm.  The network core identified by the
    paper corresponds to the nodes with the highest coreness.
    """
    degrees = graph.degrees()
    coreness: Dict[NodeId, int] = {}
    remaining = dict(degrees)
    # Bucket nodes by current degree for O(E) peeling.
    buckets: Dict[int, set] = {}
    for node, degree in remaining.items():
        buckets.setdefault(degree, set()).add(node)

    current_k = 0
    processed: set = set()
    while len(processed) < graph.node_count:
        # Find the smallest non-empty bucket.
        degree = min(d for d, bucket in buckets.items() if bucket)
        current_k = max(current_k, degree)
        node = buckets[degree].pop()
        coreness[node] = current_k
        processed.add(node)
        for neighbor in graph.iter_neighbors(node):
            if neighbor in processed:
                continue
            old = remaining[neighbor]
            new = old - 1
            remaining[neighbor] = new
            buckets[old].discard(neighbor)
            buckets.setdefault(new, set()).add(neighbor)
    return coreness


def core_nodes(graph: Graph, fraction: float = 0.05) -> List[NodeId]:
    """Return the top ``fraction`` of nodes ranked by coreness then degree."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    coreness = k_core_decomposition(graph)
    degrees = graph.degrees()
    ranked = sorted(
        graph.nodes(), key=lambda node: (coreness[node], degrees[node]), reverse=True
    )
    count = max(1, int(round(graph.node_count * fraction)))
    return ranked[:count]


def centrality_concentration(
    graph: Graph,
    top_fraction: float = 0.05,
    pivots: int = 64,
    seed: Optional[int] = None,
) -> float:
    """Fraction of total betweenness carried by the ``top_fraction`` most central nodes.

    A value close to 1.0 means shortest paths overwhelmingly traverse a small
    core — the property the paper's inference depends on.
    """
    centrality = approximate_betweenness(graph, pivots=pivots, seed=seed)
    total = sum(centrality.values())
    if total == 0.0:
        return 0.0
    ranked = sorted(centrality.values(), reverse=True)
    count = max(1, int(round(len(ranked) * top_fraction)))
    return sum(ranked[:count]) / total
