"""Synthetic topology generators.

The paper's evaluation runs over a router-level Internet map whose only
properties that matter for the algorithm are (i) a heavy-tailed degree
distribution and (ii) a well-connected core that most shortest paths traverse.
This module provides several classical generators that reproduce those
properties at different levels of realism:

* :func:`barabasi_albert` — preferential attachment, power-law degrees.
* :func:`glp` — Generalised Linear Preference (Bu & Towsley), a BA variant
  tuned to better match measured router-level maps.
* :func:`waxman` — random geometric graph with distance-dependent edges
  (no heavy tail, used as a "null" topology in ablations).
* :func:`powerlaw_configuration_model` — degrees drawn from a discrete
  power law, wired with the configuration model and simplified.
* :func:`random_regular` — every node has the same degree (another null
  model: no core at all).
* :func:`two_tier_hierarchical` — an explicit core/edge construction used as
  a building block by :mod:`repro.topology.internet_mapper`.

All generators return :class:`repro.topology.graph.Graph` instances whose
nodes are consecutive integers starting at 0, and accept a ``rng`` argument
(:class:`random.Random`) or a ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from .._validation import (
    coerce_seed,
    require_in_range,
    require_positive_float,
    require_positive_int,
    require_probability,
)
from ..exceptions import GeneratorError
from .graph import Graph


def _make_rng(rng: Optional[random.Random], seed: Optional[int]) -> random.Random:
    """Return ``rng`` if given, else a new :class:`random.Random` seeded with ``seed``."""
    if rng is not None:
        return rng
    return random.Random(coerce_seed(seed))


def _preferential_targets(
    repeated_nodes: List[int],
    m: int,
    rng: random.Random,
    exclude: int,
) -> List[int]:
    """Pick ``m`` distinct targets from ``repeated_nodes`` proportionally to frequency."""
    targets: List[int] = []
    chosen = set()
    # Guard against pathological loops when the candidate pool is small.
    max_attempts = 50 * m + 100
    attempts = 0
    while len(targets) < m and attempts < max_attempts:
        attempts += 1
        candidate = rng.choice(repeated_nodes)
        if candidate == exclude or candidate in chosen:
            continue
        chosen.add(candidate)
        targets.append(candidate)
    if len(targets) < m:
        # Fall back to uniform sampling over all seen nodes.
        pool = [node for node in set(repeated_nodes) if node != exclude and node not in chosen]
        rng.shuffle(pool)
        targets.extend(pool[: m - len(targets)])
    return targets


def barabasi_albert(
    n: int,
    m: int = 2,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    name: str = "barabasi-albert",
) -> Graph:
    """Generate a Barabási–Albert preferential-attachment graph.

    Parameters
    ----------
    n:
        Total number of nodes (must be > m).
    m:
        Number of edges each new node attaches with.
    """
    require_positive_int(n, "n")
    require_positive_int(m, "m")
    if n <= m:
        raise GeneratorError(f"barabasi_albert requires n > m (got n={n}, m={m})")
    rng = _make_rng(rng, seed)

    graph = Graph(name=name)
    # Start from a star over the first m+1 nodes so every node has degree >= 1.
    for node in range(m + 1):
        graph.add_node(node)
    repeated_nodes: List[int] = []
    for node in range(1, m + 1):
        graph.add_edge(0, node)
        repeated_nodes.extend([0, node])

    for new_node in range(m + 1, n):
        targets = _preferential_targets(repeated_nodes, m, rng, exclude=new_node)
        for target in targets:
            graph.add_edge(new_node, target)
            repeated_nodes.extend([new_node, target])
    return graph


def glp(
    n: int,
    m: int = 2,
    p: float = 0.45,
    beta: float = 0.64,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    name: str = "glp",
) -> Graph:
    """Generate a Generalised Linear Preference (GLP) graph.

    GLP (Bu & Towsley, INFOCOM 2002) extends BA with a probability ``p`` of
    adding edges between existing nodes instead of growing, and a shift
    ``beta`` in the attachment kernel ``(degree - beta)``.  The defaults are
    the values reported to match router-level maps.
    """
    require_positive_int(n, "n")
    require_positive_int(m, "m")
    require_probability(p, "p")
    require_in_range(beta, -10.0, 0.999999, "beta")
    if n <= m + 1:
        raise GeneratorError(f"glp requires n > m + 1 (got n={n}, m={m})")
    rng = _make_rng(rng, seed)

    graph = Graph(name=name)
    for node in range(m + 1):
        graph.add_node(node)
    for node in range(1, m + 1):
        graph.add_edge(0, node)

    def pick_by_preference(exclude: Optional[int], forbidden: Optional[set] = None) -> int:
        weights: List[float] = []
        nodes: List[int] = []
        for node in graph.nodes():
            if node == exclude:
                continue
            if forbidden is not None and node in forbidden:
                continue
            weight = graph.degree(node) - beta
            if weight <= 0:
                weight = 1e-9
            nodes.append(node)
            weights.append(weight)
        total = sum(weights)
        threshold = rng.random() * total
        acc = 0.0
        for node, weight in zip(nodes, weights):
            acc += weight
            if acc >= threshold:
                return node
        return nodes[-1]

    next_node = m + 1
    while next_node < n:
        if rng.random() < p and graph.node_count > m + 1:
            # Add m new edges between existing nodes.
            for _ in range(m):
                u = pick_by_preference(exclude=None)
                forbidden = set(graph.neighbors(u)) | {u}
                if len(forbidden) >= graph.node_count:
                    continue
                v = pick_by_preference(exclude=u, forbidden=forbidden)
                graph.add_edge(u, v)
        else:
            new_node = next_node
            graph.add_node(new_node)
            added = set()
            for _ in range(min(m, graph.node_count - 1)):
                target = pick_by_preference(exclude=new_node, forbidden=added)
                graph.add_edge(new_node, target)
                added.add(target)
            next_node += 1
    return graph


def waxman(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.1,
    domain_size: float = 1.0,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    name: str = "waxman",
    ensure_connected: bool = True,
) -> Graph:
    """Generate a Waxman random geometric graph.

    Nodes are placed uniformly in a ``domain_size`` x ``domain_size`` square
    and each pair is connected with probability
    ``alpha * exp(-d / (beta * L))`` where ``d`` is their Euclidean distance
    and ``L`` the diagonal.  Node positions are stored in the ``pos`` node
    attribute so latency models can reuse them.
    """
    require_positive_int(n, "n")
    require_probability(alpha, "alpha")
    require_positive_float(beta, "beta")
    require_positive_float(domain_size, "domain_size")
    rng = _make_rng(rng, seed)

    graph = Graph(name=name)
    positions: Dict[int, Tuple[float, float]] = {}
    for node in range(n):
        pos = (rng.uniform(0.0, domain_size), rng.uniform(0.0, domain_size))
        positions[node] = pos
        graph.add_node(node, pos=pos)

    diagonal = math.sqrt(2.0) * domain_size
    for u in range(n):
        for v in range(u + 1, n):
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            distance = math.hypot(dx, dy)
            probability = alpha * math.exp(-distance / (beta * diagonal))
            if rng.random() < probability:
                graph.add_edge(u, v, distance=distance)

    if ensure_connected:
        _connect_components(graph, rng, positions)
    return graph


def _connect_components(
    graph: Graph,
    rng: random.Random,
    positions: Optional[Dict[int, Tuple[float, float]]] = None,
) -> None:
    """Add edges between components until the graph is connected."""
    components = graph.connected_components()
    while len(components) > 1:
        components.sort(key=len, reverse=True)
        main, other = components[0], components[1]
        u = rng.choice(main)
        v = rng.choice(other)
        attrs = {}
        if positions is not None and u in positions and v in positions:
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            attrs["distance"] = math.hypot(dx, dy)
        graph.add_edge(u, v, **attrs)
        components = graph.connected_components()


def powerlaw_degree_sequence(
    n: int,
    exponent: float = 2.2,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> List[int]:
    """Draw ``n`` degrees from a discrete power law ``P(k) ~ k^-exponent``.

    The sequence sum is forced to be even so it is graphical for the
    configuration model.
    """
    require_positive_int(n, "n")
    require_positive_float(exponent, "exponent")
    require_positive_int(min_degree, "min_degree")
    rng = _make_rng(rng, seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(math.sqrt(n) * 2))
    if max_degree < min_degree:
        raise GeneratorError(
            f"max_degree ({max_degree}) must be >= min_degree ({min_degree})"
        )

    degrees_support = list(range(min_degree, max_degree + 1))
    weights = [k ** (-exponent) for k in degrees_support]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def draw() -> int:
        u = rng.random()
        for value, threshold in zip(degrees_support, cumulative):
            if u <= threshold:
                return value
        return degrees_support[-1]

    sequence = [draw() for _ in range(n)]
    if sum(sequence) % 2 == 1:
        # Bump a random minimum-degree entry to make the sum even.
        index = rng.randrange(n)
        sequence[index] += 1
    return sequence


def powerlaw_configuration_model(
    n: int,
    exponent: float = 2.2,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    name: str = "powerlaw-cm",
    ensure_connected: bool = True,
) -> Graph:
    """Generate a simple graph with an (approximate) power-law degree sequence.

    The configuration model creates multi-edges and self-loops; those are
    dropped, so realised degrees can be slightly below the drawn sequence —
    the heavy tail is preserved, which is all the evaluation needs.
    """
    rng = _make_rng(rng, seed)
    sequence = powerlaw_degree_sequence(
        n, exponent=exponent, min_degree=min_degree, max_degree=max_degree, rng=rng
    )

    stubs: List[int] = []
    for node, degree in enumerate(sequence):
        stubs.extend([node] * degree)
    rng.shuffle(stubs)

    graph = Graph(name=name)
    for node in range(n):
        graph.add_node(node)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)

    if ensure_connected:
        _connect_components(graph, rng)
    return graph


def random_regular(
    n: int,
    degree: int = 3,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    name: str = "random-regular",
    max_retries: int = 50,
) -> Graph:
    """Generate an (approximately) random ``degree``-regular graph.

    Used as a null model without any core: with homogeneous degrees the
    path-tree inference should lose most of its advantage, which the
    ablation benchmarks verify.
    """
    require_positive_int(n, "n")
    require_positive_int(degree, "degree")
    if n <= degree:
        raise GeneratorError(f"random_regular requires n > degree (got n={n}, degree={degree})")
    if (n * degree) % 2 == 1:
        raise GeneratorError("n * degree must be even for a regular graph")
    rng = _make_rng(rng, seed)

    for _ in range(max_retries):
        stubs = [node for node in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        graph = Graph(name=name)
        for node in range(n):
            graph.add_node(node)
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or graph.has_edge(u, v):
                ok = False
                break
            graph.add_edge(u, v)
        if ok and graph.is_connected():
            return graph
    # Last resort: accept a not-exactly-regular simple graph.
    stubs = [node for node in range(n) for _ in range(degree)]
    rng.shuffle(stubs)
    graph = Graph(name=name)
    for node in range(n):
        graph.add_node(node)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
    _connect_components(graph, rng)
    return graph


def two_tier_hierarchical(
    core_size: int,
    edge_size: int,
    core_attachment: int = 3,
    edge_attachment: int = 1,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    name: str = "two-tier",
) -> Graph:
    """Generate an explicit two-tier (core + access) topology.

    The core is a dense preferential-attachment graph of ``core_size`` nodes;
    ``edge_size`` access routers attach to ``edge_attachment`` core (or
    previously added access) routers chosen preferentially.  Core nodes carry
    the node attribute ``tier='core'``, access nodes ``tier='edge'``.
    """
    require_positive_int(core_size, "core_size")
    require_positive_int(edge_size, "edge_size")
    require_positive_int(core_attachment, "core_attachment")
    require_positive_int(edge_attachment, "edge_attachment")
    if core_size <= core_attachment:
        raise GeneratorError("core_size must exceed core_attachment")
    rng = _make_rng(rng, seed)

    graph = barabasi_albert(core_size, m=core_attachment, rng=rng, name=name)
    for node in range(core_size):
        graph.set_node_attribute(node, "tier", "core")

    repeated: List[int] = []
    for node in graph.nodes():
        repeated.extend([node] * graph.degree(node))

    for offset in range(edge_size):
        new_node = core_size + offset
        graph.add_node(new_node, tier="edge")
        targets = _preferential_targets(repeated, edge_attachment, rng, exclude=new_node)
        for target in targets:
            graph.add_edge(new_node, target)
            repeated.extend([new_node, target])
    return graph


GENERATORS = {
    "barabasi_albert": barabasi_albert,
    "glp": glp,
    "waxman": waxman,
    "powerlaw_configuration_model": powerlaw_configuration_model,
    "random_regular": random_regular,
    "two_tier_hierarchical": two_tier_hierarchical,
}
"""Registry mapping generator names to callables (used by the CLI and scenarios)."""


def generate(kind: str, **kwargs) -> Graph:
    """Dispatch to a named generator from :data:`GENERATORS`."""
    if kind not in GENERATORS:
        raise GeneratorError(
            f"unknown generator {kind!r}; available: {sorted(GENERATORS)}"
        )
    return GENERATORS[kind](**kwargs)
