"""Undirected weighted graph used as the router-level topology substrate.

The class is intentionally small and self-contained: an adjacency-dict graph
with per-node and per-edge attributes, designed for the access patterns the
rest of the library needs (neighbour iteration, degree queries, BFS/Dijkstra
from :mod:`repro.routing`).  A :func:`Graph.to_networkx` /
:func:`Graph.from_networkx` bridge is provided for analyses that want to lean
on :mod:`networkx` (e.g. exact betweenness on small graphs).

Node identifiers can be any hashable object; the topology generators use
consecutive integers.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..exceptions import EdgeNotFoundError, NodeNotFoundError, TopologyError

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]

DEFAULT_WEIGHT_KEY = "latency"


def edge_key(u: NodeId, v: NodeId) -> Edge:
    """Return a canonical (order-independent) key for the undirected edge.

    Node ids that are mutually orderable (the common case: all-int or all-str
    maps) are compared directly; ids whose comparison raises ``TypeError``
    (mixed types) *or* answers False both ways (partial orders such as NaN
    or sets) fall back to comparing their ``repr`` so the key stays
    canonical without paying for string formatting on every call.
    """
    try:
        if u <= v:  # type: ignore[operator]
            return (u, v)
        if v <= u:  # type: ignore[operator]
            return (v, u)
    except TypeError:
        pass
    return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """A simple undirected graph with node and edge attributes.

    Parameters
    ----------
    name:
        Optional human-readable name recorded on the instance (useful when a
        scenario mixes several generated topologies).
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._adjacency: Dict[NodeId, Dict[NodeId, Dict[str, Any]]] = {}
        self._node_attrs: Dict[NodeId, Dict[str, Any]] = {}
        self._edge_count = 0
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every structural or weight mutation.

        Snapshot consumers (:class:`~repro.routing.distance_engine.CsrTopology`)
        compare this against the generation they were built at to decide
        whether a cached snapshot is still valid.  The counter is bumped by
        ``add_node`` (new nodes), ``add_edge``, ``remove_node``,
        ``remove_edge`` and ``set_edge_attribute``; mutating an attribute
        dict returned by :meth:`edge_attributes` in place is *not* tracked —
        use :meth:`set_edge_attribute` for weight changes that must
        invalidate snapshots.
        """
        return self._generation

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: NodeId, **attrs: Any) -> None:
        """Add ``node`` (idempotent); merge ``attrs`` into its attribute dict."""
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self._node_attrs[node] = {}
            self._generation += 1
        if attrs:
            self._node_attrs[node].update(attrs)

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adjacency[node]):
            self.remove_edge(node, neighbor)
        del self._adjacency[node]
        del self._node_attrs[node]
        self._generation += 1

    def has_node(self, node: NodeId) -> bool:
        """Return True if ``node`` is part of the graph."""
        return node in self._adjacency

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers (insertion order)."""
        return iter(self._adjacency)

    def node_attributes(self, node: NodeId) -> Dict[str, Any]:
        """Return the (mutable) attribute dict of ``node``."""
        if node not in self._node_attrs:
            raise NodeNotFoundError(node)
        return self._node_attrs[node]

    def set_node_attribute(self, node: NodeId, key: str, value: Any) -> None:
        """Set a single attribute on ``node``."""
        self.node_attributes(node)[key] = value

    def get_node_attribute(self, node: NodeId, key: str, default: Any = None) -> Any:
        """Return attribute ``key`` of ``node`` or ``default`` if unset."""
        return self.node_attributes(node).get(key, default)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    # ------------------------------------------------------------------ edges

    def add_edge(self, u: NodeId, v: NodeId, **attrs: Any) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed.

        Self-loops are rejected because router-level maps never contain them
        and allowing them would complicate shortest-path bookkeeping.
        Adding an existing edge merges the new attributes into the old ones.
        """
        if u == v:
            raise TopologyError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        is_new = v not in self._adjacency[u]
        if is_new:
            shared: Dict[str, Any] = {}
            self._adjacency[u][v] = shared
            self._adjacency[v][u] = shared
            self._edge_count += 1
        if attrs:
            self._adjacency[u][v].update(attrs)
        if is_new or attrs:
            self._generation += 1

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``(u, v)``."""
        if u not in self._adjacency or v not in self._adjacency[u]:
            raise EdgeNotFoundError(u, v)
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._edge_count -= 1
        self._generation += 1

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return True if the undirected edge ``(u, v)`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once.

        Each edge is yielded when its first endpoint (in node insertion
        order) is visited, which is the same orientation and order the old
        canonical-key dedup produced — without formatting a key per edge.
        """
        seen = set()
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def edge_attributes(self, u: NodeId, v: NodeId) -> Dict[str, Any]:
        """Return the (mutable, shared) attribute dict of edge ``(u, v)``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return self._adjacency[u][v]

    def set_edge_attribute(self, u: NodeId, v: NodeId, key: str, value: Any) -> None:
        """Set a single attribute on edge ``(u, v)``."""
        self.edge_attributes(u, v)[key] = value
        self._generation += 1

    def get_edge_attribute(self, u: NodeId, v: NodeId, key: str, default: Any = None) -> Any:
        """Return attribute ``key`` of edge ``(u, v)`` or ``default``."""
        return self.edge_attributes(u, v).get(key, default)

    def edge_weight(self, u: NodeId, v: NodeId, key: str = DEFAULT_WEIGHT_KEY, default: float = 1.0) -> float:
        """Return the numeric weight of edge ``(u, v)`` (defaults to 1.0)."""
        return float(self.edge_attributes(u, v).get(key, default))

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    # -------------------------------------------------------------- neighbours

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Return the list of neighbours of ``node``."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return list(self._adjacency[node])

    def iter_neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over neighbours of ``node`` without building a list."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return iter(self._adjacency[node])

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return len(self._adjacency[node])

    def degrees(self) -> Dict[NodeId, int]:
        """Return a dict mapping every node to its degree."""
        return {node: len(neighbors) for node, neighbors in self._adjacency.items()}

    def nodes_with_degree(self, degree: int) -> List[NodeId]:
        """Return all nodes whose degree equals ``degree``."""
        return [node for node, neighbors in self._adjacency.items() if len(neighbors) == degree]

    def nodes_with_degree_between(self, low: int, high: int) -> List[NodeId]:
        """Return all nodes whose degree lies in the inclusive range [low, high]."""
        return [
            node
            for node, neighbors in self._adjacency.items()
            if low <= len(neighbors) <= high
        ]

    # ----------------------------------------------------------- connectivity

    def connected_component(self, start: NodeId) -> List[NodeId]:
        """Return the nodes reachable from ``start`` (including ``start``)."""
        if start not in self._adjacency:
            raise NodeNotFoundError(start)
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: List[NodeId] = []
            for node in frontier:
                for neighbor in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return list(seen)

    def connected_components(self) -> List[List[NodeId]]:
        """Return all connected components as lists of nodes."""
        remaining = set(self._adjacency)
        components: List[List[NodeId]] = []
        while remaining:
            start = next(iter(remaining))
            component = self.connected_component(start)
            components.append(component)
            remaining.difference_update(component)
        return components

    def is_connected(self) -> bool:
        """Return True if the graph is non-empty and connected."""
        if self.node_count == 0:
            return False
        return len(self.connected_component(next(iter(self._adjacency)))) == self.node_count

    def largest_component_subgraph(self) -> "Graph":
        """Return a copy restricted to the largest connected component."""
        if self.node_count == 0:
            return Graph(name=self.name)
        components = self.connected_components()
        largest = max(components, key=len)
        return self.subgraph(largest)

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return a new graph containing ``nodes`` and the edges between them."""
        keep = set(nodes)
        missing = [node for node in keep if node not in self._adjacency]
        if missing:
            raise NodeNotFoundError(missing[0])
        result = Graph(name=self.name)
        for node in keep:
            result.add_node(node, **dict(self._node_attrs[node]))
        for u, v in self.edges():
            if u in keep and v in keep:
                result.add_edge(u, v, **dict(self._adjacency[u][v]))
        return result

    def copy(self) -> "Graph":
        """Return a deep-ish copy (attribute dicts are shallow-copied)."""
        return self.subgraph(list(self.nodes()))

    # ------------------------------------------------------------ conversions

    def to_networkx(self):
        """Return an equivalent :class:`networkx.Graph`."""
        import networkx as nx

        nx_graph = nx.Graph(name=self.name)
        for node in self.nodes():
            nx_graph.add_node(node, **dict(self._node_attrs[node]))
        for u, v in self.edges():
            nx_graph.add_edge(u, v, **dict(self._adjacency[u][v]))
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph, name: Optional[str] = None) -> "Graph":
        """Build a :class:`Graph` from a :class:`networkx.Graph`."""
        graph = cls(name=name or str(nx_graph.name or "graph"))
        for node, attrs in nx_graph.nodes(data=True):
            graph.add_node(node, **dict(attrs))
        for u, v, attrs in nx_graph.edges(data=True):
            if u == v:
                continue
            graph.add_edge(u, v, **dict(attrs))
        return graph

    @classmethod
    def from_edge_list(
        cls,
        edges: Iterable[Edge],
        name: str = "graph",
        weights: Optional[Mapping[Edge, float]] = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        ``weights`` optionally maps canonical edge keys to a latency value.
        """
        graph = cls(name=name)
        for u, v in edges:
            attrs: Dict[str, Any] = {}
            if weights is not None:
                key = edge_key(u, v)
                if key in weights:
                    attrs[DEFAULT_WEIGHT_KEY] = float(weights[key])
            graph.add_edge(u, v, **attrs)
        return graph

    def to_edge_list(self) -> List[Edge]:
        """Return the edges as a list of pairs."""
        return list(self.edges())

    # ---------------------------------------------------------------- dunders

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )
