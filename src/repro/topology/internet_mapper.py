"""Synthetic router-level Internet map (stand-in for the *nem* mapper).

The paper evaluates on a router-level (IR) map obtained with Magoni & Hoerdt's
*nem* Internet mapper and loaded into PeerSim.  That dataset is not available,
so this module builds a synthetic map that reproduces the structural features
the paper's argument relies on:

* a **heavy-tailed degree distribution** (a small number of very-high-degree
  core routers, many degree-1 access routers);
* an explicit **core / edge hierarchy** so that "most shortest paths traverse
  the core" (high betweenness concentration);
* plenty of **degree-1 routers** to attach peers to, and a pool of
  **medium-degree routers** to attach landmarks to, exactly as the paper's
  simulation setup describes.

The main entry point is :func:`generate_router_map`, which returns a
:class:`RouterMap` wrapping the generated graph together with convenience
accessors used by the experiment harness (``stub_routers``,
``medium_degree_routers``, ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .._validation import (
    coerce_seed,
    require_positive_float,
    require_positive_int,
    require_probability,
)
from ..exceptions import GeneratorError
from .generators import _preferential_targets, barabasi_albert
from .graph import Graph
from .latency import LatencyModel, TieredLatencyModel


TIER_CORE = "core"
TIER_TRANSIT = "transit"
TIER_STUB = "stub"


@dataclass
class RouterMapConfig:
    """Parameters of the synthetic router-level map.

    The defaults yield a map of roughly 4 000 routers, which is large enough
    for the paper's 600–1 400 peer sweeps while remaining fast to route over.
    """

    core_size: int = 60
    """Number of core (backbone) routers."""

    core_attachment: int = 4
    """Preferential-attachment parameter inside the core."""

    transit_size: int = 600
    """Number of transit (regional) routers that attach to the core."""

    transit_attachment: int = 2
    """How many uplinks each transit router has."""

    stub_size: int = 3400
    """Number of stub (access) routers; most end up with degree 1."""

    stub_attachment: int = 1
    """How many uplinks each stub router has (1 keeps them degree-1)."""

    stub_tree_probability: float = 0.45
    """Probability that a new stub router attaches below an existing stub router.

    This grows multi-level access trees under the transit routers, which gives
    the map the hop-distance spread a real router-level topology has: peers in
    the same access tree are a few hops apart while peers in different regions
    must cross the core.  Set to 0.0 for a flat (single-level) access layer.
    """

    extra_peering_probability: float = 0.05
    """Probability of adding a lateral (peering) link when creating a transit router."""

    seed: Optional[int] = None
    """RNG seed for reproducible maps."""

    def __post_init__(self) -> None:
        require_positive_int(self.core_size, "core_size")
        require_positive_int(self.core_attachment, "core_attachment")
        require_positive_int(self.transit_size, "transit_size")
        require_positive_int(self.transit_attachment, "transit_attachment")
        require_positive_int(self.stub_size, "stub_size")
        require_positive_int(self.stub_attachment, "stub_attachment")
        require_probability(self.stub_tree_probability, "stub_tree_probability")
        require_probability(self.extra_peering_probability, "extra_peering_probability")
        coerce_seed(self.seed)
        if self.core_size <= self.core_attachment:
            raise GeneratorError("core_size must exceed core_attachment")

    @property
    def total_routers(self) -> int:
        """Total number of routers the map will contain."""
        return self.core_size + self.transit_size + self.stub_size


@dataclass
class RouterMap:
    """A generated router-level map plus tier metadata.

    Attributes
    ----------
    graph:
        The router graph; node attribute ``tier`` is one of ``core``,
        ``transit`` or ``stub``, and edges carry a ``latency`` attribute in
        milliseconds.
    config:
        The :class:`RouterMapConfig` used to build it.
    """

    graph: Graph
    config: RouterMapConfig
    tiers: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def router_count(self) -> int:
        """Number of routers in the map."""
        return self.graph.node_count

    def routers_in_tier(self, tier: str) -> List[int]:
        """Return the routers labelled with ``tier``."""
        return list(self.tiers.get(tier, []))

    def stub_routers(self) -> List[int]:
        """Return all degree-1 routers — the attachment points for peers.

        The paper attaches peers to routers "with degree equals to one"; we
        return exactly those, regardless of the tier label, so the experiment
        code mirrors the paper's setup.
        """
        return self.graph.nodes_with_degree(1)

    def medium_degree_routers(
        self, low: Optional[int] = None, high: Optional[int] = None
    ) -> List[int]:
        """Return routers with a medium degree — landmark attachment points.

        By default "medium" is interpreted as strictly above the stub degree
        (>= 3) but below the top decile of the degree distribution, which
        matches the paper's informal "medium-size degree" placement.
        """
        degrees = sorted(self.graph.degrees().values())
        if not degrees:
            return []
        if low is None:
            low = 3
        if high is None:
            high = max(low, degrees[int(len(degrees) * 0.9)])
        return self.graph.nodes_with_degree_between(low, high)

    def core_routers(self) -> List[int]:
        """Return the routers in the backbone tier."""
        return self.routers_in_tier(TIER_CORE)

    def degree_histogram(self) -> Dict[int, int]:
        """Return ``{degree: count}`` over all routers."""
        histogram: Dict[int, int] = {}
        for degree in self.graph.degrees().values():
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram


def generate_router_map(
    config: Optional[RouterMapConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    **overrides,
) -> RouterMap:
    """Generate a synthetic router-level map.

    Parameters
    ----------
    config:
        Full configuration object; if omitted, one is built from the keyword
        ``overrides`` (e.g. ``generate_router_map(stub_size=1000, seed=1)``).
    latency_model:
        Model used to assign per-link latencies; defaults to
        :class:`repro.topology.latency.TieredLatencyModel`, which gives short
        access links and longer core links.
    """
    if config is None:
        config = RouterMapConfig(**overrides)
    elif overrides:
        raise GeneratorError("pass either a config object or keyword overrides, not both")

    rng = random.Random(config.seed)

    # --- Tier 1: the backbone core (dense preferential attachment). ---------
    graph = barabasi_albert(
        config.core_size, m=config.core_attachment, rng=rng, name="router-map"
    )
    tiers: Dict[str, List[int]] = {TIER_CORE: [], TIER_TRANSIT: [], TIER_STUB: []}
    for node in range(config.core_size):
        graph.set_node_attribute(node, "tier", TIER_CORE)
        tiers[TIER_CORE].append(node)

    # Preferential-attachment pool: nodes repeated proportionally to degree.
    repeated: List[int] = []
    for node in graph.nodes():
        repeated.extend([node] * graph.degree(node))

    # --- Tier 2: transit routers attach preferentially to the core. ---------
    next_id = config.core_size
    for _ in range(config.transit_size):
        node = next_id
        next_id += 1
        graph.add_node(node, tier=TIER_TRANSIT)
        tiers[TIER_TRANSIT].append(node)
        targets = _preferential_targets(
            repeated, config.transit_attachment, rng, exclude=node
        )
        for target in targets:
            graph.add_edge(node, target)
            repeated.extend([node, target])
        if rng.random() < config.extra_peering_probability and len(tiers[TIER_TRANSIT]) > 2:
            peer = rng.choice(tiers[TIER_TRANSIT])
            if peer != node and not graph.has_edge(node, peer):
                graph.add_edge(node, peer)
                repeated.extend([node, peer])

    # --- Tier 3: stub routers hang off transit/core routers. ----------------
    # Stub routers do NOT enter the preferential pool, so they stay low degree
    # and most keep degree exactly stub_attachment (1 by default).
    attach_pool = list(tiers[TIER_CORE]) + list(tiers[TIER_TRANSIT])
    attach_weights = [graph.degree(node) for node in attach_pool]
    total_weight = float(sum(attach_weights))
    cumulative: List[float] = []
    acc = 0.0
    for weight in attach_weights:
        acc += weight / total_weight
        cumulative.append(acc)

    def pick_attach_point() -> int:
        u = rng.random()
        for node, threshold in zip(attach_pool, cumulative):
            if u <= threshold:
                return node
        return attach_pool[-1]

    for _ in range(config.stub_size):
        node = next_id
        next_id += 1
        graph.add_node(node, tier=TIER_STUB)
        tiers[TIER_STUB].append(node)
        attached = set()
        for _ in range(config.stub_attachment):
            # Either extend an existing access tree (deepening the edge) or
            # start a new branch under a transit/core router.
            if (
                len(tiers[TIER_STUB]) > 1
                and rng.random() < config.stub_tree_probability
            ):
                target = rng.choice(tiers[TIER_STUB][:-1])
            else:
                target = pick_attach_point()
            if target in attached:
                continue
            attached.add(target)
            graph.add_edge(node, target)

    # --- Latencies. ----------------------------------------------------------
    if latency_model is None:
        latency_model = TieredLatencyModel(seed=config.seed)
    latency_model.assign(graph)

    return RouterMap(graph=graph, config=config, tiers=tiers)


def small_router_map(seed: Optional[int] = None) -> RouterMap:
    """Return a small (~600 router) map, convenient for unit tests."""
    config = RouterMapConfig(
        core_size=20,
        core_attachment=3,
        transit_size=100,
        transit_attachment=2,
        stub_size=480,
        stub_attachment=1,
        seed=seed,
    )
    return generate_router_map(config)


def paper_router_map(seed: Optional[int] = None) -> RouterMap:
    """Return the default-size map used by the Figure 1 reproduction."""
    config = RouterMapConfig(seed=seed)
    return generate_router_map(config)
