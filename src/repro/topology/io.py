"""Reading and writing router-level topologies.

The paper's evaluation loads a router-level map produced by an external
Internet mapper.  When such a dataset *is* available (e.g. a CAIDA ITDK or
nem-style edge list), these helpers load it into the same
:class:`~repro.topology.graph.Graph` / :class:`~repro.topology.internet_mapper.RouterMap`
objects the rest of the library consumes, so real maps and synthetic maps are
interchangeable in every experiment.  The synthetic maps can also be exported
for inspection or reuse.

Formats
-------
* **edge list** — one ``u v [latency_ms]`` line per link, ``#`` comments
  allowed.  The de-facto exchange format of router-level datasets.
* **JSON** — a self-describing dump including node attributes (tiers) and
  edge attributes, used to round-trip :class:`RouterMap` objects exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import TopologyError
from .graph import DEFAULT_WEIGHT_KEY, Graph
from .internet_mapper import RouterMap, RouterMapConfig

PathLike = Union[str, Path]


def _coerce_node(token: str):
    """Edge-list node tokens become ints when they look like ints."""
    try:
        return int(token)
    except ValueError:
        return token


# ---------------------------------------------------------------- edge lists


def write_edge_list(graph: Graph, path: PathLike, include_latency: bool = True) -> Path:
    """Write ``graph`` as an edge list; returns the written path."""
    path = Path(path)
    lines = [
        f"# {graph.name}: {graph.node_count} nodes, {graph.edge_count} edges",
    ]
    for u, v in graph.edges():
        if include_latency:
            latency = graph.edge_weight(u, v)
            lines.append(f"{u} {v} {latency:.6g}")
        else:
            lines.append(f"{u} {v}")
    path.write_text("\n".join(lines) + "\n")
    return path


def read_edge_list(path: PathLike, name: Optional[str] = None) -> Graph:
    """Read an edge-list file into a :class:`Graph`.

    Lines are ``u v`` or ``u v latency``; blank lines and ``#`` comments are
    ignored.  Malformed lines raise :class:`~repro.exceptions.TopologyError`
    with the offending line number.
    """
    path = Path(path)
    graph = Graph(name=name or path.stem)
    for line_number, raw_line in enumerate(path.read_text().splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise TopologyError(f"{path}:{line_number}: expected 'u v [latency]', got {raw_line!r}")
        u, v = _coerce_node(parts[0]), _coerce_node(parts[1])
        if u == v:
            raise TopologyError(f"{path}:{line_number}: self-loop {u!r}")
        attrs = {}
        if len(parts) == 3:
            try:
                attrs[DEFAULT_WEIGHT_KEY] = float(parts[2])
            except ValueError:
                raise TopologyError(
                    f"{path}:{line_number}: latency must be a number, got {parts[2]!r}"
                ) from None
        graph.add_edge(u, v, **attrs)
    if graph.node_count == 0:
        raise TopologyError(f"{path}: no edges found")
    return graph


# --------------------------------------------------------------------- JSON


def graph_to_dict(graph: Graph) -> Dict:
    """Plain-dict representation of a graph (nodes, attributes, edges)."""
    return {
        "name": graph.name,
        "nodes": [
            {"id": node, "attrs": dict(graph.node_attributes(node))} for node in graph.nodes()
        ],
        "edges": [
            {"u": u, "v": v, "attrs": dict(graph.edge_attributes(u, v))} for u, v in graph.edges()
        ],
    }


def graph_from_dict(data: Dict) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    try:
        graph = Graph(name=data.get("name", "graph"))
        for node_entry in data["nodes"]:
            graph.add_node(node_entry["id"], **dict(node_entry.get("attrs", {})))
        for edge_entry in data["edges"]:
            graph.add_edge(edge_entry["u"], edge_entry["v"], **dict(edge_entry.get("attrs", {})))
    except (KeyError, TypeError) as error:
        raise TopologyError(f"malformed graph dict: {error}") from error
    return graph


def write_graph_json(graph: Graph, path: PathLike) -> Path:
    """Write a graph as JSON; returns the written path."""
    path = Path(path)
    path.write_text(json.dumps(graph_to_dict(graph), indent=1))
    return path


def read_graph_json(path: PathLike) -> Graph:
    """Read a graph previously written by :func:`write_graph_json`."""
    return graph_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------- RouterMap


def save_router_map(router_map: RouterMap, path: PathLike) -> Path:
    """Persist a :class:`RouterMap` (graph + tiers + config) as JSON."""
    path = Path(path)
    payload = {
        "graph": graph_to_dict(router_map.graph),
        "tiers": {tier: list(nodes) for tier, nodes in router_map.tiers.items()},
        "config": {
            "core_size": router_map.config.core_size,
            "core_attachment": router_map.config.core_attachment,
            "transit_size": router_map.config.transit_size,
            "transit_attachment": router_map.config.transit_attachment,
            "stub_size": router_map.config.stub_size,
            "stub_attachment": router_map.config.stub_attachment,
            "stub_tree_probability": router_map.config.stub_tree_probability,
            "extra_peering_probability": router_map.config.extra_peering_probability,
            "seed": router_map.config.seed,
        },
    }
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_router_map(path: PathLike) -> RouterMap:
    """Load a :class:`RouterMap` previously saved by :func:`save_router_map`."""
    try:
        payload = json.loads(Path(path).read_text())
        graph = graph_from_dict(payload["graph"])
        tiers = {tier: list(nodes) for tier, nodes in payload["tiers"].items()}
        config = RouterMapConfig(**payload["config"])
    except (KeyError, TypeError, ValueError) as error:
        raise TopologyError(f"malformed router-map file {path}: {error}") from error
    return RouterMap(graph=graph, config=config, tiers=tiers)


def router_map_from_graph(graph: Graph, config: Optional[RouterMapConfig] = None) -> RouterMap:
    """Wrap an externally loaded router graph as a :class:`RouterMap`.

    Tier labels are taken from the ``tier`` node attribute when present;
    otherwise nodes are classified by degree (degree 1 → stub, top decile →
    core, the rest → transit), which is what the experiments need from a real
    measured map: degree-1 routers to host peers and medium-degree routers to
    host landmarks.
    """
    tiers: Dict[str, List] = {"core": [], "transit": [], "stub": []}
    degrees = graph.degrees()
    if degrees:
        ordered = sorted(degrees.values())
        core_threshold = ordered[int(len(ordered) * 0.9)] if len(ordered) > 10 else max(ordered)
    else:
        core_threshold = 0
    for node in graph.nodes():
        tier = graph.get_node_attribute(node, "tier")
        if tier not in tiers:
            degree = degrees[node]
            if degree <= 1:
                tier = "stub"
            elif degree >= core_threshold:
                tier = "core"
            else:
                tier = "transit"
            graph.set_node_attribute(node, "tier", tier)
        tiers[tier].append(node)
    if config is None:
        core_size = max(2, len(tiers["core"]))
        config = RouterMapConfig(
            core_size=core_size,
            core_attachment=max(1, min(4, core_size - 1)),
            transit_size=max(1, len(tiers["transit"])),
            stub_size=max(1, len(tiers["stub"])),
        )
    return RouterMap(graph=graph, config=config, tiers=tiers)
