"""Link-latency models for generated topologies.

The paper's metric is hop distance, but two parts of the system need
latencies: the newcomer must pick its *closest landmark* "in terms of
latency", and the streaming examples need realistic RTTs.  Real per-link
latency data is not available for a synthetic map, so these models synthesise
it.  All models write the latency (in milliseconds) into the edge attribute
``latency`` (:data:`repro.topology.graph.DEFAULT_WEIGHT_KEY`), which the
routing layer uses as its default weight.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Optional, Tuple

from .._validation import coerce_seed, require_non_negative_float, require_positive_float
from .graph import DEFAULT_WEIGHT_KEY, Graph


class LatencyModel(ABC):
    """Base class: assigns a latency to every edge of a graph."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = coerce_seed(seed)
        self._rng = random.Random(self._seed)

    @abstractmethod
    def edge_latency(self, graph: Graph, u, v) -> float:
        """Return the latency (ms) to assign to edge ``(u, v)``."""

    def assign(self, graph: Graph, key: str = DEFAULT_WEIGHT_KEY) -> None:
        """Write a latency into every edge's ``key`` attribute."""
        for u, v in graph.edges():
            graph.set_edge_attribute(u, v, key, self.edge_latency(graph, u, v))


class ConstantLatencyModel(LatencyModel):
    """Every link has the same latency (hop count scaled by a constant)."""

    def __init__(self, latency_ms: float = 1.0, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.latency_ms = require_positive_float(latency_ms, "latency_ms")

    def edge_latency(self, graph: Graph, u, v) -> float:
        return self.latency_ms


class UniformLatencyModel(LatencyModel):
    """Latency drawn uniformly from ``[low_ms, high_ms]`` per link."""

    def __init__(self, low_ms: float = 1.0, high_ms: float = 20.0, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.low_ms = require_positive_float(low_ms, "low_ms")
        self.high_ms = require_positive_float(high_ms, "high_ms")
        if high_ms < low_ms:
            raise ValueError(f"high_ms ({high_ms}) must be >= low_ms ({low_ms})")

    def edge_latency(self, graph: Graph, u, v) -> float:
        return self._rng.uniform(self.low_ms, self.high_ms)


class LogNormalLatencyModel(LatencyModel):
    """Latency drawn from a log-normal distribution (heavy-ish tail).

    Measured per-link latencies are highly skewed; a log-normal with a small
    sigma reproduces the shape without extreme outliers.
    """

    def __init__(
        self,
        median_ms: float = 5.0,
        sigma: float = 0.6,
        minimum_ms: float = 0.1,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        self.median_ms = require_positive_float(median_ms, "median_ms")
        self.sigma = require_positive_float(sigma, "sigma")
        self.minimum_ms = require_non_negative_float(minimum_ms, "minimum_ms")

    def edge_latency(self, graph: Graph, u, v) -> float:
        mu = math.log(self.median_ms)
        sample = self._rng.lognormvariate(mu, self.sigma)
        return max(self.minimum_ms, sample)


class TieredLatencyModel(LatencyModel):
    """Latency depends on the tiers of the link endpoints.

    Core–core links model long-haul backbone links (higher propagation
    delay), access links (stub–anything) are short, and everything else sits
    in between.  A small multiplicative jitter keeps ties rare.  This is the
    default model used by :func:`repro.topology.internet_mapper.generate_router_map`.
    """

    def __init__(
        self,
        core_core_ms: float = 12.0,
        core_transit_ms: float = 6.0,
        transit_transit_ms: float = 4.0,
        access_ms: float = 2.0,
        jitter_fraction: float = 0.3,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        self.core_core_ms = require_positive_float(core_core_ms, "core_core_ms")
        self.core_transit_ms = require_positive_float(core_transit_ms, "core_transit_ms")
        self.transit_transit_ms = require_positive_float(transit_transit_ms, "transit_transit_ms")
        self.access_ms = require_positive_float(access_ms, "access_ms")
        self.jitter_fraction = require_non_negative_float(jitter_fraction, "jitter_fraction")

    def _base_latency(self, tier_u: str, tier_v: str) -> float:
        tiers = {tier_u, tier_v}
        if "stub" in tiers:
            return self.access_ms
        if tiers == {"core"}:
            return self.core_core_ms
        if tiers == {"core", "transit"}:
            return self.core_transit_ms
        return self.transit_transit_ms

    def edge_latency(self, graph: Graph, u, v) -> float:
        tier_u = graph.get_node_attribute(u, "tier", "transit")
        tier_v = graph.get_node_attribute(v, "tier", "transit")
        base = self._base_latency(tier_u, tier_v)
        jitter = 1.0 + self._rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return max(0.05, base * jitter)


class EuclideanLatencyModel(LatencyModel):
    """Latency proportional to the Euclidean distance between node positions.

    Requires node attribute ``pos`` (set e.g. by the Waxman generator).  Nodes
    without a position fall back to ``fallback_ms``.
    """

    def __init__(
        self,
        ms_per_unit: float = 50.0,
        minimum_ms: float = 0.5,
        fallback_ms: float = 5.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        self.ms_per_unit = require_positive_float(ms_per_unit, "ms_per_unit")
        self.minimum_ms = require_positive_float(minimum_ms, "minimum_ms")
        self.fallback_ms = require_positive_float(fallback_ms, "fallback_ms")

    @staticmethod
    def _distance(pos_u: Tuple[float, float], pos_v: Tuple[float, float]) -> float:
        return math.hypot(pos_u[0] - pos_v[0], pos_u[1] - pos_v[1])

    def edge_latency(self, graph: Graph, u, v) -> float:
        pos_u = graph.get_node_attribute(u, "pos")
        pos_v = graph.get_node_attribute(v, "pos")
        if pos_u is None or pos_v is None:
            return self.fallback_ms
        return max(self.minimum_ms, self._distance(pos_u, pos_v) * self.ms_per_unit)
