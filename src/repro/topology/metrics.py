"""Structural metrics of generated topologies.

These are used by the tests (to assert that the synthetic router maps have
the heavy-tailed, small-diameter structure the paper assumes) and by the
EXPERIMENTS report (to document the substrate the figures were produced on).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from .._validation import coerce_seed, require_positive_int
from ..exceptions import DisconnectedGraphError, NodeNotFoundError
from .graph import Graph

NodeId = Hashable


def degree_distribution(graph: Graph) -> Dict[int, int]:
    """Return ``{degree: number_of_nodes_with_that_degree}``."""
    histogram: Dict[int, int] = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def degree_ccdf(graph: Graph) -> List[Tuple[int, float]]:
    """Return the complementary CDF of the degree distribution.

    Sorted list of ``(degree, P(Degree >= degree))`` — a straight line on a
    log-log plot indicates a power-law tail.
    """
    histogram = degree_distribution(graph)
    total = sum(histogram.values())
    if total == 0:
        return []
    ccdf: List[Tuple[int, float]] = []
    cumulative = 0
    for degree in sorted(histogram, reverse=True):
        cumulative += histogram[degree]
        ccdf.append((degree, cumulative / total))
    ccdf.reverse()
    return ccdf


def estimate_powerlaw_exponent(graph: Graph, k_min: int = 2) -> float:
    """Maximum-likelihood estimate of the power-law exponent of the degree tail.

    Uses the discrete Hill/Clauset estimator
    ``alpha = 1 + n / sum(ln(k_i / (k_min - 0.5)))`` over degrees >= k_min.
    Returns ``nan`` if fewer than 5 nodes qualify.
    """
    require_positive_int(k_min, "k_min")
    tail = [degree for degree in graph.degrees().values() if degree >= k_min]
    if len(tail) < 5:
        return float("nan")
    denominator = sum(math.log(degree / (k_min - 0.5)) for degree in tail)
    if denominator <= 0:
        return float("nan")
    return 1.0 + len(tail) / denominator


def average_degree(graph: Graph) -> float:
    """Mean degree (2E/V)."""
    if graph.node_count == 0:
        return 0.0
    return 2.0 * graph.edge_count / graph.node_count


def max_degree(graph: Graph) -> int:
    """Largest degree in the graph (0 for an empty graph)."""
    degrees = list(graph.degrees().values())
    return max(degrees) if degrees else 0


def degree_one_fraction(graph: Graph) -> float:
    """Fraction of nodes with degree exactly 1 (peer attachment points)."""
    if graph.node_count == 0:
        return 0.0
    return len(graph.nodes_with_degree(1)) / graph.node_count


def bfs_distances(graph: Graph, source: NodeId) -> Dict[NodeId, int]:
    """Hop distances from ``source`` to every reachable node."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[NodeId, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.iter_neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def eccentricity(graph: Graph, source: NodeId) -> int:
    """Largest hop distance from ``source`` to any node (graph must be connected)."""
    distances = bfs_distances(graph, source)
    if len(distances) != graph.node_count:
        raise DisconnectedGraphError("eccentricity requires a connected graph")
    return max(distances.values())


@dataclass
class PathLengthStats:
    """Summary of sampled shortest-path lengths."""

    mean: float
    median: float
    p90: float
    maximum: int
    samples: int


def sampled_path_length_stats(
    graph: Graph,
    samples: int = 200,
    seed: Optional[int] = None,
) -> PathLengthStats:
    """Estimate the hop-distance distribution from ``samples`` random sources.

    Each sample performs a BFS from a random node and records the distance to
    another random node, so the estimate covers the whole graph cheaply.
    """
    require_positive_int(samples, "samples")
    rng = random.Random(coerce_seed(seed))
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise DisconnectedGraphError("need at least two nodes to sample path lengths")

    lengths: List[int] = []
    for _ in range(samples):
        source = rng.choice(nodes)
        distances = bfs_distances(graph, source)
        reachable = [node for node in distances if node != source]
        if not reachable:
            continue
        target = rng.choice(reachable)
        lengths.append(distances[target])

    if not lengths:
        raise DisconnectedGraphError("no reachable pairs found while sampling")

    lengths.sort()
    count = len(lengths)
    mean = sum(lengths) / count
    median = float(lengths[count // 2])
    p90 = float(lengths[min(count - 1, int(count * 0.9))])
    return PathLengthStats(
        mean=mean, median=median, p90=p90, maximum=lengths[-1], samples=count
    )


def approximate_diameter(graph: Graph, probes: int = 10, seed: Optional[int] = None) -> int:
    """Lower-bound the diameter with the double-sweep heuristic."""
    require_positive_int(probes, "probes")
    rng = random.Random(coerce_seed(seed))
    nodes = list(graph.nodes())
    if not nodes:
        return 0
    best = 0
    for _ in range(probes):
        start = rng.choice(nodes)
        distances = bfs_distances(graph, start)
        far_node = max(distances, key=distances.get)
        second = bfs_distances(graph, far_node)
        best = max(best, max(second.values()))
    return best


def clustering_coefficient(graph: Graph, node: NodeId) -> float:
    """Local clustering coefficient of ``node``."""
    neighbors = graph.neighbors(node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    for i in range(k):
        for j in range(i + 1, k):
            if graph.has_edge(neighbors[i], neighbors[j]):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph, samples: Optional[int] = None, seed: Optional[int] = None) -> float:
    """Average clustering coefficient (optionally over a node sample)."""
    nodes = list(graph.nodes())
    if not nodes:
        return 0.0
    if samples is not None and samples < len(nodes):
        rng = random.Random(coerce_seed(seed))
        nodes = rng.sample(nodes, samples)
    return sum(clustering_coefficient(graph, node) for node in nodes) / len(nodes)


@dataclass
class TopologySummary:
    """One-shot structural summary used in EXPERIMENTS.md."""

    nodes: int
    edges: int
    average_degree: float
    max_degree: int
    degree_one_fraction: float
    powerlaw_exponent: float
    approximate_diameter: int
    mean_path_length: float


def summarize(graph: Graph, seed: Optional[int] = None) -> TopologySummary:
    """Compute a :class:`TopologySummary` for ``graph``."""
    stats = sampled_path_length_stats(graph, samples=min(200, max(10, graph.node_count // 10)), seed=seed)
    return TopologySummary(
        nodes=graph.node_count,
        edges=graph.edge_count,
        average_degree=average_degree(graph),
        max_degree=max_degree(graph),
        degree_one_fraction=degree_one_fraction(graph),
        powerlaw_exponent=estimate_powerlaw_exponent(graph),
        approximate_diameter=approximate_diameter(graph, probes=5, seed=seed),
        mean_path_length=stats.mean,
    )
