"""Workload construction: arrival processes and full evaluation scenarios."""

from .arrivals import (
    Arrival,
    arrival_rate,
    flash_crowd_arrivals,
    poisson_arrivals,
    sequential_arrivals,
    uniform_arrivals,
)
from .scenarios import Scenario, ScenarioConfig, build_scenario, small_scenario

__all__ = [
    "Arrival",
    "arrival_rate",
    "flash_crowd_arrivals",
    "poisson_arrivals",
    "sequential_arrivals",
    "uniform_arrivals",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "small_scenario",
]
