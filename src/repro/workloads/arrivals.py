"""Arrival processes for peer populations.

Live-streaming audiences do not arrive uniformly: a broadcast start produces
a *flash crowd*, while steady-state channels see roughly Poisson arrivals.
These generators produce timestamped arrival sequences the simulation and the
setup-delay experiments consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from .._validation import coerce_seed, require_positive_float, require_positive_int
from ..exceptions import ConfigurationError

PeerId = Hashable


@dataclass(frozen=True)
class Arrival:
    """One peer arrival."""

    time_s: float
    peer_id: PeerId


def poisson_arrivals(
    peer_ids: Sequence[PeerId],
    rate_per_s: float,
    start_time_s: float = 0.0,
    seed: Optional[int] = None,
) -> List[Arrival]:
    """Poisson process: exponential inter-arrival times at ``rate_per_s``."""
    require_positive_float(rate_per_s, "rate_per_s")
    if not peer_ids:
        raise ConfigurationError("peer_ids must not be empty")
    rng = random.Random(coerce_seed(seed))
    time = start_time_s
    arrivals: List[Arrival] = []
    for peer_id in peer_ids:
        time += rng.expovariate(rate_per_s)
        arrivals.append(Arrival(time_s=time, peer_id=peer_id))
    return arrivals


def flash_crowd_arrivals(
    peer_ids: Sequence[PeerId],
    duration_s: float,
    peak_fraction: float = 0.7,
    ramp_fraction: float = 0.2,
    start_time_s: float = 0.0,
    seed: Optional[int] = None,
) -> List[Arrival]:
    """Flash crowd: most arrivals land in a short ramp at the start.

    ``peak_fraction`` of the peers arrive during the first ``ramp_fraction``
    of ``duration_s`` (uniformly within it); the rest trickle in uniformly
    over the remaining time.
    """
    require_positive_float(duration_s, "duration_s")
    if not 0.0 < peak_fraction <= 1.0:
        raise ConfigurationError(f"peak_fraction must be in (0, 1], got {peak_fraction}")
    if not 0.0 < ramp_fraction < 1.0:
        raise ConfigurationError(f"ramp_fraction must be in (0, 1), got {ramp_fraction}")
    if not peer_ids:
        raise ConfigurationError("peer_ids must not be empty")

    rng = random.Random(coerce_seed(seed))
    ramp_end = duration_s * ramp_fraction
    peak_count = int(round(len(peer_ids) * peak_fraction))
    arrivals: List[Arrival] = []
    for index, peer_id in enumerate(peer_ids):
        if index < peak_count:
            time = start_time_s + rng.uniform(0.0, ramp_end)
        else:
            time = start_time_s + rng.uniform(ramp_end, duration_s)
        arrivals.append(Arrival(time_s=time, peer_id=peer_id))
    arrivals.sort(key=lambda arrival: (arrival.time_s, repr(arrival.peer_id)))
    return arrivals


def uniform_arrivals(
    peer_ids: Sequence[PeerId],
    duration_s: float,
    start_time_s: float = 0.0,
    seed: Optional[int] = None,
) -> List[Arrival]:
    """Arrivals spread uniformly at random over ``duration_s``."""
    require_positive_float(duration_s, "duration_s")
    if not peer_ids:
        raise ConfigurationError("peer_ids must not be empty")
    rng = random.Random(coerce_seed(seed))
    arrivals = [
        Arrival(time_s=start_time_s + rng.uniform(0.0, duration_s), peer_id=peer_id)
        for peer_id in peer_ids
    ]
    arrivals.sort(key=lambda arrival: (arrival.time_s, repr(arrival.peer_id)))
    return arrivals


def sequential_arrivals(
    peer_ids: Sequence[PeerId],
    interval_s: float = 1.0,
    start_time_s: float = 0.0,
) -> List[Arrival]:
    """Deterministic arrivals every ``interval_s`` seconds (for tests)."""
    require_positive_float(interval_s, "interval_s")
    if not peer_ids:
        raise ConfigurationError("peer_ids must not be empty")
    return [
        Arrival(time_s=start_time_s + index * interval_s, peer_id=peer_id)
        for index, peer_id in enumerate(peer_ids)
    ]


def arrival_rate(arrivals: Sequence[Arrival]) -> float:
    """Average arrivals per second over the observed window."""
    require_positive_int(len(arrivals), "number of arrivals")
    if len(arrivals) == 1:
        return float("inf")
    span = arrivals[-1].time_s - arrivals[0].time_s
    if span <= 0:
        return float("inf")
    return (len(arrivals) - 1) / span
