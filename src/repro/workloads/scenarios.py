"""Scenario builder: the paper's simulation setup as one reusable object.

The paper's evaluation loop is always the same skeleton:

1. generate (or load) a router-level map;
2. attach ``n`` peers to degree-1 routers;
3. attach a few landmarks to medium-degree routers;
4. have every peer join through the management server;
5. compare the returned neighbour sets against the brute-force optimum and a
   random choice.

:class:`Scenario` encapsulates steps 1–4 with explicit, reproducible
configuration, and exposes the pieces (server, oracle, traceroute, peer
attachment map) the experiments and examples need for step 5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Union

from .._validation import coerce_seed, require_positive_int
from ..baselines.brute_force import BruteForceOracle
from ..baselines.random_selection import RandomSelection
from ..core.management_server import ManagementServer
from ..core.remote import BACKENDS, shard_factory_for
from ..core.sharded import ShardedManagementServer
from ..core.newcomer import JoinResult, NewcomerClient, SELECT_CLOSEST_RTT
from ..exceptions import ConfigurationError
from ..landmarks.manager import LandmarkSet
from ..landmarks.placement import place_on_router_map
from ..overlay.overlay import Overlay
from ..routing.distance_engine import HopDistanceEngine
from ..routing.route_table import RouteTable
from ..routing.traceroute import TracerouteConfig, TracerouteSimulator
from ..sim.rng import RandomStreams
from ..topology.internet_mapper import RouterMap, RouterMapConfig, generate_router_map

PeerId = Hashable
NodeId = Hashable


@dataclass
class ScenarioConfig:
    """Everything needed to build one evaluation scenario."""

    peer_count: int = 600
    """Number of peers to attach (the paper sweeps 600–1400)."""

    landmark_count: int = 10
    """Number of landmarks ("few landmarks" in the paper)."""

    neighbor_set_size: int = 5
    """Neighbours returned per peer (k)."""

    landmark_strategy: str = "medium_degree"
    """Placement strategy (the paper's default is medium-degree routers)."""

    landmark_selection: str = SELECT_CLOSEST_RTT
    """How newcomers pick their landmark."""

    router_map_config: Optional[RouterMapConfig] = None
    """Router map parameters; None uses the default ~4000-router map."""

    traceroute_config: Optional[TracerouteConfig] = None
    """Traceroute imperfections; None means a perfect tool."""

    maintain_cache: bool = True
    """Whether the management server keeps per-peer neighbour caches."""

    shard_count: Optional[int] = None
    """Partition landmarks across this many management-plane shards
    (:class:`~repro.core.sharded.ShardedManagementServer`); None keeps the
    paper's single :class:`~repro.core.management_server.ManagementServer`.
    Results are identical either way — sharding is an operational choice."""

    backend: str = "inline"
    """Where the shards live: ``"inline"`` keeps every shard in this process;
    ``"process"`` runs one worker process per shard behind
    :class:`~repro.core.remote.ProcessShardBackend`; ``"socket"`` runs each
    shard as a connection-scoped server behind
    :class:`~repro.core.socket_backend.SocketShardBackend` (loopback asyncio
    shard server hosted by the scenario's factory).  Remote backends require
    ``shard_count``.  Results are byte-identical in every case; call
    :meth:`Scenario.close` when done so worker processes, connections and
    loopback servers are reaped."""

    seed: Optional[int] = None
    """Master seed; every random decision derives from it."""

    def __post_init__(self) -> None:
        require_positive_int(self.peer_count, "peer_count")
        require_positive_int(self.landmark_count, "landmark_count")
        require_positive_int(self.neighbor_set_size, "neighbor_set_size")
        if self.shard_count is not None:
            require_positive_int(self.shard_count, "shard_count")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.backend in ("process", "socket") and self.shard_count is None:
            raise ConfigurationError(f"backend={self.backend!r} requires shard_count")
        coerce_seed(self.seed)


@dataclass
class Scenario:
    """A fully built evaluation scenario."""

    config: ScenarioConfig
    router_map: RouterMap
    landmark_set: LandmarkSet
    server: Union[ManagementServer, ShardedManagementServer]
    traceroute: TracerouteSimulator
    oracle: BruteForceOracle
    peer_routers: Dict[PeerId, NodeId]
    join_results: Dict[PeerId, JoinResult] = field(default_factory=dict)
    distance_engine: Optional[HopDistanceEngine] = None
    """Shared hop/latency distance engine over the router map; the landmark
    set, route table, traceroute simulator and brute-force oracle all
    compute their distances through this one engine (one CSR snapshot and
    vector cache for the whole scenario)."""

    def __post_init__(self) -> None:
        if self.distance_engine is None:
            self.distance_engine = HopDistanceEngine(self.router_map.graph)
        else:
            self.distance_engine.check_graph(self.router_map.graph)

    @property
    def peer_ids(self) -> List[PeerId]:
        """All peer identifiers in creation order."""
        return list(self.peer_routers)

    def warm_distance_plane(self) -> int:
        """Precompute every distance the evaluation loop will ask for.

        Builds the landmark-rooted routing trees (what each join's
        traceroutes walk) and the true-hop-distance vectors from every
        distinct peer attachment router (what the brute-force oracle prices
        neighbour sets with).  Returns the number of distinct attachment
        routers warmed.  This is the scenario-build distance plane the
        ``build`` perf workload measures.
        """
        for router in self.landmark_set.routers():
            self.traceroute.route_table.add_destination(router)
        routers = dict.fromkeys(self.peer_routers.values())
        return self.distance_engine.warm_hops(routers)

    def close(self) -> None:
        """Release the management plane's resources (idempotent).

        Only scenarios built with ``backend="process"`` hold real resources
        (one worker process and pipe per shard), but calling this is always
        safe, so tests and experiments can tear scenarios down uniformly.
        """
        self.server.close()

    def __enter__(self) -> "Scenario":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def true_distance(self, peer_a: PeerId, peer_b: PeerId) -> float:
        """True hop distance between two peers (via the oracle)."""
        return self.oracle.peer_distance(peer_a, peer_b)

    # ------------------------------------------------------------ strategies

    def scheme_neighbor_sets(self) -> Dict[PeerId, List[PeerId]]:
        """Neighbour sets produced by the paper's scheme.

        Each peer's current neighbour list is obtained from the management
        server (an O(1) cached lookup): early joiners' lists have been kept
        up to date by the server as later peers arrived, exactly as the
        deployed system would behave.
        """
        if not self.join_results:
            raise ConfigurationError("peers have not joined yet; call join_all() first")
        return {
            peer_id: [
                neighbor
                for neighbor, _ in self.server.closest_peers(
                    peer_id, k=self.config.neighbor_set_size
                )
            ]
            for peer_id in self.join_results
        }

    def oracle_neighbor_sets(self) -> Dict[PeerId, List[PeerId]]:
        """Optimal neighbour sets from the brute-force oracle."""
        return {
            peer_id: self.oracle.select_neighbors(peer_id, k=self.config.neighbor_set_size)
            for peer_id in self.peer_ids
        }

    def random_neighbor_sets(self, seed: Optional[int] = None) -> Dict[PeerId, List[PeerId]]:
        """Random neighbour sets (uses a derived seed for reproducibility)."""
        streams = RandomStreams(seed if seed is not None else self.config.seed)
        selection = RandomSelection(seed=streams.seed_for("random-baseline"))
        population = self.peer_ids
        return {
            peer_id: selection.select_neighbors(
                peer_id, population, self.config.neighbor_set_size
            )
            for peer_id in population
        }

    # ------------------------------------------------------------------ joins

    def join_all(self) -> Dict[PeerId, JoinResult]:
        """Join every peer through the management server (in creation order)."""
        for peer_id, router in self.peer_routers.items():
            if peer_id in self.join_results:
                continue
            client = NewcomerClient(
                peer_id=peer_id,
                access_router=router,
                traceroute=self.traceroute,
                landmark_selection=self.config.landmark_selection,
            )
            self.join_results[peer_id] = client.join(self.server)
        return self.join_results

    def join_one(self, peer_id: PeerId) -> JoinResult:
        """Join a single peer (used by incremental / churn experiments)."""
        if peer_id not in self.peer_routers:
            raise ConfigurationError(f"unknown peer {peer_id!r}")
        client = NewcomerClient(
            peer_id=peer_id,
            access_router=self.peer_routers[peer_id],
            traceroute=self.traceroute,
            landmark_selection=self.config.landmark_selection,
        )
        result = client.join(self.server)
        self.join_results[peer_id] = result
        return result

    def build_overlay(self, neighbor_sets: Dict[PeerId, List[PeerId]]) -> Overlay:
        """Materialise an :class:`~repro.overlay.overlay.Overlay` from neighbour sets."""
        overlay = Overlay()
        for peer_id, router in self.peer_routers.items():
            overlay.create_peer(peer_id, router)
        for peer_id, neighbors in neighbor_sets.items():
            overlay.set_neighbors(peer_id, neighbors)
        return overlay


def build_scenario(
    config: Optional[ScenarioConfig] = None,
    router_map: Optional[RouterMap] = None,
    **overrides,
) -> Scenario:
    """Build a scenario from a config (or keyword overrides).

    The build performs the paper's setup: peers on degree-1 routers,
    landmarks on medium-degree routers, a management server pre-loaded with
    inter-landmark distances, and a traceroute simulator over the map.
    Peers do **not** join automatically — call :meth:`Scenario.join_all`.

    ``router_map`` optionally supplies a pre-generated map, skipping step 1
    (used by perf cells that time the distance plane rather than the
    topology generator, and by sweeps that reuse one map across configs).
    """
    if config is None:
        config = ScenarioConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config object or keyword overrides, not both")

    streams = RandomStreams(config.seed)

    # 1. Router-level map.
    if router_map is None:
        map_config = config.router_map_config
        if map_config is None:
            map_config = RouterMapConfig(seed=streams.seed_for("router-map"))
        router_map = generate_router_map(map_config)

    # One distance engine for the whole scenario: landmarks, route table,
    # oracle and experiments all share its CSR snapshot and vector caches.
    engine = HopDistanceEngine(router_map.graph)

    # 2. Peers on degree-1 routers.
    stub_routers = router_map.stub_routers()
    if len(stub_routers) == 0:
        raise ConfigurationError("the router map has no degree-1 routers to attach peers to")
    rng = streams.stream("peer-attachment")
    peer_routers: Dict[PeerId, NodeId] = {}
    for index in range(config.peer_count):
        peer_routers[f"peer{index}"] = rng.choice(stub_routers)

    # 3. Landmarks on medium-degree routers.
    landmark_routers = place_on_router_map(
        router_map,
        config.landmark_count,
        strategy=config.landmark_strategy,
        seed=streams.seed_for("landmark-placement"),
    )
    landmark_set = LandmarkSet.from_routers(router_map.graph, landmark_routers, engine=engine)

    # 4. Management plane (single-server or sharded) with inter-landmark
    #    distances; the sharded plane returns identical results, so the rest
    #    of the scenario machinery is oblivious to the choice.
    distances = landmark_set.pairwise_hop_distances() if len(landmark_set) > 1 else None
    if config.shard_count is None:
        server: Union[ManagementServer, ShardedManagementServer] = ManagementServer(
            neighbor_set_size=config.neighbor_set_size,
            maintain_cache=config.maintain_cache,
            landmark_distances=distances,
        )
    else:
        shard_factory = shard_factory_for(config.backend, config.neighbor_set_size)
        server = ShardedManagementServer(
            shard_count=config.shard_count,
            neighbor_set_size=config.neighbor_set_size,
            maintain_cache=config.maintain_cache,
            landmark_distances=distances,
            shard_factory=shard_factory,
        )
    try:
        for landmark in landmark_set:
            server.register_landmark(landmark.landmark_id, landmark.router)

        # 5. Traceroute simulator + oracle.
        route_table = RouteTable(graph=router_map.graph, engine=engine)
        traceroute_config = config.traceroute_config or TracerouteConfig(
            seed=streams.seed_for("traceroute")
        )
        traceroute = TracerouteSimulator(
            graph=router_map.graph, route_table=route_table, config=traceroute_config
        )
        oracle = BruteForceOracle(router_map.graph, peer_routers, engine=engine)
    except BaseException:
        # A failure after the plane exists must not orphan its resources
        # (one worker process per shard with backend="process").
        server.close()
        raise

    return Scenario(
        config=config,
        router_map=router_map,
        landmark_set=landmark_set,
        server=server,
        traceroute=traceroute,
        oracle=oracle,
        peer_routers=peer_routers,
        distance_engine=engine,
    )


def small_scenario(seed: Optional[int] = None, peer_count: int = 60) -> Scenario:
    """A small scenario over the ~600-router test map (for unit tests and docs)."""
    from ..topology.internet_mapper import RouterMapConfig

    streams = RandomStreams(seed)
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=4,
        neighbor_set_size=3,
        router_map_config=RouterMapConfig(
            core_size=20,
            core_attachment=3,
            transit_size=100,
            transit_attachment=2,
            stub_size=480,
            stub_attachment=1,
            seed=streams.seed_for("router-map"),
        ),
        seed=seed,
    )
    return build_scenario(config)
