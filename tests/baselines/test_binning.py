"""Tests for the distributed-binning baseline."""

from __future__ import annotations

import pytest

from repro.baselines.binning import Bin, BinningSystem
from repro.exceptions import ConfigurationError


RTTS = {
    # peer -> landmark RTTs (ms)
    "close_a": {"lm0": 10, "lm1": 90, "lm2": 200},
    "close_b": {"lm0": 15, "lm1": 85, "lm2": 210},
    "far": {"lm0": 190, "lm1": 30, "lm2": 95},
}


def rtt(peer, landmark):
    return RTTS[peer][landmark]


@pytest.fixture()
def system() -> BinningSystem:
    system = BinningSystem(["lm0", "lm1", "lm2"], rtt_to_landmark=rtt)
    for peer in RTTS:
        system.add_peer(peer)
    return system


class TestBin:
    def test_similarity(self):
        a = Bin(ordering=("lm0", "lm1"), levels=(0, 2))
        b = Bin(ordering=("lm0", "lm2"), levels=(0, 1))
        assert a.similarity_to(b) == 2  # first ordering slot + first level match
        assert a.similarity_to(a) == 4


class TestConstruction:
    def test_requires_landmarks(self):
        with pytest.raises(ConfigurationError):
            BinningSystem([], rtt_to_landmark=rtt)

    def test_requires_sorted_boundaries(self):
        with pytest.raises(ConfigurationError):
            BinningSystem(["lm0"], rtt_to_landmark=rtt, level_boundaries=(80.0, 20.0))


class TestBinning:
    def test_bin_orders_landmarks_by_rtt(self, system):
        peer_bin = system.bins["close_a"]
        assert peer_bin.ordering == ("lm0", "lm1", "lm2")
        assert peer_bin.levels == (0, 2, 2)

    def test_similar_peers_share_a_bin(self, system):
        assert system.bins["close_a"] == system.bins["close_b"]
        assert system.bins["close_a"] != system.bins["far"]

    def test_estimate_distance_zero_for_identical_bins(self, system):
        assert system.estimate_distance("close_a", "close_b") == 0.0
        assert system.estimate_distance("close_a", "far") > 0.0
        assert system.estimate_distance("close_a", "close_a") == 0.0

    def test_estimate_requires_binned_peers(self, system):
        with pytest.raises(ConfigurationError):
            system.estimate_distance("close_a", "ghost")

    def test_select_neighbors_prefers_same_bin(self, system):
        assert system.select_neighbors("close_a", k=1) == ["close_b"]

    def test_remove_peer(self, system):
        system.remove_peer("far")
        assert "far" not in system.peers()

    def test_bin_population_histogram(self, system):
        histogram = system.bin_population_histogram()
        assert sum(histogram.values()) == 3
        assert max(histogram.values()) == 2

    def test_level_boundaries_applied(self):
        system = BinningSystem(["lm0"], rtt_to_landmark=lambda p, l: 50.0, level_boundaries=(20.0, 80.0))
        peer_bin = system.add_peer("p")
        assert peer_bin.levels == (1,)
