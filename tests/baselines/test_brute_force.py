"""Tests for the brute-force oracle baseline."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import BruteForceOracle
from repro.exceptions import ConfigurationError


@pytest.fixture()
def oracle(line_graph) -> BruteForceOracle:
    attachment = {"pa": 0, "pb": 1, "pc": 3, "pd": 5, "pe": 0}
    return BruteForceOracle(line_graph, attachment)


class TestDistances:
    def test_peer_distance_includes_host_hops(self, oracle):
        assert oracle.peer_distance("pa", "pb") == 1 + 2
        assert oracle.peer_distance("pa", "pd") == 5 + 2
        assert oracle.peer_distance("pa", "pe") == 2  # same router
        assert oracle.peer_distance("pa", "pa") == 0.0

    def test_estimate_distance_alias(self, oracle):
        assert oracle.estimate_distance("pa", "pc") == oracle.peer_distance("pa", "pc")

    def test_custom_host_hops(self, line_graph):
        oracle = BruteForceOracle(line_graph, {"pa": 0, "pb": 2}, host_hops=0)
        assert oracle.peer_distance("pa", "pb") == 2

    def test_negative_host_hops_rejected(self, line_graph):
        with pytest.raises(ConfigurationError):
            BruteForceOracle(line_graph, {}, host_hops=-1)


class TestSelection:
    def test_closest_peers_sorted_by_true_distance(self, oracle):
        ranked = oracle.closest_peers("pa", k=4)
        distances = [distance for _, distance in ranked]
        assert distances == sorted(distances)
        assert ranked[0][0] == "pe"  # same router
        assert ranked[1][0] == "pb"

    def test_select_neighbors_matches_closest_peers(self, oracle):
        assert oracle.select_neighbors("pa", k=3) == [
            peer for peer, _ in oracle.closest_peers("pa", k=3)
        ]

    def test_population_restriction(self, oracle):
        ranked = oracle.closest_peers("pa", k=3, population=["pc", "pd"])
        assert [peer for peer, _ in ranked] == ["pc", "pd"]

    def test_exclude(self, oracle):
        ranked = oracle.closest_peers("pa", k=4, exclude={"pe"})
        assert all(peer != "pe" for peer, _ in ranked)

    def test_unknown_peer_raises(self, oracle):
        with pytest.raises(ConfigurationError):
            oracle.closest_peers("ghost", k=2)

    def test_add_and_remove_peer(self, oracle, line_graph):
        oracle.add_peer("pf", 4)
        assert oracle.peer_distance("pd", "pf") == 1 + 2
        oracle.remove_peer("pf")
        assert "pf" not in oracle.attachment

    def test_add_peer_unknown_router(self, oracle):
        with pytest.raises(ConfigurationError):
            oracle.add_peer("pf", 99)


class TestNeighborCost:
    def test_neighbor_cost_is_sum_of_distances(self, oracle):
        cost = oracle.neighbor_cost("pa", ["pb", "pc"])
        assert cost == oracle.peer_distance("pa", "pb") + oracle.peer_distance("pa", "pc")

    def test_optimality_against_every_other_subset(self, oracle):
        """The oracle's k-set minimises D over all candidate subsets."""
        from itertools import combinations

        k = 2
        best = oracle.select_neighbors("pa", k=k)
        best_cost = oracle.neighbor_cost("pa", best)
        others = [peer for peer in oracle.attachment if peer != "pa"]
        for subset in combinations(others, k):
            assert best_cost <= oracle.neighbor_cost("pa", list(subset)) + 1e-9
