"""Tests for the GNP landmark-coordinate baseline."""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines.gnp import GnpSystem
from repro.exceptions import ConfigurationError


def build_planted_world(n_peers=10, n_landmarks=4, seed=5):
    """Peers and landmarks planted in a 2-D plane with Euclidean RTTs."""
    rng = random.Random(seed)
    landmark_positions = {f"lm{i}": (rng.uniform(0, 100), rng.uniform(0, 100)) for i in range(n_landmarks)}
    peer_positions = {f"p{i}": (rng.uniform(0, 100), rng.uniform(0, 100)) for i in range(n_peers)}

    def distance(pa, pb):
        return math.hypot(pa[0] - pb[0], pa[1] - pb[1])

    landmark_rtts = {}
    ids = list(landmark_positions)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            landmark_rtts[(a, b)] = distance(landmark_positions[a], landmark_positions[b])

    def rtt_to_landmark(peer, landmark):
        return distance(peer_positions[peer], landmark_positions[landmark])

    def true_peer_rtt(peer_a, peer_b):
        return distance(peer_positions[peer_a], peer_positions[peer_b])

    return ids, landmark_rtts, rtt_to_landmark, peer_positions, true_peer_rtt


class TestConstruction:
    def test_requires_two_landmarks(self):
        with pytest.raises(ConfigurationError):
            GnpSystem(["only"], {}, rtt_to_landmark=lambda p, l: 1.0)

    def test_missing_landmark_rtt_rejected(self):
        with pytest.raises(ConfigurationError):
            GnpSystem(["a", "b", "c"], {("a", "b"): 1.0}, rtt_to_landmark=lambda p, l: 1.0)

    def test_landmarks_embedded_on_construction(self):
        ids, landmark_rtts, rtt_to_landmark, _, _ = build_planted_world()
        system = GnpSystem(ids, landmark_rtts, rtt_to_landmark, dimensions=2, seed=1)
        assert set(system.landmark_coordinates) == set(ids)

    def test_landmark_embedding_preserves_pairwise_distances(self):
        ids, landmark_rtts, rtt_to_landmark, _, _ = build_planted_world(seed=7)
        system = GnpSystem(ids, landmark_rtts, rtt_to_landmark, dimensions=2, seed=2)
        import numpy as np

        errors = []
        for (a, b), true in landmark_rtts.items():
            embedded = float(
                np.linalg.norm(system.landmark_coordinates[a] - system.landmark_coordinates[b])
            )
            errors.append(abs(embedded - true) / true)
        assert sorted(errors)[len(errors) // 2] < 0.3


class TestPeers:
    @pytest.fixture()
    def system_and_truth(self):
        ids, landmark_rtts, rtt_to_landmark, peer_positions, true_peer_rtt = build_planted_world()
        system = GnpSystem(ids, landmark_rtts, rtt_to_landmark, dimensions=2, seed=3)
        for peer in peer_positions:
            system.add_peer(peer)
        return system, peer_positions, true_peer_rtt

    def test_add_and_remove(self, system_and_truth):
        system, peer_positions, _ = system_and_truth
        assert len(system.peers()) == len(peer_positions)
        system.remove_peer("p0")
        assert "p0" not in system.peers()

    def test_estimates_correlate_with_truth(self, system_and_truth):
        system, peer_positions, true_peer_rtt = system_and_truth
        peers = list(peer_positions)
        errors = []
        for i, peer_a in enumerate(peers):
            for peer_b in peers[i + 1 :]:
                true = true_peer_rtt(peer_a, peer_b)
                if true < 1.0:
                    continue
                predicted = system.estimate_distance(peer_a, peer_b)
                errors.append(abs(predicted - true) / true)
        assert sorted(errors)[len(errors) // 2] < 0.4

    def test_estimate_requires_embedding(self, system_and_truth):
        system, _, _ = system_and_truth
        with pytest.raises(ConfigurationError):
            system.estimate_distance("p0", "ghost")
        assert system.estimate_distance("p0", "p0") == 0.0

    def test_select_neighbors_prefers_nearby_peers(self, system_and_truth):
        system, peer_positions, true_peer_rtt = system_and_truth
        peers = list(peer_positions)
        origin = peers[0]
        others = [peer for peer in peers if peer != origin]
        true_order = sorted(others, key=lambda peer: true_peer_rtt(origin, peer))
        selected = system.select_neighbors(origin, peers, k=3)
        assert origin not in selected
        assert len(set(selected) & set(true_order[:5])) >= 2

    def test_measurements_per_peer_equals_landmark_count(self, system_and_truth):
        system, _, _ = system_and_truth
        assert system.measurements_per_peer == len(system.landmark_ids)
