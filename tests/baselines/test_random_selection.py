"""Tests for the random neighbour-selection baseline."""

from __future__ import annotations

import pytest

from repro.baselines.random_selection import RandomSelection
from repro.exceptions import ConfigurationError


class TestRandomSelection:
    def test_returns_k_distinct_neighbors(self):
        selection = RandomSelection(seed=1)
        population = [f"p{i}" for i in range(20)]
        neighbors = selection.select_neighbors("p0", population, 5)
        assert len(neighbors) == 5
        assert len(set(neighbors)) == 5
        assert "p0" not in neighbors

    def test_excludes_requested_peers(self):
        selection = RandomSelection(seed=2)
        population = ["a", "b", "c", "d"]
        neighbors = selection.select_neighbors("a", population, 3, exclude={"b"})
        assert "b" not in neighbors
        assert set(neighbors) == {"c", "d"}

    def test_small_population_returns_everyone_else(self):
        selection = RandomSelection(seed=3)
        neighbors = selection.select_neighbors("a", ["a", "b", "c"], 10)
        assert sorted(neighbors) == ["b", "c"]

    def test_no_candidates_raises(self):
        selection = RandomSelection(seed=4)
        with pytest.raises(ConfigurationError):
            selection.select_neighbors("a", ["a"], 2)

    def test_deterministic_with_seed(self):
        population = [f"p{i}" for i in range(30)]
        first = RandomSelection(seed=5).select_neighbors("p0", population, 5)
        second = RandomSelection(seed=5).select_neighbors("p0", population, 5)
        assert first == second

    def test_invalid_k(self):
        selection = RandomSelection(seed=6)
        with pytest.raises(Exception):
            selection.select_neighbors("a", ["a", "b"], 0)

    def test_uniformity_sanity(self):
        """Every candidate should be picked at least occasionally."""
        selection = RandomSelection(seed=7)
        population = [f"p{i}" for i in range(6)]
        seen = set()
        for _ in range(200):
            seen.update(selection.select_neighbors("p0", population, 2))
        assert seen == set(population) - {"p0"}
