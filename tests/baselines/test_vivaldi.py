"""Tests for the Vivaldi network-coordinate baseline."""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines.vivaldi import VivaldiCoordinate, VivaldiSystem
from repro.exceptions import ConfigurationError


def grid_rtt_function(positions):
    """True RTTs proportional to Euclidean distance between planted positions."""

    def rtt(peer_a, peer_b):
        (xa, ya), (xb, yb) = positions[peer_a], positions[peer_b]
        return math.hypot(xa - xb, ya - yb) + 1.0

    return rtt


@pytest.fixture()
def planted_system():
    """Twelve peers planted on a 40x40 grid with a known metric."""
    rng = random.Random(3)
    positions = {f"p{i}": (rng.uniform(0, 40), rng.uniform(0, 40)) for i in range(12)}
    system = VivaldiSystem(rtt=grid_rtt_function(positions), dimensions=2, seed=3, use_height=False)
    for peer in positions:
        system.add_peer(peer)
    return system, positions


class TestCoordinate:
    def test_distance_includes_heights(self):
        a = VivaldiCoordinate(vector=(0.0, 0.0), height=2.0)
        b = VivaldiCoordinate(vector=(3.0, 4.0), height=1.0)
        assert a.distance_to(b) == pytest.approx(5.0 + 3.0)

    def test_displaced_keeps_height_non_negative(self):
        a = VivaldiCoordinate(vector=(0.0, 0.0), height=0.5)
        moved = a.displaced((1.0, 0.0), magnitude=2.0, height_delta=-5.0)
        assert moved.vector == (2.0, 0.0)
        assert moved.height == 0.0


class TestSystemBasics:
    def test_add_and_remove_peers(self, planted_system):
        system, _ = planted_system
        assert len(system.peers()) == 12
        system.remove_peer("p0")
        assert "p0" not in system.peers()
        # Adding an existing peer is a no-op returning its node.
        node = system.add_peer("p1")
        assert node.peer_id == "p1"

    def test_observe_requires_known_peers(self, planted_system):
        system, _ = planted_system
        with pytest.raises(ConfigurationError):
            system.observe("p0", "ghost")

    def test_observe_self_is_noop(self, planted_system):
        system, _ = planted_system
        before = system.nodes["p0"].samples_observed
        system.observe("p0", "p0")
        assert system.nodes["p0"].samples_observed == before

    def test_estimate_requires_membership(self, planted_system):
        system, _ = planted_system
        with pytest.raises(ConfigurationError):
            system.estimate_distance("p0", "ghost")
        assert system.estimate_distance("p0", "p0") == 0.0

    def test_sample_counting(self, planted_system):
        system, _ = planted_system
        system.run(rounds=2, samples_per_peer=1)
        assert system.total_samples() == 2 * 12


class TestConvergence:
    def test_error_decreases_with_rounds(self, planted_system):
        system, _ = planted_system
        initial_error = system.mean_error()
        system.run(rounds=60, samples_per_peer=2)
        assert system.mean_error() < initial_error

    def test_coordinates_approximate_true_metric(self, planted_system):
        """After convergence, predicted RTTs correlate with true RTTs."""
        system, positions = planted_system
        system.run(rounds=120, samples_per_peer=2)
        rtt = grid_rtt_function(positions)
        errors = []
        peers = list(positions)
        for i, peer_a in enumerate(peers):
            for peer_b in peers[i + 1 :]:
                true = rtt(peer_a, peer_b)
                predicted = system.estimate_distance(peer_a, peer_b)
                errors.append(abs(predicted - true) / true)
        median_error = sorted(errors)[len(errors) // 2]
        assert median_error < 0.35

    def test_neighbor_ranking_better_than_random(self, planted_system):
        """Vivaldi's top-3 neighbours should be genuinely nearby after convergence."""
        system, positions = planted_system
        system.run(rounds=120, samples_per_peer=2)
        rtt = grid_rtt_function(positions)
        peers = list(positions)
        origin = peers[0]
        others = [peer for peer in peers if peer != origin]
        true_order = sorted(others, key=lambda peer: rtt(origin, peer))
        selected = system.select_neighbors(origin, peers, k=3)
        true_top = set(true_order[:5])
        assert len(set(selected) & true_top) >= 2


class TestSelection:
    def test_select_neighbors_excludes_self_and_excluded(self, planted_system):
        system, _ = planted_system
        selected = system.select_neighbors("p0", k=5, exclude={"p1"})
        assert "p0" not in selected
        assert "p1" not in selected
        assert len(selected) == 5
