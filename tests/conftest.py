"""Shared fixtures for the test suite.

Expensive objects (the small router map, a joined scenario) are built once
per session; tests that need to mutate them build their own copies.
"""

from __future__ import annotations

import multiprocessing
import os
import random

import pytest
from hypothesis import settings as hypothesis_settings

from repro.topology.graph import Graph
from repro.topology.internet_mapper import RouterMap, RouterMapConfig, generate_router_map
from repro.workloads.scenarios import Scenario, ScenarioConfig, build_scenario


# High-budget profile for the sharded-equivalence oracle; CI's dedicated
# matrix entry selects it via HYPOTHESIS_PROFILE=ci-equivalence.  Tests that
# pin max_examples in their own @settings are unaffected.
hypothesis_settings.register_profile("ci-equivalence", max_examples=400, deadline=None)
# Reduced budget for the PROCESS-backend oracle run: every example spawns
# 1-8 worker processes, so its own CI matrix entry trades example count for
# a hard wall-clock timeout instead of inheriting the 400-example sweep.
hypothesis_settings.register_profile("ci-equivalence-process", max_examples=60, deadline=None)
# Smallest budget for the CHAOS-backend oracle run: every example spawns
# worker processes AND kills/restarts them on a scripted fault plan, so each
# example pays several restart+replay cycles on top of the spawn cost.
hypothesis_settings.register_profile("ci-equivalence-chaos", max_examples=25, deadline=None)
# Budget for the SOCKET-backend oracle run: connection-scoped shards behind
# the in-process asyncio shard server.  Cheaper than spawning worker
# processes but dearer than inline, so it sits between the process and
# inline budgets; its CI matrix entry selects it with -k "socket" (which
# also picks up the socket-chaos fault-plan parametrization).
hypothesis_settings.register_profile("ci-equivalence-socket", max_examples=50, deadline=None)
if os.environ.get("HYPOTHESIS_PROFILE"):
    hypothesis_settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture(autouse=True)
def no_leaked_workers():
    """No test may orphan a shard worker process.

    The multi-process shard backend spawns one worker per shard; every
    test/CLI path must reap them (``close()``, context managers, fixture
    finalizers) so the tier-1 suite exits cleanly.  This fixture enforces
    that suite-wide: leaked workers are terminated, then the test fails.
    """
    yield
    leaked = multiprocessing.active_children()
    for process in leaked:
        process.terminate()
    assert not leaked, f"leaked shard worker processes: {leaked}"


SMALL_MAP_KWARGS = dict(
    core_size=15,
    core_attachment=3,
    transit_size=60,
    transit_attachment=2,
    stub_size=250,
    stub_attachment=1,
)


def make_small_map(seed: int = 5) -> RouterMap:
    """A ~325-router map, freshly generated (for tests that mutate it)."""
    return generate_router_map(RouterMapConfig(seed=seed, **SMALL_MAP_KWARGS))


def make_small_scenario(seed: int = 5, peer_count: int = 40, **kwargs) -> Scenario:
    """A small un-joined scenario over the small test map."""
    config = ScenarioConfig(
        peer_count=peer_count,
        landmark_count=kwargs.pop("landmark_count", 3),
        neighbor_set_size=kwargs.pop("neighbor_set_size", 3),
        router_map_config=RouterMapConfig(seed=seed, **SMALL_MAP_KWARGS),
        seed=seed,
        **kwargs,
    )
    return build_scenario(config)


@pytest.fixture(scope="session")
def small_router_map() -> RouterMap:
    """Session-wide read-only small router map."""
    return make_small_map(seed=5)


@pytest.fixture(scope="session")
def joined_scenario() -> Scenario:
    """Session-wide scenario with every peer already joined (read-only)."""
    scenario = make_small_scenario(seed=5, peer_count=40)
    scenario.join_all()
    return scenario


@pytest.fixture()
def fresh_scenario() -> Scenario:
    """A fresh, un-joined scenario (safe to mutate)."""
    return make_small_scenario(seed=9, peer_count=30)


@pytest.fixture()
def line_graph() -> Graph:
    """A 6-node path graph 0-1-2-3-4-5 with unit latencies."""
    graph = Graph(name="line")
    for u, v in zip(range(5), range(1, 6)):
        graph.add_edge(u, v, latency=1.0)
    return graph


@pytest.fixture()
def star_graph() -> Graph:
    """A star with centre ``0`` and leaves 1..6."""
    graph = Graph(name="star")
    for leaf in range(1, 7):
        graph.add_edge(0, leaf, latency=1.0)
    return graph


@pytest.fixture()
def tree_graph() -> Graph:
    """A small binary-ish tree used by path and routing tests.

    Structure::

              0
            /   \\
           1     2
          / \\   / \\
         3   4 5   6
         |   |
         7   8
    """
    graph = Graph(name="tree")
    edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6), (3, 7), (4, 8)]
    for u, v in edges:
        graph.add_edge(u, v, latency=1.0)
    return graph


@pytest.fixture()
def rng() -> random.Random:
    """A seeded RNG for tests that need randomness."""
    return random.Random(1234)
